"""``AsyncioTransport``: the protocol stack over real TCP sockets.

One transport object hosts any number of local endpoints — one asyncio
TCP server per registered address — plus a pooled client side that
correlates requests with replies by request id.  A single event loop
runs on a dedicated daemon thread; protocol code stays synchronous
(:meth:`AsyncioTransport.rpc` blocks the calling thread), while
handlers for *incoming* requests run on a thread pool so they may
themselves issue nested RPCs through the loop without deadlocking.

Design points, mirrored from the simulator so the protocol layers
cannot tell the media apart:

* **Accounting parity.**  Messages are accounted on the *sending* side
  only (one request + one reply per RPC, one message per datagram),
  into the same :class:`~repro.sim.metrics.MetricsRegistry` counters
  (``network.messages``), per-kind and per-destination counters, and
  any open :meth:`trace` window — so ``messages_sent()`` and the
  paper's cost metrics work identically over sockets.  Wire-level
  detail lands under ``net.*`` (bytes, frames, connections, protocol
  errors) and a ``net.rpc_latency`` histogram, per-destination request
  counts in :attr:`received_counts`.
* **Local calls are free.**  ``rpc(src, src, ...)`` dispatches the
  handler in the calling thread with no socket, no accounting — the
  paper's "consulting your own table costs nothing".
* **Failure semantics.**  Connection refusal/reset raises
  :class:`~repro.net.errors.PeerUnreachableError`; a missing reply
  raises :class:`~repro.net.errors.RpcTimeoutError` (a subclass).  The
  request is accounted before the failure surfaces, exactly like the
  simulator's "sent, then lost".  :meth:`fail` / :meth:`recover` give
  fail-stop injection for local endpoints: a failed endpoint reads and
  drops incoming frames (callers time out, as with a real hung host).
* **Admission control.**  With an
  :class:`~repro.net.admission.AdmissionPolicy`, each served address
  bounds its admitted-but-unfinished requests; excess requests are
  answered with a ``T_BUSY`` frame straight from the IO loop and
  surface as :class:`~repro.net.errors.NodeBusyError` on the caller.
  A busy reply is *not* accounted as a message — the shed request
  contributes exactly one message to ``network.messages``, the same
  as a lost one, preserving simulator parity.  Outgoing requests are
  stamped with the ambient :func:`~repro.net.qos.current_qos`
  priority so shedding can spare prioritized traffic.  Admitted
  requests are dispatched concurrently per connection (a task each),
  so one slow handler no longer serializes a connection's pipeline.
* **Clock.**  :meth:`now` / :meth:`sleep` expose wall-clock time scaled
  by ``time_scale`` (seconds per transport time unit, default 1 ms), so
  a :class:`~repro.sim.resilience.RetryPolicy` written in simulator
  units backs off in milliseconds rather than virtual units — and its
  deadline bounds each attempt's socket wait.

Topology is static: local endpoints bind loopback (or a given host)
ports, and remote addresses are supplied in a ``peers`` book mapping
address -> (host, port).  That covers the two deployment shapes this
package ships — :class:`~repro.net.cluster.LocalCluster` (all endpoints
local, every RPC crosses a real socket) and
:class:`~repro.net.node.NodeDaemon` (serve one address, everything else
in ``peers``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator

from repro.net.admission import AdmissionController, AdmissionPolicy
from repro.net.codec import CODEC_BINARY, CODEC_JSON, codec_by_name
from repro.net.errors import (
    NodeBusyError,
    PeerUnreachableError,
    ProtocolError,
    RemoteHandlerError,
    RpcTimeoutError,
)
from repro.net.qos import current_qos
from repro.net.transport import Handler, Message, MessageTrace, RpcCall, RpcOutcome
from repro.obs.trace import active_recorder
from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameType,
    _HEADER,
    _declared_length,
    encode_frame,
    parse_frame_info,
)
from repro.sim.metrics import MetricsRegistry

__all__ = ["AsyncioTransport"]

DEFAULT_RPC_TIMEOUT_S = 10.0

_ADVERT = (CODEC_JSON, CODEC_BINARY)


async def _read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int
) -> tuple[Frame, int, tuple[int, ...]] | None:
    """Read one frame; None on clean EOF; ProtocolError on bad bytes.

    Returns ``(frame, codec id it arrived in, advertised codec ids)``
    so both ends can negotiate the connection's codec from its first
    frames (see docs/protocol.md §18).
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("stream ended mid-header")
        header += more
    declared = _declared_length(header, max_frame_bytes)
    assert declared is not None
    try:
        body = await reader.readexactly(declared)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("stream ended mid-frame") from error
    return parse_frame_info(body)


class _Connection:
    """One pooled client connection to a peer endpoint."""

    __slots__ = ("dst", "reader", "writer", "pending", "reader_task", "closed",
                 "tx_codec", "greeted")

    def __init__(self, dst: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.dst = dst
        self.reader = reader
        self.writer = writer
        # request id -> (waiter, timeout timer handle)
        self.pending: dict[int, tuple[Any, asyncio.TimerHandle | None]] = {}
        self.reader_task: asyncio.Task | None = None
        self.closed = False
        # Negotiated outgoing codec: None until the peer's first frame
        # arrives (requests stay v1 JSON, the safe opener), then pinned.
        self.tx_codec: int | None = None
        self.greeted = False  # whether the capability advert went out


class AsyncioTransport:
    """TCP implementation of :class:`~repro.net.transport.Transport`."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        serve_addresses: set[int] | frozenset[int] | None = None,
        ports: dict[int, int] | None = None,
        peers: dict[int, tuple[str, int]] | None = None,
        metrics: MetricsRegistry | None = None,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT_S,
        time_scale: float = 0.001,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        handler_threads: int = 16,
        admission: AdmissionPolicy | None = None,
        codec: str = "binary",
    ):
        """``serve_addresses=None`` serves every address that registers
        (the :class:`~repro.net.cluster.LocalCluster` shape); a set
        restricts serving to those addresses, with the rest expected in
        ``peers`` (the daemon shape).  ``ports`` pins listen ports per
        address (default: OS-assigned).  ``rpc_timeout`` is the default
        reply wait in real seconds; ``time_scale`` converts transport
        time units (clock, retry backoff, deadlines) to seconds.
        ``admission=None`` (the default) disables admission control:
        every request is dispatched, as before this knob existed.
        ``codec`` is the *preferred* wire codec (``"binary"`` by
        default): connections open in v1 JSON and upgrade to binary
        only once the peer demonstrates it speaks v2, so a transport
        pinned to ``"json"`` — or a pre-codec build — interoperates
        unmodified (docs/protocol.md §18).
        """
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        if rpc_timeout <= 0:
            raise ValueError(f"rpc_timeout must be positive, got {rpc_timeout}")
        self.host = host
        self.codec = codec_by_name(codec).name
        self._codec_id = codec_by_name(codec).id
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rpc_timeout = rpc_timeout
        self.time_scale = time_scale
        self.max_frame_bytes = max_frame_bytes
        self.kind_counts: Counter[str] = Counter()
        self.received_counts: Counter[int] = Counter()
        self.peers: dict[int, tuple[str, int]] = dict(peers or {})
        self.endpoints: dict[int, tuple[str, int]] = {}
        self.closed = False

        self._serve = None if serve_addresses is None else set(serve_addresses)
        self._ports = dict(ports or {})
        self._handlers: dict[int, Handler] = {}
        self._failed: set[int] = set()
        self._drop_requests: Counter[int] = Counter()
        self._servers: dict[int, asyncio.AbstractServer] = {}
        self._server_writers: set[asyncio.StreamWriter] = set()
        self.admission = (
            None if admission is None else AdmissionController(admission, self.metrics)
        )
        self._request_tasks: set[asyncio.Task] = set()
        self._gossip_handler = None
        self._connections: dict[int, _Connection] = {}
        self._connect_locks: dict[int, asyncio.Lock] = {}
        self._traces: list[MessageTrace] = []
        self._trace_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._epoch = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="repro-net-handler"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-loop", daemon=True
        )
        self._thread.start()

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "AsyncioTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut everything down: servers, connections, loop, threads.

        Idempotent.  After close the loop is closed, the loop thread has
        exited, and :meth:`open_connection_count` is zero — the
        leak-freedom the integration tests assert.
        """
        if self.closed:
            return
        self.closed = True
        asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._executor.shutdown(wait=True)

    async def _shutdown(self) -> None:
        for task in list(self._request_tasks):
            task.cancel()
        for server in self._servers.values():
            server.close()
        for connection in list(self._connections.values()):
            await self._close_connection(connection)
        for writer in list(self._server_writers):
            writer.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        self._server_writers.clear()

    async def _close_connection(self, connection: _Connection) -> None:
        connection.closed = True
        self._connections.pop(connection.dst, None)
        if connection.reader_task is not None:
            connection.reader_task.cancel()
        for waiter, timer in connection.pending.values():
            if timer is not None:
                timer.cancel()
            if not waiter.done():
                waiter.set_exception(ConnectionResetError("transport closed"))
        connection.pending.clear()
        connection.writer.close()

    def open_connection_count(self) -> int:
        """Open client connections plus accepted server connections."""
        return len(self._connections) + len(self._server_writers)

    def _call(self, coroutine, timeout: float | None = None):
        """Run a coroutine on the loop thread, blocking the caller."""
        if self.closed:
            coroutine.close()
            raise RuntimeError("transport is closed")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout)

    # -- membership ---------------------------------------------------

    def register(self, address: int, handler: Handler) -> None:
        """Attach ``handler``; if this transport serves ``address``,
        bind its TCP server (synchronously, so the endpoint is dialable
        when this returns)."""
        self._handlers[address] = handler
        self._failed.discard(address)
        if (self._serve is None or address in self._serve) and address not in self._servers:
            self._call(self._start_server(address), timeout=30)

    async def _start_server(self, address: int) -> None:
        server = await asyncio.start_server(
            lambda reader, writer: self._serve_connection(address, reader, writer),
            self.host,
            self._ports.get(address, 0),
        )
        self._servers[address] = server
        sockname = server.sockets[0].getsockname()
        self.endpoints[address] = (sockname[0], sockname[1])
        self.metrics.increment("net.servers_started")

    def unregister(self, address: int) -> None:
        """Detach the endpoint: its server stops accepting, its address
        book entry disappears, and any pooled connection to it is
        severed (in-flight requests fail).  Established server-side
        connections die on their next frame (see
        :meth:`_serve_connection`), so an unregistered address behaves
        like a crashed process, not a half-alive one."""
        self._handlers.pop(address, None)
        self._failed.discard(address)
        server = self._servers.pop(address, None)
        self.endpoints.pop(address, None)
        # Sever the pooled loopback connection only when the server
        # lived *here* (the serve-all cluster crashing one of its own):
        # on a daemon expelling a remote peer the pooled connection may
        # still carry in-flight replies from that peer's last words.
        connection = self._connections.get(address) if server is not None else None
        if server is not None:
            self._call(self._teardown_endpoint(server, connection), timeout=30)

    async def _teardown_endpoint(
        self, server: asyncio.AbstractServer | None, connection: "_Connection | None"
    ) -> None:
        if connection is not None:
            await self._close_connection(connection)
        if server is not None:
            server.close()
            await server.wait_closed()

    def is_registered(self, address: int) -> bool:
        return address in self._handlers

    def _serves(self, address: int) -> bool:
        """Whether this transport is the authority for ``address``.

        A daemon-shaped transport registers handlers for every node in
        the deployment (the routing layer needs the objects), but only
        the addresses in ``serve_addresses`` are *served* here — for the
        rest the authoritative state lives in some other process, so
        even a self-addressed RPC must cross the wire.
        """
        if address not in self._handlers:
            return False
        return self._serve is None or address in self._serve

    def addresses(self) -> frozenset[int]:
        """Local endpoints plus configured peers."""
        return frozenset(self._handlers) | frozenset(self.peers)

    def is_alive(self, address: int) -> bool:
        """Advisory: local endpoints are alive unless failed; configured
        peers are presumed alive (a real network cannot know better);
        unknown addresses are dead."""
        if address in self._failed:
            return False
        return address in self._handlers or address in self.peers

    # -- failure injection (local endpoints only) ---------------------

    def fail(self, address: int) -> None:
        """Fail-stop a local endpoint: incoming frames are read and
        dropped, so callers time out — the socket-world equivalent of
        the simulator's :meth:`~repro.sim.network.SimulatedNetwork.fail`."""
        if address not in self._handlers:
            raise PeerUnreachableError(address, "not a local endpoint; cannot fail it")
        self._failed.add(address)

    def recover(self, address: int) -> None:
        self._failed.discard(address)

    def drop_next_requests(self, address: int, count: int = 1) -> None:
        """Test hook: the next ``count`` requests arriving at local
        endpoint ``address`` have their TCP connection closed instead of
        being dispatched — injecting the dropped-connection failure the
        resilience layer must retry through."""
        self._drop_requests[address] += count

    # -- clock --------------------------------------------------------

    def now(self) -> float:
        """Monotonic wall-clock time in transport units."""
        return (time.monotonic() - self._epoch) / self.time_scale

    def sleep(self, delay: float) -> None:
        """Really sleep for ``delay`` transport units."""
        if delay > 0:
            time.sleep(delay * self.time_scale)

    # -- communication ------------------------------------------------

    def rpc(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Request over the wire, block for the correlated reply.

        ``timeout`` is in transport time units (``None``: the
        transport's default ``rpc_timeout`` seconds).
        """
        payload = payload or {}
        if src == dst and self._serves(dst):
            # Local call: free, exactly like the simulator.
            if dst in self._failed:
                raise PeerUnreachableError(dst, "failed")
            return self._handlers[dst](Message(src, dst, kind, payload))
        timeout_s = self.rpc_timeout if timeout is None else max(timeout * self.time_scale, 0.001)
        frame = Frame(
            FrameType.REQUEST,
            kind,
            src,
            dst,
            next(self._request_ids),
            payload,
            current_qos().priority,
        )
        # Account on send, before any failure can surface — parity with
        # the simulator's "the request is sent, then times out".
        self._account(Message(src, dst, kind, payload))
        if self.closed:
            raise RuntimeError("transport is closed")
        # Fast path: one loop callback per RPC (encode + write happen in
        # the callback, no coroutine or wait_for task), the caller parks
        # on a concurrent future, and the timeout is a loop timer.  The
        # backstop on result() only matters if the loop dies mid-call.
        waiter: concurrent.futures.Future = concurrent.futures.Future()
        started = time.monotonic()
        self._loop.call_soon_threadsafe(self._begin_rpc, dst, frame, timeout_s, waiter)
        try:
            reply = waiter.result(timeout_s + 30.0)
        except concurrent.futures.TimeoutError:
            raise RpcTimeoutError(dst, timeout_s) from None
        except (ConnectionError, OSError) as error:
            if isinstance(error, PeerUnreachableError):
                raise
            raise PeerUnreachableError(dst, f"connection lost ({error})") from error
        finally:
            self.metrics.record("net.rpc_latency", (time.monotonic() - started) / self.time_scale)
        if reply.type is FrameType.BUSY:
            # A shed request cost one message (the request); the busy
            # frame is a refusal, not a reply, and is not accounted —
            # parity with the simulator, where a shed request is a
            # request that went nowhere.
            raise self._busy_error(dst, reply)
        self._account(Message(dst, src, kind, {}, is_reply=True))
        if reply.type is FrameType.ERROR:
            detail = reply.payload if isinstance(reply.payload, dict) else {}
            raise RemoteHandlerError(
                dst, kind, detail.get("error", "Exception"), detail.get("message", "")
            )
        return reply.payload

    def rpc_many(self, calls: list[RpcCall] | tuple[RpcCall, ...]) -> list[RpcOutcome]:
        """Issue every call's frame concurrently and collect the replies.

        All remote frames are written back to back and their reply
        futures awaited together on the event loop, so the batch costs
        one slowest-reply wait instead of ``len(calls)`` sequential
        round trips — the concurrency the level-parallel tree walk
        (Section 3.5) needs to realize its ``r - |One|`` round bound in
        wall-clock time over sockets.

        Accounting parity with :meth:`rpc`, deterministically ordered:
        every request is accounted at issue time (in call order, before
        any failure can surface) and every successful call's reply is
        accounted after the batch completes, again in call order — so
        trace windows see the same message multiset as a sequential
        loop, whatever order the replies actually landed in.  Per-call
        failures (refused connection, timeout, remote handler error)
        become that call's outcome; batch mates are unaffected.
        """
        outcomes: list[RpcOutcome | None] = [None] * len(calls)
        remote: list[tuple[int, RpcCall, Frame, float]] = []
        for position, call in enumerate(calls):
            payload = call.payload or {}
            if call.src == call.dst and self._serves(call.dst):
                # Local call: free and immediate, exactly like rpc().
                if call.dst in self._failed:
                    outcomes[position] = RpcOutcome.failure(
                        PeerUnreachableError(call.dst, "failed")
                    )
                    continue
                try:
                    outcomes[position] = RpcOutcome.success(
                        self._handlers[call.dst](Message(call.src, call.dst, call.kind, payload))
                    )
                except Exception as error:  # noqa: BLE001 - per-call outcome
                    outcomes[position] = RpcOutcome.failure(error)
                continue
            timeout_s = (
                self.rpc_timeout
                if call.timeout is None
                else max(call.timeout * self.time_scale, 0.001)
            )
            frame = Frame(
                FrameType.REQUEST,
                call.kind,
                call.src,
                call.dst,
                next(self._request_ids),
                payload,
                current_qos().priority,
            )
            self._account(Message(call.src, call.dst, call.kind, payload))
            remote.append((position, call, frame, timeout_s))
        if remote:
            self.metrics.increment("net.batch_rpcs")
            self.metrics.increment("net.batch_calls", len(remote))
            started = time.monotonic()
            try:
                replies = self._call(
                    self._rpc_many_async([(f.dst, f, t) for _, _, f, t in remote])
                )
            finally:
                self.metrics.record(
                    "net.rpc_latency", (time.monotonic() - started) / self.time_scale
                )
            for (position, call, _, _), reply in zip(remote, replies):
                if isinstance(reply, BaseException):
                    if not isinstance(reply, (PeerUnreachableError, ProtocolError)):
                        reply = PeerUnreachableError(call.dst, f"connection lost ({reply})")
                    outcomes[position] = RpcOutcome.failure(reply)
                    continue
                if reply.type is FrameType.BUSY:
                    # Shed: one message accounted (the request), no
                    # reply accounting — see rpc().
                    outcomes[position] = RpcOutcome.failure(self._busy_error(call.dst, reply))
                    continue
                self._account(Message(call.dst, call.src, call.kind, {}, is_reply=True))
                if reply.type is FrameType.ERROR:
                    detail = reply.payload if isinstance(reply.payload, dict) else {}
                    outcomes[position] = RpcOutcome.failure(
                        RemoteHandlerError(
                            call.dst,
                            call.kind,
                            detail.get("error", "Exception"),
                            detail.get("message", ""),
                        )
                    )
                else:
                    outcomes[position] = RpcOutcome.success(reply.payload)
        return [outcome for outcome in outcomes if outcome is not None]

    def _busy_error(self, dst: int, reply: Frame) -> NodeBusyError:
        """Build the caller-facing error for one T_BUSY frame."""
        self.metrics.increment("net.busy_received")
        detail = reply.payload if isinstance(reply.payload, dict) else {}
        queue_depth = detail.get("queue_depth", 0)
        retry_after = detail.get("retry_after", 0.0)
        return NodeBusyError(
            dst,
            queue_depth if isinstance(queue_depth, int) else 0,
            float(retry_after) if isinstance(retry_after, (int, float)) else 0.0,
        )

    async def _rpc_many_async(
        self, entries: list[tuple[int, Frame, float]]
    ) -> list[Frame | BaseException]:
        """Gather all reply futures; exceptions stay per-entry."""
        return await asyncio.gather(
            *(self._rpc_async(dst, frame, timeout_s) for dst, frame, timeout_s in entries),
            return_exceptions=True,
        )

    async def _rpc_async(self, dst: int, frame: Frame, timeout_s: float) -> Frame:
        connection = await self._connection_to(dst)
        waiter: asyncio.Future[Frame] = self._loop.create_future()
        self._write_request(connection, frame, timeout_s, waiter)
        try:
            return await waiter
        except (ConnectionError, OSError) as error:
            if isinstance(error, PeerUnreachableError):
                raise
            raise PeerUnreachableError(dst, f"connection lost ({error})") from error
        finally:
            entry = connection.pending.pop(frame.request_id, None)
            if entry is not None and entry[1] is not None:
                entry[1].cancel()

    # -- RPC fast path (loop-side plumbing) ---------------------------

    def _begin_rpc(self, dst: int, frame: Frame, timeout_s: float, waiter) -> None:
        """Loop callback: write the request on the pooled connection.

        The common case (connection already open) runs entirely inside
        this callback; only a cold connection pays for a task.
        """
        connection = self._connections.get(dst)
        if connection is not None and not connection.closed:
            self._write_request(connection, frame, timeout_s, waiter)
            return
        task = self._loop.create_task(self._begin_rpc_connect(dst, frame, timeout_s, waiter))
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    async def _begin_rpc_connect(self, dst: int, frame: Frame, timeout_s: float, waiter) -> None:
        try:
            connection = await self._connection_to(dst)
        except asyncio.CancelledError:
            if not waiter.done():
                waiter.set_exception(ConnectionResetError("transport closed"))
            raise
        except BaseException as error:  # noqa: BLE001 - ferried to the caller
            if not waiter.done():
                waiter.set_exception(error)
            return
        self._write_request(connection, frame, timeout_s, waiter)

    def _write_request(self, connection: _Connection, frame: Frame, timeout_s: float, waiter) -> None:
        """Encode in the negotiated codec, register the waiter, write.

        No ``drain()``: in-flight RPCs are bounded by blocked caller
        threads, so the write buffer cannot grow without bound, and a
        peer that stops reading surfaces as reply timeouts.
        """
        try:
            data = self._encode_for(connection, frame)
        except Exception as error:  # noqa: BLE001 - ferried to the caller
            if not waiter.done():
                waiter.set_exception(error)
            return
        timer = self._loop.call_later(
            timeout_s, self._expire_request, connection, frame.request_id, frame.dst, timeout_s
        )
        connection.pending[frame.request_id] = (waiter, timer)
        try:
            connection.writer.write(data)
        except Exception as error:  # noqa: BLE001 - ferried to the caller
            timer.cancel()
            connection.pending.pop(frame.request_id, None)
            if not waiter.done():
                waiter.set_exception(
                    PeerUnreachableError(frame.dst, f"connection lost ({error})")
                )
            return
        self.metrics.increment("net.frames_sent")
        self.metrics.increment("net.bytes_sent", len(data))

    def _expire_request(
        self, connection: _Connection, request_id: int, dst: int, timeout_s: float
    ) -> None:
        entry = connection.pending.pop(request_id, None)
        if entry is None:
            return
        waiter, _ = entry
        if not waiter.done():
            waiter.set_exception(RpcTimeoutError(dst, timeout_s))

    def _encode_for(self, connection: _Connection, frame: Frame) -> bytes:
        """Serialize for this connection's negotiated codec.

        Until the peer's first frame proves it speaks v2, requests go
        out as v1 JSON; a binary-preferring transport attaches the
        capability advert to the connection's opening frame.
        """
        if self._codec_id == CODEC_BINARY and connection.tx_codec == CODEC_BINARY:
            return encode_frame(frame, max_frame_bytes=self.max_frame_bytes, codec=CODEC_BINARY)
        advertise = None
        if self._codec_id == CODEC_BINARY and not connection.greeted:
            advertise = _ADVERT
        connection.greeted = True
        return encode_frame(frame, max_frame_bytes=self.max_frame_bytes, advertise=advertise)

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        deliver: bool = True,
    ) -> None:
        """One-way datagram: accounted always, transmitted best-effort,
        silently lost when the destination is unreachable."""
        payload = payload or {}
        message = Message(src, dst, kind, payload)
        self._account(message)
        if not deliver:
            return
        if src == dst and self._serves(dst):
            if dst not in self._failed:
                self._handlers[dst](message)
            return
        frame = Frame(FrameType.DATAGRAM, kind, src, dst, next(self._request_ids), payload)
        try:
            self._call(self._send_async(dst, frame))
        except (PeerUnreachableError, ProtocolError):
            self.metrics.increment("net.datagrams_lost")

    # -- membership gossip --------------------------------------------

    def set_gossip_handler(self, handler) -> None:
        """Install the transport-level sink for incoming GOSSIP frames.

        ``handler(src, payload)`` runs on the handler thread pool for
        every gossip frame any served endpoint receives.  One handler
        per transport (the membership agent); None detaches it.
        """
        self._gossip_handler = handler

    def gossip(self, src: int, dst: int, payload: dict[str, Any]) -> None:
        """One-way membership exchange to ``dst``.

        Control-plane traffic: delivered over the same sockets but
        *not* accounted in ``network.messages`` (experiment parity —
        the paper's message counts cover protocol traffic only); it is
        counted under ``memb.gossip_sent`` instead.  Unlike
        :meth:`send`, an unreachable destination *raises*
        :class:`~repro.net.errors.PeerUnreachableError` — a failed
        gossip push doubles as a missed heartbeat, so the failure
        detector needs to see it.
        """
        if self._serves(dst):
            if dst in self._failed:
                raise PeerUnreachableError(dst, "failed")
            handler = self._gossip_handler
            if handler is not None:
                handler(src, payload)
            self.metrics.increment("memb.gossip_sent")
            return
        frame = Frame(FrameType.GOSSIP, "memb.gossip", src, dst, next(self._request_ids), payload)
        self._call(self._send_async(dst, frame))
        self.metrics.increment("memb.gossip_sent")

    async def _send_async(self, dst: int, frame: Frame) -> None:
        try:
            connection = await self._connection_to(dst)
            data = self._encode_for(connection, frame)
            connection.writer.write(data)
            self.metrics.increment("net.frames_sent")
            self.metrics.increment("net.bytes_sent", len(data))
            await connection.writer.drain()
        except (ConnectionError, OSError) as error:
            if isinstance(error, PeerUnreachableError):
                raise
            raise PeerUnreachableError(dst, f"connection lost ({error})") from error

    # -- client pool --------------------------------------------------

    def _endpoint_of(self, dst: int) -> tuple[str, int]:
        endpoint = self.endpoints.get(dst) or self.peers.get(dst)
        if endpoint is None:
            raise PeerUnreachableError(dst, "unknown: no endpoint or peer entry")
        return endpoint

    async def _connection_to(self, dst: int) -> _Connection:
        connection = self._connections.get(dst)
        if connection is not None and not connection.closed:
            return connection
        lock = self._connect_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            connection = self._connections.get(dst)
            if connection is not None and not connection.closed:
                return connection
            host, port = self._endpoint_of(dst)
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except (ConnectionError, OSError) as error:
                raise PeerUnreachableError(dst, f"connect failed ({error})") from error
            connection = _Connection(dst, reader, writer)
            connection.reader_task = self._loop.create_task(self._read_replies(connection))
            self._connections[dst] = connection
            self.metrics.increment("net.connections_opened")
            return connection

    async def _read_replies(self, connection: _Connection) -> None:
        """Demultiplex reply frames to their pending futures."""
        error: BaseException = ConnectionResetError("connection closed by peer")
        try:
            while True:
                received = await _read_frame(connection.reader, self.max_frame_bytes)
                if received is None:
                    break
                frame, codec_id, advertised = received
                self.metrics.increment("net.frames_received")
                # Negotiation: the peer's first frame pins this
                # connection's outgoing codec (binary only when both
                # sides speak it; upgrades once, never downgrades).
                if connection.tx_codec != CODEC_BINARY:
                    if self._codec_id == CODEC_BINARY and (
                        codec_id == CODEC_BINARY or CODEC_BINARY in advertised
                    ):
                        connection.tx_codec = CODEC_BINARY
                    elif connection.tx_codec is None:
                        connection.tx_codec = CODEC_JSON
                entry = connection.pending.pop(frame.request_id, None)
                if entry is not None:
                    waiter, timer = entry
                    if timer is not None:
                        timer.cancel()
                    if not waiter.done():
                        waiter.set_result(frame)
        except ProtocolError as protocol_error:
            self.metrics.increment("net.protocol_errors")
            error = protocol_error
        except (ConnectionError, OSError) as os_error:
            error = os_error
        except asyncio.CancelledError:
            error = ConnectionResetError("transport closed")
        finally:
            connection.closed = True
            self._connections.pop(connection.dst, None)
            for waiter, timer in connection.pending.values():
                if timer is not None:
                    timer.cancel()
                if not waiter.done():
                    waiter.set_exception(error)
            connection.pending.clear()
            connection.writer.close()

    # -- server side --------------------------------------------------

    async def _serve_connection(
        self, address: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._server_writers.add(writer)
        write_lock = asyncio.Lock()
        # Outgoing codec for this connection's replies, negotiated from
        # the frames the client sends: replies stay v1 JSON until the
        # client proves it speaks v2 (a v2 frame or a "cd" advert), so
        # the upgrade never outruns the peer.  One-element list: the
        # concurrent request tasks writing replies share the cell.
        tx_codec = [CODEC_JSON]
        try:
            while True:
                try:
                    received = await _read_frame(reader, self.max_frame_bytes)
                except ProtocolError:
                    # Malformed bytes poison the connection: count and
                    # hang up, never hang.
                    self.metrics.increment("net.protocol_errors")
                    break
                if received is None:
                    break
                frame, codec_id, advertised = received
                if (
                    tx_codec[0] != CODEC_BINARY
                    and self._codec_id == CODEC_BINARY
                    and (codec_id == CODEC_BINARY or CODEC_BINARY in advertised)
                ):
                    tx_codec[0] = CODEC_BINARY
                self.metrics.increment("net.frames_received")
                if address not in self._handlers:
                    break  # the endpoint was unregistered mid-connection: hang up
                if address in self._failed:
                    continue  # fail-stop: read and drop, caller times out
                if self._drop_requests.get(address, 0) > 0:
                    self._drop_requests[address] -= 1
                    break  # injected dropped connection
                if frame.type is FrameType.GOSSIP:
                    gossip_handler = self._gossip_handler
                    self.metrics.increment("memb.gossip_received")
                    if gossip_handler is not None:
                        try:
                            await self._loop.run_in_executor(
                                self._executor, gossip_handler, frame.src, frame.payload
                            )
                        except Exception:  # noqa: BLE001 - gossip has no reply path
                            self.metrics.increment("memb.gossip_handler_errors")
                    continue
                if frame.type is FrameType.DATAGRAM:
                    handler = self._handlers.get(address)
                    if handler is not None:
                        message = Message(frame.src, address, frame.kind, frame.payload)
                        try:
                            await self._loop.run_in_executor(self._executor, handler, message)
                        except Exception:  # noqa: BLE001 - datagrams have no reply path
                            self.metrics.increment("net.datagram_handler_errors")
                    continue
                if self.admission is not None and not self.admission.try_admit(
                    address, frame.priority
                ):
                    # Fast reject from the IO loop: no handler thread is
                    # touched, the caller learns within one round trip.
                    busy = Frame(
                        FrameType.BUSY,
                        frame.kind,
                        address,
                        frame.src,
                        frame.request_id,
                        {
                            "queue_depth": self.admission.depth(address),
                            "retry_after": self.admission.policy.retry_after,
                        },
                    )
                    await self._write_frame(writer, write_lock, busy, tx_codec)
                    continue
                # Dispatch concurrently: one task per admitted request,
                # so a slow handler does not serialize the connection.
                task = self._loop.create_task(
                    self._handle_request(address, frame, writer, write_lock, tx_codec)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionError, OSError):
            pass
        finally:
            self._server_writers.discard(writer)
            writer.close()

    async def _write_frame(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame: Frame,
        tx_codec: list[int],
    ) -> None:
        """Serialize one reply onto a shared server connection.

        Concurrent request tasks share one writer; the lock keeps each
        frame's write+drain atomic so flow-control backpressure never
        interleaves two frames' bytes.
        """
        data = encode_frame(frame, max_frame_bytes=self.max_frame_bytes, codec=tx_codec[0])
        async with write_lock:
            writer.write(data)
            self.metrics.increment("net.frames_sent")
            self.metrics.increment("net.bytes_sent", len(data))
            await writer.drain()

    async def _handle_request(
        self,
        address: int,
        frame: Frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        tx_codec: list[int],
    ) -> None:
        """Dispatch one admitted request and write its reply."""
        try:
            reply = await self._dispatch_request(address, frame)
            try:
                await self._write_frame(writer, write_lock, reply, tx_codec)
            except (ConnectionError, OSError):
                pass  # caller hung up; nothing to tell it
        finally:
            if self.admission is not None:
                self.admission.release(address)

    async def _dispatch_request(self, address: int, frame: Frame) -> Frame:
        handler = self._handlers.get(address)
        if handler is None:
            return Frame(
                FrameType.ERROR,
                frame.kind,
                address,
                frame.src,
                frame.request_id,
                {"error": "LookupError", "message": f"no handler at address {address}"},
            )
        message = Message(frame.src, address, frame.kind, frame.payload)
        try:
            # Handlers run on the thread pool: they may issue nested
            # RPCs (which block their thread on this loop) without
            # stalling frame IO.
            result = await self._loop.run_in_executor(self._executor, handler, message)
        except Exception as error:  # noqa: BLE001 - ferried to the caller
            return Frame(
                FrameType.ERROR,
                frame.kind,
                address,
                frame.src,
                frame.request_id,
                {"error": type(error).__name__, "message": str(error)},
            )
        return Frame(FrameType.REPLY, frame.kind, address, frame.src, frame.request_id, result)

    # -- tracing ------------------------------------------------------

    @contextmanager
    def trace(self) -> Iterator[MessageTrace]:
        """Capture every message sent inside the ``with`` block."""
        window = MessageTrace()
        with self._trace_lock:
            self._traces.append(window)
        try:
            yield window
        finally:
            with self._trace_lock:
                self._traces.remove(window)

    def _account(self, message: Message) -> None:
        self.metrics.increment("network.messages")
        with self._trace_lock:
            self.kind_counts[message.kind] += 1
            if not message.is_reply:
                self.received_counts[message.dst] += 1
            for window in self._traces:
                window.messages.append(message)
        recorder = active_recorder()
        if recorder is not None:
            recorder.raw.append(message)
