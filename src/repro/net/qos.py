"""Ambient per-operation quality-of-service context.

:class:`~repro.core.config.SearchOptions` carries two serving knobs —
``priority`` and ``deadline`` — that must reach layers far below the
search walker: priority is stamped on every wire frame the operation
sends (so a saturated node's admission controller can shed the right
requests), and the deadline bounds every
:class:`~repro.sim.resilience.ResilientChannel` retry budget along the
way.  Threading both through every intermediate call signature would
touch dozens of functions per knob (the pre-PR-6 deadline plumbing did
exactly that, once, per call site); instead they travel *ambiently* in
a :class:`contextvars.ContextVar`, the same mechanism the tracing layer
uses for its active recorder.

The context is set once at the operation boundary
(:meth:`~repro.core.service.KeywordSearchService.superset_search`, or
any :class:`~repro.client.Client` call) and read wherever it matters:

* :class:`~repro.net.aio.AsyncioTransport` stamps
  :attr:`QosContext.priority` into each outgoing request frame;
* :class:`~repro.sim.resilience.ResilientChannel` caps each call's
  retry budget at :attr:`QosContext.deadline_at` (absolute, in
  transport time units — the caller resolves ``now() + deadline`` once,
  so nested RPCs all race the same wall).

``contextvars`` gives correct isolation for free: concurrent operations
on different threads (the load generator's workers) or asyncio tasks
each see their own context, and the default context — no priority, no
deadline — is byte-for-byte the pre-QoS behaviour.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["QosContext", "current_qos", "qos_scope"]


@dataclass(frozen=True)
class QosContext:
    """The QoS envelope of one in-flight operation.

    ``priority`` orders requests under overload: an admission
    controller sheds priority-0 traffic first and grants higher
    priorities headroom (see
    :class:`~repro.net.admission.AdmissionPolicy`).  ``deadline_at`` is
    an *absolute* time on the issuing transport's clock (``None``: no
    deadline); absolute so that every RPC of the operation, however
    deeply nested, races the same instant rather than restarting a
    relative budget.
    """

    priority: int = 0
    deadline_at: float | None = None


_DEFAULT = QosContext()
_current: contextvars.ContextVar[QosContext] = contextvars.ContextVar(
    "repro_qos", default=_DEFAULT
)


def current_qos() -> QosContext:
    """The ambient QoS context (the no-priority, no-deadline default
    when none was established)."""
    return _current.get()


@contextmanager
def qos_scope(
    *, priority: int = 0, deadline_at: float | None = None
) -> Iterator[QosContext]:
    """Establish a QoS context for the duration of the ``with`` block.

    Scopes nest conservatively: the inner scope keeps the *stricter*
    of the two deadlines and the outer priority unless one is given
    explicitly (priority 0 inherits), so a prioritized caller cannot
    have its deadline silently widened by a library that opens its own
    scope.
    """
    outer = _current.get()
    if priority == 0:
        priority = outer.priority
    if deadline_at is None:
        deadline_at = outer.deadline_at
    elif outer.deadline_at is not None:
        deadline_at = min(deadline_at, outer.deadline_at)
    token = _current.set(QosContext(priority=priority, deadline_at=deadline_at))
    try:
        yield _current.get()
    finally:
        _current.reset(token)
