"""The codec core: one serialization stack for wire, WAL, and scans.

Every byte this package persists or transmits is produced by one of two
codecs defined here:

* :data:`CODEC_JSON` (id 1) — the original tagged-JSON encoding: a
  payload is lowered to pure-JSON types with ``{"!": tag, "v": ...}``
  wrappers for ``tuple`` / ``set`` / ``frozenset`` / awkward dicts,
  then ``json.dumps``-ed.  Human-readable, interoperable with v1 peers,
  and the rolling-upgrade fallback.
* :data:`CODEC_BINARY` (id 2) — a compact binary encoding: one type
  byte per value, varint integers (zigzag for sign), length-prefixed
  raw-UTF-8 strings, and a *flat posting-set* form
  (:class:`PostingList`) that serializes an ``hindex.scan`` reply's
  ``[(frozenset, tuple), ...]`` matches without per-element type bytes.
  Encoding appends into one reusable per-thread ``bytearray`` (no
  intermediate ``bytes`` joins); decoding walks offsets over a
  ``memoryview`` so no slice of the input is copied before the final
  ``str`` construction.

The two codecs carry the same value domain: ``None``, ``bool``,
``int`` (arbitrary precision), finite ``float``, ``str``, ``list``,
``tuple``, ``set``, ``frozenset``, and ``dict`` (any hashable encodable
keys).  Non-finite floats are rejected by *both* (JSON via
``allow_nan=False``) so a payload either round-trips under every codec
or is rejected by every codec — the cross-codec equality the property
tests pin.

Consumers:

* :mod:`repro.net.wire` — frame envelopes (version byte 1 = JSON
  envelope, version byte 2 = codec-id byte + that codec's envelope),
* :mod:`repro.store.wal` — WAL records and snapshots (version byte per
  record selects the codec; recovery auto-detects),
* :mod:`repro.core.index` — scan replies mark their matches as a
  :class:`PostingList` to opt into the flat encoding,
* :mod:`repro.sim.network` — opt-in codec-true byte accounting so
  simulator bandwidth rows stay comparable with the TCP transport.
"""

from __future__ import annotations

import json
import math
import struct
import threading
from typing import Any, Protocol

from repro.net.errors import ProtocolError

__all__ = [
    "CODEC_BINARY",
    "CODEC_IDS",
    "CODEC_JSON",
    "Codec",
    "PostingList",
    "codec_by_id",
    "codec_by_name",
    "decode_value_binary",
    "decode_value_json",
    "encode_value_binary",
    "encode_value_json",
    "new_buffer",
    "read_str",
    "read_uvarint",
    "read_varint",
    "write_dict_header",
    "write_str",
    "write_uvarint",
    "write_value_int",
    "write_value_str",
    "write_value_str_tuple",
    "write_varint",
]

CODEC_JSON = 1
CODEC_BINARY = 2
CODEC_IDS = (CODEC_JSON, CODEC_BINARY)

_TAG = "!"
_DOUBLE = struct.Struct("!d")

# Binary type bytes.  One byte per value; containers carry a varint
# count.  POSTINGS is the flat posting-set form (no per-element type
# bytes): varint rows, each row = varint keyword count, raw strings,
# varint id count, raw strings.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_TUPLE = 0x07
_T_SET = 0x08
_T_FROZENSET = 0x09
_T_DICT = 0x0A  # all-str keys, no tag-escape needed (unlike JSON)
_T_DICT_ANY = 0x0B  # arbitrary encodable keys
_T_POSTINGS = 0x0C


class PostingList(list):
    """A list of ``(frozenset[str], tuple[str, ...])`` posting rows.

    Behaves exactly like the plain list it subclasses — in-process
    consumers (the simulator, the search walkers) never notice — but
    the binary codec recognizes the type in O(1) and serializes the
    rows flat: no per-element type bytes, no tagged-object wrappers,
    one pass over the strings.  ``hindex.scan`` replies are the
    producer; anything shaped ``[(frozenset_of_str, tuple_of_str)]``
    may opt in.
    """

    __slots__ = ()


# -- reusable encode buffers ----------------------------------------------

_scratch = threading.local()


def new_buffer() -> bytearray:
    """The calling thread's reusable encode buffer, emptied.

    Encoders append into this single buffer and take one final
    ``bytes()`` copy, instead of allocating and joining intermediate
    byte strings per value.  One buffer per thread: encode calls never
    nest (a codec never recursively encodes a whole frame mid-frame).
    """
    buffer = getattr(_scratch, "buffer", None)
    if buffer is None:
        buffer = _scratch.buffer = bytearray()
    else:
        del buffer[:]
    return buffer


# -- varint / string primitives (shared with the WAL fast paths) ----------


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint (arbitrary precision)."""
    while value > 0x7F:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def write_varint(buffer: bytearray, value: int) -> None:
    """Append a signed integer, zigzag-mapped then LEB128."""
    write_uvarint(buffer, (value << 1) if value >= 0 else ((-value << 1) - 1))


def write_str(buffer: bytearray, value: str) -> None:
    """Append a length-prefixed raw-UTF-8 string (no type byte)."""
    raw = value.encode("utf-8")
    write_uvarint(buffer, len(raw))
    buffer += raw


def read_uvarint(data, position: int) -> tuple[int, int]:
    """Read an unsigned varint; returns ``(value, new position)``."""
    shift = 0
    result = 0
    while True:
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def read_varint(data, position: int) -> tuple[int, int]:
    """Read a zigzag varint; returns ``(value, new position)``."""
    raw, position = read_uvarint(data, position)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), position


def write_dict_header(buffer: bytearray, count: int) -> None:
    """Append a str-keyed dict header; the caller writes ``count``
    ``write_str`` key / value pairs after it.  Byte-identical to
    :func:`encode_value_binary` on the equivalent dict — the WAL's hot
    write path skips the generic dispatch, not the format."""
    buffer.append(_T_DICT)
    write_uvarint(buffer, count)


def write_value_str(buffer: bytearray, value: str) -> None:
    """Append one string *value* (type byte included)."""
    buffer.append(_T_STR)
    write_str(buffer, value)


def write_value_int(buffer: bytearray, value: int) -> None:
    """Append one int *value* (type byte included)."""
    buffer.append(_T_INT)
    write_uvarint(buffer, (value << 1) if value >= 0 else ((-value << 1) - 1))


def write_value_str_tuple(buffer: bytearray, items) -> None:
    """Append a tuple-of-strings *value* (type bytes included)."""
    buffer.append(_T_TUPLE)
    write_uvarint(buffer, len(items))
    for item in items:
        buffer.append(_T_STR)
        write_str(buffer, item)


def read_str(data, position: int) -> tuple[str, int]:
    """Read a length-prefixed string; returns ``(value, new position)``.

    ``data`` may be a ``memoryview``: the string is decoded straight
    from the underlying buffer (``str(view, "utf-8")``), no
    intermediate ``bytes`` copy.
    """
    length, position = read_uvarint(data, position)
    end = position + length
    if end > len(data):
        raise ProtocolError("truncated string in binary payload")
    return str(data[position:end], "utf-8"), end


# -- binary value encoding -------------------------------------------------


def _sorted_items(value) -> list:
    try:
        return sorted(value)
    except TypeError:
        return sorted(value, key=repr)


def encode_value_binary(buffer: bytearray, value: Any) -> None:
    """Append one value in the binary encoding.

    Sets are serialized in sorted order, exactly like the JSON codec,
    so identical values always produce identical bytes on either codec.
    """
    kind = type(value)
    if kind is str:
        buffer.append(_T_STR)
        write_str(buffer, value)
    elif kind is int:
        buffer.append(_T_INT)
        write_varint(buffer, value)
    elif kind is bool:
        buffer.append(_T_TRUE if value else _T_FALSE)
    elif value is None:
        buffer.append(_T_NONE)
    elif kind is dict:
        if all(type(key) is str for key in value):
            buffer.append(_T_DICT)
            write_uvarint(buffer, len(value))
            for key, item in value.items():
                write_str(buffer, key)
                encode_value_binary(buffer, item)
        else:
            buffer.append(_T_DICT_ANY)
            write_uvarint(buffer, len(value))
            for key, item in value.items():
                encode_value_binary(buffer, key)
                encode_value_binary(buffer, item)
    elif kind is PostingList:
        _encode_postings(buffer, value)
    elif kind is list or kind is tuple:
        buffer.append(_T_LIST if kind is list else _T_TUPLE)
        write_uvarint(buffer, len(value))
        for item in value:
            encode_value_binary(buffer, item)
    elif kind is set or kind is frozenset:
        buffer.append(_T_SET if kind is set else _T_FROZENSET)
        write_uvarint(buffer, len(value))
        for item in _sorted_items(value):
            encode_value_binary(buffer, item)
    elif kind is float:
        if not math.isfinite(value):
            raise ProtocolError(f"cannot encode non-finite float {value!r}")
        buffer.append(_T_FLOAT)
        buffer += _DOUBLE.pack(value)
    else:
        # Subclass fallbacks (rare: the exact-type checks above cover
        # every payload the protocol builds).
        if isinstance(value, bool):
            buffer.append(_T_TRUE if value else _T_FALSE)
        elif isinstance(value, int):
            buffer.append(_T_INT)
            write_varint(buffer, value)
        elif isinstance(value, (str, float)):
            encode_value_binary(buffer, str(value) if isinstance(value, str) else float(value))
        elif isinstance(value, PostingList):
            _encode_postings(buffer, value)
        elif isinstance(value, (list, tuple, set, frozenset, dict)):
            base = list if isinstance(value, list) else (
                tuple if isinstance(value, tuple) else (
                    set if isinstance(value, set) and not isinstance(value, frozenset)
                    else (frozenset if isinstance(value, frozenset) else dict)))
            encode_value_binary(buffer, base(value))
        else:
            raise ProtocolError(
                f"cannot encode {type(value).__name__} on the wire: {value!r}"
            )


def _encode_postings(buffer: bytearray, rows: list) -> None:
    """The flat posting-set form: one pass, strings only."""
    buffer.append(_T_POSTINGS)
    write_uvarint(buffer, len(rows))
    for keywords, object_ids in rows:
        ordered = _sorted_items(keywords)
        write_uvarint(buffer, len(ordered))
        for keyword in ordered:
            write_str(buffer, keyword)
        write_uvarint(buffer, len(object_ids))
        for object_id in object_ids:
            write_str(buffer, object_id)


def decode_value_binary(data, position: int) -> tuple[Any, int]:
    """Decode one value; returns ``(value, new position)``.

    ``data`` should be a ``memoryview`` (or ``bytes``); nothing is
    sliced except the final string constructions.
    """
    tag = data[position]
    position += 1
    if tag == _T_STR:
        return read_str(data, position)
    if tag == _T_INT:
        return read_varint(data, position)
    if tag == _T_NONE:
        return None, position
    if tag == _T_TRUE:
        return True, position
    if tag == _T_FALSE:
        return False, position
    if tag == _T_DICT:
        count, position = read_uvarint(data, position)
        result: dict = {}
        for _ in range(count):
            key, position = read_str(data, position)
            result[key], position = decode_value_binary(data, position)
        return result, position
    if tag == _T_DICT_ANY:
        count, position = read_uvarint(data, position)
        result = {}
        for _ in range(count):
            key, position = decode_value_binary(data, position)
            try:
                result[key], position = decode_value_binary(data, position)
            except TypeError as error:
                raise ProtocolError(f"malformed binary dict: {error}") from error
        return result, position
    if tag == _T_LIST or tag == _T_TUPLE:
        count, position = read_uvarint(data, position)
        items = []
        for _ in range(count):
            item, position = decode_value_binary(data, position)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), position
    if tag == _T_SET or tag == _T_FROZENSET:
        count, position = read_uvarint(data, position)
        items = []
        for _ in range(count):
            item, position = decode_value_binary(data, position)
            items.append(item)
        try:
            return (set(items) if tag == _T_SET else frozenset(items)), position
        except TypeError as error:
            raise ProtocolError(f"malformed binary set: {error}") from error
    if tag == _T_POSTINGS:
        rows_count, position = read_uvarint(data, position)
        rows = PostingList()
        for _ in range(rows_count):
            keyword_count, position = read_uvarint(data, position)
            keywords = []
            for _ in range(keyword_count):
                keyword, position = read_str(data, position)
                keywords.append(keyword)
            id_count, position = read_uvarint(data, position)
            object_ids = []
            for _ in range(id_count):
                object_id, position = read_str(data, position)
                object_ids.append(object_id)
            rows.append((frozenset(keywords), tuple(object_ids)))
        return rows, position
    if tag == _T_FLOAT:
        end = position + _DOUBLE.size
        if end > len(data):
            raise ProtocolError("truncated float in binary payload")
        return _DOUBLE.unpack_from(data, position)[0], end
    raise ProtocolError(f"unknown binary type byte 0x{tag:02x}")


# -- JSON value encoding (the v1 tagged lowering) --------------------------


def encode_value_json(value: Any) -> Any:
    """Lower a payload value to pure-JSON types, tagging the rest."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [encode_value_json(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value_json(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        tag = "set" if isinstance(value, set) else "frozenset"
        # Sort for deterministic bytes when items are comparable.
        return {_TAG: tag, "v": [encode_value_json(item) for item in _sorted_items(value)]}
    if isinstance(value, dict):
        if _TAG in value or not all(isinstance(key, str) for key in value):
            return {
                _TAG: "dict",
                "v": [
                    [encode_value_json(key), encode_value_json(item)]
                    for key, item in value.items()
                ],
            }
        return {key: encode_value_json(item) for key, item in value.items()}
    raise ProtocolError(f"cannot encode {type(value).__name__} on the wire: {value!r}")


def decode_value_json(value: Any) -> Any:
    """Invert :func:`encode_value_json`."""
    if isinstance(value, list):
        return [decode_value_json(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {key: decode_value_json(item) for key, item in value.items()}
        items = value.get("v")
        if not isinstance(items, list):
            raise ProtocolError(f"tagged value {tag!r} without a list body")
        if tag == "tuple":
            return tuple(decode_value_json(item) for item in items)
        if tag == "set":
            return {decode_value_json(item) for item in items}
        if tag == "frozenset":
            return frozenset(decode_value_json(item) for item in items)
        if tag == "dict":
            try:
                return {decode_value_json(key): decode_value_json(item) for key, item in items}
            except (TypeError, ValueError) as error:
                raise ProtocolError(f"malformed tagged dict: {error}") from error
        raise ProtocolError(f"unknown wire tag {tag!r}")
    return value


# -- the codec objects -----------------------------------------------------


class Codec(Protocol):
    """One self-contained value serialization.

    ``encode_into`` appends the serialized value to a caller-owned
    buffer (the reusable-``bytearray`` discipline); ``decode`` reads
    one value from a bytes-like object and must consume it fully.
    """

    id: int
    name: str

    def encode_into(self, buffer: bytearray, value: Any) -> None: ...

    def decode(self, data) -> Any: ...


class _JsonCodec:
    id = CODEC_JSON
    name = "json"

    def encode_into(self, buffer: bytearray, value: Any) -> None:
        try:
            buffer += json.dumps(
                encode_value_json(value), separators=(",", ":"), allow_nan=False
            ).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"unencodable payload: {error}") from error

    def decode(self, data) -> Any:
        try:
            return decode_value_json(json.loads(bytes(data).decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed JSON payload: {error}") from error


class _BinaryCodec:
    id = CODEC_BINARY
    name = "binary"

    def encode_into(self, buffer: bytearray, value: Any) -> None:
        try:
            encode_value_binary(buffer, value)
        except (TypeError, AttributeError, OverflowError, struct.error) as error:
            raise ProtocolError(f"unencodable payload: {error}") from error

    def decode(self, data) -> Any:
        view = data if isinstance(data, memoryview) else memoryview(data)
        try:
            value, position = decode_value_binary(view, 0)
        except (IndexError, ValueError) as error:
            raise ProtocolError(f"malformed binary payload: {error}") from error
        if position != len(view):
            raise ProtocolError(
                f"trailing bytes after binary payload ({len(view) - position} left)"
            )
        return value


JSON_CODEC = _JsonCodec()
BINARY_CODEC = _BinaryCodec()

_BY_ID = {CODEC_JSON: JSON_CODEC, CODEC_BINARY: BINARY_CODEC}
_BY_NAME = {"json": JSON_CODEC, "binary": BINARY_CODEC}


def codec_by_id(codec_id: int) -> Codec:
    codec = _BY_ID.get(codec_id)
    if codec is None:
        raise ProtocolError(f"unknown codec id {codec_id!r}")
    return codec


def codec_by_name(name) -> Codec:
    """Resolve ``"json"`` / ``"binary"`` (or an enum holding one, or an
    already-resolved codec) to the codec object."""
    if isinstance(name, (_JsonCodec, _BinaryCodec)):
        return name
    key = getattr(name, "value", name)
    codec = _BY_NAME.get(key)
    if codec is None:
        raise ValueError(f"unknown codec {name!r}; expected one of {sorted(_BY_NAME)}")
    return codec
