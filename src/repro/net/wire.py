"""Length-prefixed, versioned wire format for protocol messages.

Every frame on a connection is::

    +----------------+---------+----------------------------------+
    | length (4B BE) | version | JSON envelope (UTF-8), length-1 B |
    +----------------+---------+----------------------------------+

``length`` covers the version byte plus the JSON body, so a reader can
size its buffer before parsing.  The envelope is::

    {"t": <frame type>, "kind": ..., "src": ..., "dst": ...,
     "id": <request id>, "p": <tagged payload>}

Frame types: ``req`` (request, expects a reply), ``rep`` (reply,
``p`` is the handler's return value), ``err`` (reply, the handler
raised; ``p`` carries the error type and message), ``msg`` (one-way
datagram, no reply), ``busy`` (the T_BUSY fast-reject: the server's
admission controller refused the request before dispatching it; ``p``
carries the queue depth and a retry-after hint — see
:mod:`repro.net.admission`) and ``gos`` (a one-way anti-entropy
membership exchange carrying epoch-stamped peer-book deltas; handled
at the transport level, never dispatched to a node handler, and not
accounted as a protocol message — see :mod:`repro.membership`).  A request may carry an admission
priority in the optional envelope key ``"pr"``; zero (the default) is
omitted from the bytes, so pre-priority traffic encodes identically.

**Tagged payload encoding.**  Protocol payloads are not plain JSON:
the index layer ships keyword sets as ``frozenset`` and scan results
as ``(frozenset, tuple)`` pairs (see ``hindex.scan``).  Those types
round-trip through a tagged object encoding — ``{"!": "frozenset",
"v": [...]}`` and friends — so a handler behind a socket receives
*exactly* the payload it would have received in-process, which is what
makes simulator/socket result equality possible.  A literal dict that
happens to contain the tag key ``"!"`` is escaped as ``{"!": "dict",
"v": [[k, v], ...]}``; non-string dict keys use the same form.

**Rejection.**  Anything outside the format raises
:class:`~repro.net.errors.ProtocolError`: a declared length of zero or
beyond ``max_frame_bytes`` (both before any payload bytes are read, so
an attacker cannot make a reader buffer unbounded data), an unknown
version, undecodable UTF-8/JSON, a malformed envelope, or an
unencodable Python type on the sending side.  Truncated input never
hangs a :class:`FrameDecoder` — it simply yields nothing until more
bytes arrive, and `flush()` reports leftover trailing bytes.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Any

from repro.net.errors import ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "PROTOCOL_VERSION",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_value",
]

PROTOCOL_VERSION = 1
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024  # 16 MiB
_HEADER = struct.Struct("!I")
_TAG = "!"


class FrameType(enum.Enum):
    REQUEST = "req"
    REPLY = "rep"
    ERROR = "err"
    DATAGRAM = "msg"
    BUSY = "busy"
    GOSSIP = "gos"


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame.

    ``priority`` is the admission priority of a request (higher keeps a
    request admitted longer under overload; see
    :mod:`repro.net.admission`).  It rides in the envelope key ``"pr"``
    and is omitted from the bytes when zero, so frames that predate the
    field round-trip unchanged.
    """

    type: FrameType
    kind: str
    src: int
    dst: int
    request_id: int
    payload: Any = None
    priority: int = 0


# -- tagged value encoding ------------------------------------------------


def encode_value(value: Any) -> Any:
    """Lower a payload value to pure-JSON types, tagging the rest."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        tag = "set" if isinstance(value, set) else "frozenset"
        try:
            items = sorted(value)  # deterministic bytes when comparable
        except TypeError:
            items = sorted(value, key=repr)
        return {_TAG: tag, "v": [encode_value(item) for item in items]}
    if isinstance(value, dict):
        if _TAG in value or not all(isinstance(key, str) for key in value):
            return {
                _TAG: "dict",
                "v": [[encode_value(key), encode_value(item)] for key, item in value.items()],
            }
        return {key: encode_value(item) for key, item in value.items()}
    raise ProtocolError(f"cannot encode {type(value).__name__} on the wire: {value!r}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {key: decode_value(item) for key, item in value.items()}
        items = value.get("v")
        if not isinstance(items, list):
            raise ProtocolError(f"tagged value {tag!r} without a list body")
        if tag == "tuple":
            return tuple(decode_value(item) for item in items)
        if tag == "set":
            return {decode_value(item) for item in items}
        if tag == "frozenset":
            return frozenset(decode_value(item) for item in items)
        if tag == "dict":
            try:
                return {decode_value(key): decode_value(item) for key, item in items}
            except (TypeError, ValueError) as error:
                raise ProtocolError(f"malformed tagged dict: {error}") from error
        raise ProtocolError(f"unknown wire tag {tag!r}")
    return value


# -- frame encoding -------------------------------------------------------


def encode_frame(frame: Frame, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame, header included."""
    envelope = {
        "t": frame.type.value,
        "kind": frame.kind,
        "src": frame.src,
        "dst": frame.dst,
        "id": frame.request_id,
        "p": encode_value(frame.payload),
    }
    if frame.priority:
        envelope["pr"] = frame.priority
    try:
        body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"unencodable frame payload: {error}") from error
    length = len(body) + 1
    if length > max_frame_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap")
    return _HEADER.pack(length) + bytes([PROTOCOL_VERSION]) + body


def _parse_body(data: bytes) -> Frame:
    """Decode version byte + JSON envelope (no length header)."""
    if not data:
        raise ProtocolError("empty frame body")
    version = data[0]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported wire version {version} (speaking {PROTOCOL_VERSION})")
    try:
        envelope = json.loads(data[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame body: {error}") from error
    if not isinstance(envelope, dict):
        raise ProtocolError(f"frame envelope must be an object, got {type(envelope).__name__}")
    try:
        frame_type = FrameType(envelope["t"])
        kind = envelope["kind"]
        src = envelope["src"]
        dst = envelope["dst"]
        request_id = envelope["id"]
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"malformed frame envelope: {error}") from error
    if not isinstance(kind, str) or not isinstance(src, int) or not isinstance(dst, int):
        raise ProtocolError("frame envelope fields have wrong types")
    if not isinstance(request_id, int):
        raise ProtocolError("frame request id must be an integer")
    priority = envelope.get("pr", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("frame priority must be an integer")
    return Frame(
        frame_type, kind, src, dst, request_id, decode_value(envelope.get("p")), priority
    )


def decode_frame(
    data: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[Frame, int]:
    """Decode one complete frame from the head of ``data``.

    Returns ``(frame, bytes consumed)``.  Raises
    :class:`~repro.net.errors.ProtocolError` if the bytes are invalid
    *or* incomplete — use :class:`FrameDecoder` for streaming input.
    """
    declared = _declared_length(data, max_frame_bytes)
    if declared is None or len(data) < _HEADER.size + declared:
        raise ProtocolError("truncated frame")
    body = data[_HEADER.size : _HEADER.size + declared]
    return _parse_body(body), _HEADER.size + declared


def _declared_length(buffer: bytes, max_frame_bytes: int) -> int | None:
    """The body length declared by a (possibly partial) header.

    Returns None when fewer than 4 header bytes are available; raises
    on a length the format forbids — *before* any body bytes are read.
    """
    if len(buffer) < _HEADER.size:
        return None
    (declared,) = _HEADER.unpack_from(buffer)
    if declared == 0:
        raise ProtocolError("frame with zero-length body")
    if declared > max_frame_bytes:
        raise ProtocolError(
            f"declared frame length {declared} exceeds the {max_frame_bytes}-byte cap"
        )
    return declared


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed arbitrarily-chunked bytes; complete frames come out.  Invalid
    input raises :class:`~repro.net.errors.ProtocolError` immediately
    (oversized declared lengths are rejected from the 4 header bytes
    alone); incomplete input never blocks or raises — the decoder just
    waits for more.  After an error the decoder is poisoned and the
    connection that fed it should be closed.
    """

    def __init__(self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> list[Frame]:
        """Consume ``data``, returning every frame it completed."""
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier protocol error")
        self._buffer.extend(data)
        frames: list[Frame] = []
        try:
            while True:
                declared = _declared_length(bytes(self._buffer), self.max_frame_bytes)
                if declared is None or len(self._buffer) < _HEADER.size + declared:
                    break
                body = bytes(self._buffer[_HEADER.size : _HEADER.size + declared])
                del self._buffer[: _HEADER.size + declared]
                frames.append(_parse_body(body))
        except ProtocolError:
            self._poisoned = True
            raise
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def flush(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call at EOF: leftover bytes mean the peer died mid-frame, which
        is a protocol error worth surfacing rather than silence.
        """
        if self._buffer:
            raise ProtocolError(f"stream ended mid-frame with {len(self._buffer)} bytes pending")
