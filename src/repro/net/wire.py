"""Length-prefixed, versioned wire format for protocol messages.

Two frame layouts share the stream, distinguished by the version byte
(the codec core behind both lives in :mod:`repro.net.codec`):

**v1 — JSON** (the original format, the rolling-upgrade fallback)::

    +----------------+-----------+----------------------------------+
    | length (4B BE) | version=1 | JSON envelope (UTF-8), length-1 B |
    +----------------+-----------+----------------------------------+

    {"t": <frame type>, "kind": ..., "src": ..., "dst": ...,
     "id": <request id>, "p": <tagged payload>}

**v2 — binary** (the default since the codec refactor)::

    +----------------+-----------+----------+-----------------------+
    | length (4B BE) | version=2 | codec id | codec envelope        |
    +----------------+-----------+----------+-----------------------+

``length`` covers everything after the header (version byte onward), so
a reader can size its buffer before parsing.  The v2 envelope under
codec id 2 (binary) is: frame-type byte, length-prefixed ``kind``,
zigzag varints for ``src``/``dst``/``id``/``pr``, then the payload in
the binary value encoding — varint ints, raw UTF-8 strings, one type
byte per value, and the flat posting-set form for scan replies.  See
``docs/protocol.md`` §18 for the byte-level layout and the per-
connection negotiation handshake (a binary-capable peer's first frame
is v1 JSON carrying the capability advert key ``"cd"``; v1-only
parsers ignore unknown envelope keys, which is what makes the rolling
upgrade safe).

Frame types: ``req`` (request, expects a reply), ``rep`` (reply,
``p`` is the handler's return value), ``err`` (reply, the handler
raised; ``p`` carries the error type and message), ``msg`` (one-way
datagram, no reply), ``busy`` (the T_BUSY fast-reject: the server's
admission controller refused the request before dispatching it; ``p``
carries the queue depth and a retry-after hint — see
:mod:`repro.net.admission`) and ``gos`` (a one-way anti-entropy
membership exchange carrying epoch-stamped peer-book deltas; handled
at the transport level, never dispatched to a node handler, and not
accounted as a protocol message — see :mod:`repro.membership`).  A
request may carry an admission priority in the optional envelope key
``"pr"``; zero (the default) is omitted from the v1 bytes, so
pre-priority traffic encodes identically.

**Tagged payload encoding (v1).**  Protocol payloads are not plain
JSON: the index layer ships keyword sets as ``frozenset`` and scan
results as ``(frozenset, tuple)`` pairs (see ``hindex.scan``).  Those
types round-trip through a tagged object encoding — ``{"!":
"frozenset", "v": [...]}`` and friends — so a handler behind a socket
receives *exactly* the payload it would have received in-process,
which is what makes simulator/socket result equality possible.  The
binary codec carries the same value domain natively.  Non-finite
floats are rejected on both paths (JSON via ``allow_nan=False`` —
``json.dumps`` would otherwise emit the nonstandard ``NaN`` /
``Infinity`` literals that strict parsers reject).

**Rejection.**  Anything outside the format raises
:class:`~repro.net.errors.ProtocolError`: a declared length of zero or
beyond ``max_frame_bytes`` (both before any payload bytes are read, so
an attacker cannot make a reader buffer unbounded data), an unknown
version or codec id, undecodable UTF-8/JSON or malformed binary, a
malformed envelope, or an unencodable Python type on the sending side.
Truncated input never hangs a :class:`FrameDecoder` — it simply yields
nothing until more bytes arrive, and `flush()` reports leftover
trailing bytes.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Any

from repro.net.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    decode_value_binary,
    encode_value_binary,
    new_buffer,
    read_str,
    read_varint,
    write_str,
    write_varint,
)
from repro.net.codec import decode_value_json as decode_value
from repro.net.codec import encode_value_json as encode_value
from repro.net.errors import ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_BINARY",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_value",
    "parse_frame_info",
]

PROTOCOL_VERSION = 1
PROTOCOL_VERSION_BINARY = 2
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024  # 16 MiB
_HEADER = struct.Struct("!I")
_ADVERT_KEY = "cd"  # v1 envelope key listing the sender's codec ids


class FrameType(enum.Enum):
    REQUEST = "req"
    REPLY = "rep"
    ERROR = "err"
    DATAGRAM = "msg"
    BUSY = "busy"
    GOSSIP = "gos"


# v2 frame-type bytes: index into this tuple.  Append-only.
_FRAME_TYPES = (
    FrameType.REQUEST,
    FrameType.REPLY,
    FrameType.ERROR,
    FrameType.DATAGRAM,
    FrameType.BUSY,
    FrameType.GOSSIP,
)
_TYPE_CODES = {frame_type: code for code, frame_type in enumerate(_FRAME_TYPES)}


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame.

    ``priority`` is the admission priority of a request (higher keeps a
    request admitted longer under overload; see
    :mod:`repro.net.admission`).  It rides in the envelope key ``"pr"``
    and is omitted from the v1 bytes when zero, so frames that predate
    the field round-trip unchanged.
    """

    type: FrameType
    kind: str
    src: int
    dst: int
    request_id: int
    payload: Any = None
    priority: int = 0


# -- frame encoding -------------------------------------------------------


def encode_frame(
    frame: Frame,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    codec: int = CODEC_JSON,
    advertise: tuple[int, ...] | None = None,
) -> bytes:
    """Serialize one frame, header included.

    ``codec`` selects the layout: :data:`~repro.net.codec.CODEC_JSON`
    (the default) emits a v1 frame byte-identical to the pre-codec
    format; :data:`~repro.net.codec.CODEC_BINARY` emits a v2 frame.
    ``advertise`` (JSON frames only) lists codec ids in the ``"cd"``
    envelope key — the negotiation opener a binary-capable peer sends
    on a fresh connection.
    """
    if codec == CODEC_BINARY:
        buffer = new_buffer()
        buffer += b"\x00\x00\x00\x00"  # length, patched below
        buffer.append(PROTOCOL_VERSION_BINARY)
        buffer.append(CODEC_BINARY)
        buffer.append(_TYPE_CODES[frame.type])
        try:
            write_str(buffer, frame.kind)
            write_varint(buffer, frame.src)
            write_varint(buffer, frame.dst)
            write_varint(buffer, frame.request_id)
            write_varint(buffer, frame.priority)
            encode_value_binary(buffer, frame.payload)
        except (TypeError, AttributeError, OverflowError) as error:
            raise ProtocolError(f"unencodable frame payload: {error}") from error
        length = len(buffer) - _HEADER.size
        if length > max_frame_bytes:
            raise ProtocolError(f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap")
        _HEADER.pack_into(buffer, 0, length)
        return bytes(buffer)
    if codec != CODEC_JSON:
        raise ProtocolError(f"unknown codec id {codec!r}")
    envelope = {
        "t": frame.type.value,
        "kind": frame.kind,
        "src": frame.src,
        "dst": frame.dst,
        "id": frame.request_id,
        "p": encode_value(frame.payload),
    }
    if frame.priority:
        envelope["pr"] = frame.priority
    if advertise:
        envelope[_ADVERT_KEY] = sorted(advertise)
    try:
        body = json.dumps(envelope, separators=(",", ":"), allow_nan=False).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"unencodable frame payload: {error}") from error
    length = len(body) + 1
    if length > max_frame_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap")
    return _HEADER.pack(length) + bytes([PROTOCOL_VERSION]) + body


def _parse_json_envelope(data: bytes) -> tuple[Frame, tuple[int, ...]]:
    """Decode a JSON envelope; returns ``(frame, advertised codecs)``."""
    try:
        envelope = json.loads(bytes(data).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame body: {error}") from error
    if not isinstance(envelope, dict):
        raise ProtocolError(f"frame envelope must be an object, got {type(envelope).__name__}")
    try:
        frame_type = FrameType(envelope["t"])
        kind = envelope["kind"]
        src = envelope["src"]
        dst = envelope["dst"]
        request_id = envelope["id"]
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"malformed frame envelope: {error}") from error
    if not isinstance(kind, str) or not isinstance(src, int) or not isinstance(dst, int):
        raise ProtocolError("frame envelope fields have wrong types")
    if not isinstance(request_id, int):
        raise ProtocolError("frame request id must be an integer")
    priority = envelope.get("pr", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("frame priority must be an integer")
    advert = envelope.get(_ADVERT_KEY)
    advertised: tuple[int, ...] = ()
    if isinstance(advert, list) and all(
        isinstance(item, int) and not isinstance(item, bool) for item in advert
    ):
        advertised = tuple(advert)
    frame = Frame(
        frame_type, kind, src, dst, request_id, decode_value(envelope.get("p")), priority
    )
    return frame, advertised


def _parse_binary_envelope(view: memoryview) -> Frame:
    """Decode a v2 binary envelope (after the version and codec bytes)."""
    try:
        type_code = view[0]
        if type_code >= len(_FRAME_TYPES):
            raise ProtocolError(f"unknown frame type byte 0x{type_code:02x}")
        kind, position = read_str(view, 1)
        src, position = read_varint(view, position)
        dst, position = read_varint(view, position)
        request_id, position = read_varint(view, position)
        priority, position = read_varint(view, position)
        payload, position = decode_value_binary(view, position)
    except (IndexError, ValueError) as error:
        raise ProtocolError(f"malformed binary frame: {error}") from error
    if position != len(view):
        raise ProtocolError(
            f"trailing bytes after binary frame ({len(view) - position} left)"
        )
    return Frame(_FRAME_TYPES[type_code], kind, src, dst, request_id, payload, priority)


def parse_frame_info(data: bytes) -> tuple[Frame, int, tuple[int, ...]]:
    """Decode one frame body (no length header), with negotiation info.

    Returns ``(frame, codec id the frame arrived in, codec ids the
    sender advertised)``.  A v2 frame implies the sender speaks both
    codecs; a v1 frame advertises only through the ``"cd"`` key.
    """
    if not data:
        raise ProtocolError("empty frame body")
    version = data[0]
    if version == PROTOCOL_VERSION:
        frame, advertised = _parse_json_envelope(data[1:])
        return frame, CODEC_JSON, advertised
    if version == PROTOCOL_VERSION_BINARY:
        if len(data) < 2:
            raise ProtocolError("binary frame missing its codec id byte")
        codec_id = data[1]
        if codec_id == CODEC_BINARY:
            frame = _parse_binary_envelope(memoryview(data)[2:])
            return frame, CODEC_BINARY, (CODEC_JSON, CODEC_BINARY)
        if codec_id == CODEC_JSON:
            frame, advertised = _parse_json_envelope(data[2:])
            return frame, CODEC_JSON, advertised or (CODEC_JSON, CODEC_BINARY)
        raise ProtocolError(f"unknown codec id {codec_id} in v2 frame")
    raise ProtocolError(
        f"unsupported wire version {version} "
        f"(speaking {PROTOCOL_VERSION}/{PROTOCOL_VERSION_BINARY})"
    )


def _parse_body(data: bytes) -> Frame:
    """Decode version byte + envelope (no length header)."""
    return parse_frame_info(data)[0]


def decode_frame(
    data: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[Frame, int]:
    """Decode one complete frame from the head of ``data``.

    Returns ``(frame, bytes consumed)``.  Raises
    :class:`~repro.net.errors.ProtocolError` if the bytes are invalid
    *or* incomplete — use :class:`FrameDecoder` for streaming input.
    """
    declared = _declared_length(data, max_frame_bytes)
    if declared is None or len(data) < _HEADER.size + declared:
        raise ProtocolError("truncated frame")
    body = data[_HEADER.size : _HEADER.size + declared]
    return _parse_body(body), _HEADER.size + declared


def _declared_length(buffer, max_frame_bytes: int) -> int | None:
    """The body length declared by a (possibly partial) header.

    Returns None when fewer than 4 header bytes are available; raises
    on a length the format forbids — *before* any body bytes are read.
    """
    if len(buffer) < _HEADER.size:
        return None
    (declared,) = _HEADER.unpack_from(buffer)
    if declared == 0:
        raise ProtocolError("frame with zero-length body")
    if declared > max_frame_bytes:
        raise ProtocolError(
            f"declared frame length {declared} exceeds the {max_frame_bytes}-byte cap"
        )
    return declared


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed arbitrarily-chunked bytes; complete frames come out (either
    wire version, transparently).  Invalid input raises
    :class:`~repro.net.errors.ProtocolError` immediately (oversized
    declared lengths are rejected from the 4 header bytes alone);
    incomplete input never blocks or raises — the decoder just waits
    for more.  After an error the decoder is poisoned and the
    connection that fed it should be closed.
    """

    def __init__(self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> list[Frame]:
        """Consume ``data``, returning every frame it completed."""
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier protocol error")
        self._buffer.extend(data)
        frames: list[Frame] = []
        try:
            while True:
                declared = _declared_length(self._buffer, self.max_frame_bytes)
                if declared is None or len(self._buffer) < _HEADER.size + declared:
                    break
                body = bytes(self._buffer[_HEADER.size : _HEADER.size + declared])
                del self._buffer[: _HEADER.size + declared]
                frames.append(_parse_body(body))
        except ProtocolError:
            self._poisoned = True
            raise
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def flush(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call at EOF: leftover bytes mean the peer died mid-frame, which
        is a protocol error worth surfacing rather than silence.
        """
        if self._buffer:
            raise ProtocolError(f"stream ended mid-frame with {len(self._buffer)} bytes pending")
