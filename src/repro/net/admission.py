"""Per-node admission control: bounded inflight queues and load-shedding.

A node under sustained overload has exactly two choices: queue without
bound (latency grows until every caller times out — the p99 collapse
the load benchmarks demonstrate) or *shed*: refuse cheap and early,
keeping the work it did admit fast.  This module implements the second
choice for :class:`~repro.net.aio.AsyncioTransport`'s server side.

The mechanism is a per-served-address inflight cap.  Every REQUEST
frame accepted for dispatch holds one slot until its reply is written;
a frame arriving when no slot is free is answered with a ``T_BUSY``
frame (:attr:`~repro.net.wire.FrameType.BUSY`) straight from the IO
loop — no handler thread, no queueing, microseconds of work — carrying
the current queue depth and the policy's ``retry_after`` hint.  The
caller surfaces it as :class:`~repro.net.errors.NodeBusyError`, which
:class:`~repro.sim.resilience.ResilientChannel` retries with backoff
and counts separately from failures (a busy node is healthy, just
saturated — it must not trip circuit breakers).

**Priority.**  Requests carry an integer priority (stamped from the
ambient :class:`~repro.net.qos.QosContext`).  Priority-0 traffic is
admitted while fewer than ``max_inflight`` slots are held; requests
with priority > 0 may additionally use ``priority_headroom`` reserve
slots.  Under overload the reserve keeps interactive traffic flowing
while bulk load is shed — strict enough to bound the queue, simple
enough to decide in O(1) on the accept path.

Local calls (``src == dst`` on a serving transport) bypass admission
entirely, exactly as they bypass the socket: the paper's "consulting
your own table costs nothing" applies to queue slots too.

Metrics (all in the transport's registry, exported on ``/metrics``):

=========================  ==============================================
``net.admitted_requests``  requests granted a slot
``net.shed_requests``      requests answered T_BUSY
``net.shed_low_priority``  subset of shed with priority 0
``net.queue_depth``        histogram: inflight depth sampled at each admit
=========================  ==============================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.metrics import MetricsRegistry

__all__ = ["AdmissionController", "AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tuning knobs of one node's admission controller.

    ``max_inflight`` bounds concurrently admitted requests per served
    address (dispatched plus waiting on a handler thread);
    ``priority_headroom`` adds reserve slots only priority > 0 requests
    may occupy; ``retry_after`` is the backoff hint (transport time
    units) shipped in every T_BUSY reply — 0 leaves the retry cadence
    entirely to the caller's policy.
    """

    max_inflight: int = 64
    priority_headroom: int = 0
    retry_after: float = 0.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.priority_headroom < 0:
            raise ValueError(
                f"priority_headroom must be >= 0, got {self.priority_headroom}"
            )
        if self.retry_after < 0:
            raise ValueError(f"retry_after must be >= 0, got {self.retry_after}")

    def capacity_for(self, priority: int) -> int:
        """The slot ceiling a request of ``priority`` may fill up to."""
        if priority > 0:
            return self.max_inflight + self.priority_headroom
        return self.max_inflight


class AdmissionController:
    """Slot bookkeeping for every address one transport serves.

    Confined to the transport's event-loop thread (admission decisions
    happen at frame-read time, releases when the reply is written), so
    plain counters suffice — no locks on the accept path.
    """

    def __init__(self, policy: AdmissionPolicy, metrics: "MetricsRegistry"):
        self.policy = policy
        self.metrics = metrics
        self._inflight: Counter[int] = Counter()

    def depth(self, address: int) -> int:
        """Currently held slots at ``address``."""
        return self._inflight[address]

    def try_admit(self, address: int, priority: int = 0) -> bool:
        """Claim a slot for one request; False means shed it (T_BUSY).

        The caller must pair every True with exactly one
        :meth:`release` once the request's reply (or error) is written.
        """
        depth = self._inflight[address]
        if depth >= self.policy.capacity_for(priority):
            self.metrics.increment("net.shed_requests")
            if priority <= 0:
                self.metrics.increment("net.shed_low_priority")
            return False
        self._inflight[address] = depth + 1
        self.metrics.increment("net.admitted_requests")
        self.metrics.record("net.queue_depth", float(depth + 1))
        return True

    def release(self, address: int) -> None:
        """Return one slot claimed by :meth:`try_admit`."""
        depth = self._inflight[address]
        if depth <= 0:  # pragma: no cover - defensive: unbalanced release
            raise RuntimeError(f"admission release without admit at address {address}")
        self._inflight[address] = depth - 1
