"""``NodeDaemon``: host one DHT node behind a TCP endpoint.

A daemon builds the *whole* deterministic stack from the shared
``(seed, config)`` spec — the static-membership deployment model: every
participant derives the same address list, placement mapping, and
routing tables from the config, so no join protocol is needed — but
serves exactly **one** address over TCP.  RPCs its node's protocol code
issues toward any other address are dialled out to that address's
daemon, found through the ``peers`` book (address -> host:port).

Deployment recipe (one shell per node)::

    python -m repro node addresses --dimension 6 --nodes 4 --seed 7
    # -> e.g. 1182657605 1399953982 2916232149 3675293713

    python -m repro node serve --dimension 6 --nodes 4 --seed 7 \\
        --address 1182657605 --port 9001 \\
        --peer 1399953982=127.0.0.1:9002 \\
        --peer 2916232149=127.0.0.1:9003 \\
        --peer 3675293713=127.0.0.1:9004

Each daemon prints ``serving <address> on <host>:<port>`` once its
socket is bound.  Any daemon can then publish and search through its
:attr:`NodeDaemon.service`; the CLI form just serves until interrupted.

For an N-node deployment inside one process (tests, benchmarks, smoke
jobs) use :class:`~repro.net.cluster.LocalCluster` instead.
"""

from __future__ import annotations

import argparse
import signal
import threading
from pathlib import Path

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.membership import MembershipAgent, MembershipApplication, MembershipPolicy, PeerBook
from repro.net.admission import AdmissionPolicy
from repro.net.aio import AsyncioTransport
from repro.obs.stats import StatsServer
from repro.store.backend import MemoryStore
from repro.store.file import FileStore

__all__ = ["NodeDaemon", "cluster_addresses", "add_node_commands", "run_node_command"]


def cluster_addresses(config: ServiceConfig) -> list[int]:
    """The DHT addresses a deployment of ``config`` consists of.

    Derived by building a throwaway simulated stack from the same seed —
    cheap, and guaranteed to agree with what every daemon derives.
    """
    return KeywordSearchService.create(config).dolr.addresses()


class NodeDaemon:
    """One node of a multi-process deployment."""

    def __init__(
        self,
        config: ServiceConfig,
        address: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        peers: dict[int, tuple[str, int]] | None = None,
        rpc_timeout: float = 10.0,
        time_scale: float = 0.001,
        stats_port: int | None = None,
        data_dir: str | Path | None = None,
        admission: AdmissionPolicy | None = None,
        membership: bool | MembershipPolicy = False,
        join: bool = False,
    ):
        """``stats_port`` (0 for OS-assigned) additionally serves this
        daemon's metrics over HTTP — Prometheus text at ``/metrics``,
        JSON at ``/metrics.json`` (see :mod:`repro.obs.stats`).

        ``admission`` bounds the served node's inflight requests:
        excess requests are answered T_BUSY straight from the IO loop
        instead of queueing behind the handler pool (see
        :mod:`repro.net.admission`).  None admits everything.

        ``data_dir`` makes the served node durable: its index shard and
        reference table live in a WAL + snapshot store under
        ``<data_dir>/node-<address>/`` (see :mod:`repro.store`), replayed
        on boot — so a ``kill -9``'d daemon restarted from the same
        directory serves its full shard again.  The *other* addresses of
        the derived deployment stay in memory (their daemons own their
        own directories).

        ``membership`` (False, True, or a
        :class:`~repro.membership.MembershipPolicy`) runs the gossip /
        failure-detection agent for this daemon and serves the
        ``memb.*`` management RPCs.  With ``data_dir`` it also persists
        the peer book (plus this daemon's own endpoint) to
        ``<data_dir>/membership.json``, and — when ``peers`` is empty —
        rejoins from that file on restart: the saved endpoints become
        the peer book and the saved port is re-bound, so no peer list
        needs re-passing.

        ``join=True`` (requires ``membership``) serves an address that
        is *not* part of the derived deployment: the daemon admits
        itself into its own ring view and, once :meth:`announce` is
        called with a seed, the rest of the deployment learns of it and
        hands over the index tables it now owns.
        """
        self.config = config
        self.address = address
        self.stats: StatsServer | None = None
        self.membership: MembershipAgent | None = None
        self._shutdown = threading.Event()
        if join and not membership:
            raise ValueError("join=True requires membership to be enabled")
        self._membership_path = (
            None if data_dir is None else Path(data_dir) / "membership.json"
        )
        if (
            not peers
            and self._membership_path is not None
            and self._membership_path.exists()
        ):
            # Satellite state from a previous run: rejoin from the local
            # book instead of requiring the full peer list again.
            saved_book, saved_meta = PeerBook.load(self._membership_path)
            self._rejoin_book: PeerBook | None = saved_book
            peers = {
                a: endpoint for a, endpoint in saved_book.endpoints().items() if a != address
            }
            if port == 0:
                port = int(saved_meta.get("port", 0))
            record = saved_book.get(address)
            if record is not None and record.status == "left":
                raise ValueError(
                    f"address {address} already left this deployment per "
                    f"{self._membership_path}; refusing to rejoin"
                )
        else:
            self._rejoin_book = None
        self.transport = AsyncioTransport(
            host=host,
            serve_addresses={address},
            ports={address: port},
            peers=peers or {},
            rpc_timeout=rpc_timeout,
            time_scale=time_scale,
            admission=admission,
            codec=config.codec,
        )
        store_factory = None
        if data_dir is not None:
            base = Path(data_dir)

            def store_factory(addr: int):
                if addr == address:
                    return FileStore(
                        base / f"node-{addr}",
                        metrics=self.transport.metrics,
                        codec=config.codec,
                    )
                return MemoryStore()

        try:
            self.service = KeywordSearchService.create(
                config, network=self.transport, store_factory=store_factory
            )
            if address not in self.service.dolr.nodes and not join:
                known = self.service.dolr.addresses()
                raise ValueError(
                    f"address {address} is not part of this deployment; "
                    f"valid addresses: {known} (pass join=True to join a "
                    "running deployment at a new address)"
                )
            if membership:
                policy = membership if isinstance(membership, MembershipPolicy) else None
                agent = MembershipAgent(
                    self.service,
                    self.transport,
                    policy=policy,
                    served=set() if join else {address},
                    seed=address,
                    on_change=self._save_membership,
                    on_leave=lambda _address: self.request_shutdown(),
                )
                self.service.dolr.install_everywhere(
                    lambda node: MembershipApplication(agent)
                )
                self.membership = agent
                if self._rejoin_book is not None:
                    # Fold the previous run's book in before anything
                    # else: dead/left peers get expelled from the derived
                    # view, known endpoints land in the peer table.
                    applied = agent.book.merge(self._rejoin_book.records.values())
                    agent._reconcile(applied)
                if join:
                    if store_factory is not None:
                        # Make the joined address durable too: the shard
                        # factory reads this dict when admit provisions
                        # the new node.
                        self.service.stores[address] = store_factory(address)
                    agent.join(address)
                    if store_factory is not None:
                        self.service.dolr.node(address).attach_store(
                            self.service.stores[address]
                        )
                    for seed in sorted(set(self.transport.peers) - {address}):
                        try:
                            agent.announce(address, seed)
                            break
                        except Exception:  # noqa: BLE001 - try the next seed
                            continue
                else:
                    # Outrank any stale "dead" record from a downtime.
                    agent.assert_alive(address)
                    for seed in sorted(set(self.transport.peers) - {address}):
                        try:
                            agent.announce(address, seed)
                        except Exception:  # noqa: BLE001 - seed down; try next
                            continue
                        record = agent.book.get(address)
                        if record is None or record.status != "alive":
                            # The deployment had declared us dead at a
                            # higher epoch; re-assert above it and spread.
                            agent.assert_alive(address)
                            agent.announce(address, seed)
                        break
                agent.start()
                self._save_membership(agent.book)
            if stats_port is not None:
                self.stats = StatsServer(self.transport.metrics, host=host, port=stats_port)
        except BaseException:
            self.close()
            raise

    @property
    def endpoint(self) -> tuple[str, int]:
        """The (host, port) this daemon's node listens on."""
        return self.transport.endpoints[self.address]

    @property
    def stats_endpoint(self) -> tuple[str, int] | None:
        """The (host, port) of the stats endpoint, when one is up."""
        return self.stats.endpoint if self.stats is not None else None

    @property
    def store(self):
        """The served address's durable backend (None without data_dir)."""
        service = getattr(self, "service", None)
        if service is None:
            return None
        return service.stores.get(self.address)

    # -- graceful shutdown --------------------------------------------

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self, *_signal_args) -> None:
        """Ask the serve loop to exit; safe to call from a signal handler."""
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into :meth:`request_shutdown` so the
        serve loop winds down through :meth:`close` — flushing the WAL
        and closing the stats server — instead of dying mid-append.
        Main thread only (a signal-module constraint)."""
        signal.signal(signal.SIGTERM, self.request_shutdown)
        signal.signal(signal.SIGINT, self.request_shutdown)

    def __enter__(self) -> "NodeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        membership = getattr(self, "membership", None)
        if membership is not None:
            membership.stop()
            self.membership = None
        if self.stats is not None:
            self.stats.close()
            self.stats = None
        service = getattr(self, "service", None)
        if service is not None:
            service.close_stores()
        self.transport.close()

    # -- membership persistence ---------------------------------------

    def _save_membership(self, book) -> None:
        """Write the peer book + this daemon's own endpoint under the
        data dir, so a restart can rejoin without the full peer list."""
        if self._membership_path is None:
            return
        endpoint = self.transport.endpoints.get(self.address)
        book.save(
            self._membership_path,
            extra={
                "address": self.address,
                "host": endpoint[0] if endpoint else None,
                "port": endpoint[1] if endpoint else 0,
            },
        )


# -- CLI glue (python -m repro node ...) -----------------------------------


def _parse_peer(spec: str) -> tuple[int, tuple[str, int]]:
    """Parse ``ADDRESS=HOST:PORT``."""
    try:
        address_part, endpoint = spec.split("=", 1)
        host, port = endpoint.rsplit(":", 1)
        return int(address_part), (host, int(port))
    except ValueError:
        raise SystemExit(
            f"invalid --peer {spec!r}: expected ADDRESS=HOST:PORT"
        ) from None


def _config_from(arguments: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        dimension=arguments.dimension,
        num_dht_nodes=arguments.nodes,
        dht=arguments.dht,
        dht_bits=arguments.bits,
        seed=arguments.seed,
        prefix_directory=getattr(arguments, "prefix_directory", False),
        codec=getattr(arguments, "codec", "binary"),
    )


def add_node_commands(commands) -> None:
    """Register the ``node`` subcommand group on the repro CLI."""
    node = commands.add_parser("node", help="run or inspect a real TCP node deployment")
    actions = node.add_subparsers(dest="node_command", required=True)

    def common(subparser) -> None:
        subparser.add_argument("--dimension", type=int, required=True, help="hypercube dimension")
        subparser.add_argument("--nodes", type=int, required=True, help="number of DHT nodes")
        subparser.add_argument("--dht", default="chord", choices=["chord", "kademlia", "pastry"])
        subparser.add_argument("--bits", type=int, default=32, help="identifier-space bits")
        subparser.add_argument("--seed", type=int, default=0, help="deployment seed")
        subparser.add_argument(
            "--prefix-directory",
            action="store_true",
            help="maintain the distributed keyword directory (prefix search, "
            "docs/protocol.md §17); every daemon of a deployment must agree",
        )

    addresses = actions.add_parser(
        "addresses", help="print the node addresses this deployment consists of"
    )
    common(addresses)

    def serving_options(subparser, *, joining: bool) -> None:
        subparser.add_argument(
            "--address",
            type=int,
            required=True,
            help="a brand-new node id to join at" if joining else "which node to serve",
        )
        subparser.add_argument("--host", default="127.0.0.1")
        subparser.add_argument(
            "--port", type=int, default=0, help="listen port (0: OS-assigned)"
        )
        subparser.add_argument(
            "--peer",
            action="append",
            default=[],
            metavar="ADDRESS=HOST:PORT",
            help="endpoint of another node's daemon (repeatable)"
            + ("; at least one seed is how the deployment is found" if joining else ""),
        )
        subparser.add_argument(
            "--stats-port",
            type=int,
            default=None,
            help="also serve Prometheus/JSON metrics over HTTP on this port "
            "(0: OS-assigned)",
        )
        subparser.add_argument(
            "--data-dir",
            default=None,
            help="persist this node's state under DIR/node-<address>/ (WAL + snapshots) "
            "plus the peer book in DIR/membership.json, replayed on restart",
        )
        subparser.add_argument(
            "--max-inflight",
            type=int,
            default=None,
            help="admission control: bound concurrently served requests; excess requests "
            "are shed with T_BUSY (default: unbounded, no admission control)",
        )
        subparser.add_argument(
            "--priority-headroom",
            type=int,
            default=0,
            help="extra admission slots reserved for priority > 0 requests "
            "(only with --max-inflight)",
        )
        subparser.add_argument(
            "--retry-after",
            type=float,
            default=0.0,
            help="backoff hint (transport time units) shipped in T_BUSY replies "
            "(only with --max-inflight)",
        )
        subparser.add_argument(
            "--codec",
            default="binary",
            choices=["json", "binary"],
            help="wire + WAL serialization (docs/protocol.md §18): 'binary' (default) "
            "negotiates the v2 binary envelope per connection and falls back to JSON "
            "with v1 peers; 'json' pins the v1 format",
        )
        if not joining:
            subparser.add_argument(
                "--membership",
                action="store_true",
                help="run the gossip/failure-detection agent and serve the memb.* "
                "management RPCs (see repro.membership)",
            )

    serve = actions.add_parser("serve", help="host one node's endpoint over TCP")
    common(serve)
    serving_options(serve, joining=False)

    join = actions.add_parser(
        "join",
        help="join a *running* deployment at a brand-new address (implies membership)",
    )
    common(join)
    serving_options(join, joining=True)

    leave = actions.add_parser(
        "leave",
        help="ask a running daemon to evacuate its tables and shut down gracefully",
    )
    common(leave)
    leave.add_argument("--address", type=int, required=True, help="the node to retire")
    leave.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="ADDRESS=HOST:PORT",
        help="endpoint of the target daemon (ADDRESS must match --address)",
    )
    leave.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the evacuation to finish",
    )


def _run_leave_command(config: ServiceConfig, arguments: argparse.Namespace) -> int:
    """Client side of ``repro node leave``: one RPC to the target."""
    peers = dict(_parse_peer(spec) for spec in arguments.peer)
    if arguments.address not in peers:
        raise SystemExit(
            f"--peer must include the endpoint of the target daemon "
            f"({arguments.address}=HOST:PORT)"
        )
    transport = AsyncioTransport(
        serve_addresses=set(), peers=peers, rpc_timeout=arguments.timeout
    )
    try:
        reply = transport.rpc(arguments.address, arguments.address, "memb.leave", {})
    finally:
        transport.close()
    print(f"left {arguments.address}: {reply['moved']} references evacuated", flush=True)
    return 0


def run_node_command(arguments: argparse.Namespace) -> int:
    config = _config_from(arguments)
    if arguments.node_command == "addresses":
        for address in cluster_addresses(config):
            print(address)
        return 0
    if arguments.node_command == "leave":
        return _run_leave_command(config, arguments)

    joining = arguments.node_command == "join"
    peers = dict(_parse_peer(spec) for spec in arguments.peer)
    admission = None
    if arguments.max_inflight is not None:
        admission = AdmissionPolicy(
            max_inflight=arguments.max_inflight,
            priority_headroom=arguments.priority_headroom,
            retry_after=arguments.retry_after,
        )
    daemon = NodeDaemon(
        config,
        arguments.address,
        host=arguments.host,
        port=arguments.port,
        peers=peers,
        stats_port=arguments.stats_port,
        data_dir=arguments.data_dir,
        admission=admission,
        membership=joining or getattr(arguments, "membership", False),
        join=joining,
    )
    host, port = daemon.endpoint
    print(f"serving {arguments.address} on {host}:{port}", flush=True)
    if daemon.stats_endpoint is not None:
        stats_host, stats_port = daemon.stats_endpoint
        print(f"stats on http://{stats_host}:{stats_port}/metrics", flush=True)
    daemon.install_signal_handlers()
    try:
        while not daemon.shutdown_requested:
            daemon.transport.sleep(250)  # all work happens in the IO thread
    except KeyboardInterrupt:  # pre-handler-installation race
        pass
    finally:
        daemon.close()
    print(f"stopped {arguments.address}", flush=True)
    return 0
