"""``NodeDaemon``: host one DHT node behind a TCP endpoint.

A daemon builds the *whole* deterministic stack from the shared
``(seed, config)`` spec — the static-membership deployment model: every
participant derives the same address list, placement mapping, and
routing tables from the config, so no join protocol is needed — but
serves exactly **one** address over TCP.  RPCs its node's protocol code
issues toward any other address are dialled out to that address's
daemon, found through the ``peers`` book (address -> host:port).

Deployment recipe (one shell per node)::

    python -m repro node addresses --dimension 6 --nodes 4 --seed 7
    # -> e.g. 1182657605 1399953982 2916232149 3675293713

    python -m repro node serve --dimension 6 --nodes 4 --seed 7 \\
        --address 1182657605 --port 9001 \\
        --peer 1399953982=127.0.0.1:9002 \\
        --peer 2916232149=127.0.0.1:9003 \\
        --peer 3675293713=127.0.0.1:9004

Each daemon prints ``serving <address> on <host>:<port>`` once its
socket is bound.  Any daemon can then publish and search through its
:attr:`NodeDaemon.service`; the CLI form just serves until interrupted.

For an N-node deployment inside one process (tests, benchmarks, smoke
jobs) use :class:`~repro.net.cluster.LocalCluster` instead.
"""

from __future__ import annotations

import argparse

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.aio import AsyncioTransport
from repro.obs.stats import StatsServer

__all__ = ["NodeDaemon", "cluster_addresses", "add_node_commands", "run_node_command"]


def cluster_addresses(config: ServiceConfig) -> list[int]:
    """The DHT addresses a deployment of ``config`` consists of.

    Derived by building a throwaway simulated stack from the same seed —
    cheap, and guaranteed to agree with what every daemon derives.
    """
    return KeywordSearchService.create(config).dolr.addresses()


class NodeDaemon:
    """One node of a multi-process deployment."""

    def __init__(
        self,
        config: ServiceConfig,
        address: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        peers: dict[int, tuple[str, int]] | None = None,
        rpc_timeout: float = 10.0,
        time_scale: float = 0.001,
        stats_port: int | None = None,
    ):
        """``stats_port`` (0 for OS-assigned) additionally serves this
        daemon's metrics over HTTP — Prometheus text at ``/metrics``,
        JSON at ``/metrics.json`` (see :mod:`repro.obs.stats`)."""
        self.config = config
        self.address = address
        self.stats: StatsServer | None = None
        self.transport = AsyncioTransport(
            host=host,
            serve_addresses={address},
            ports={address: port},
            peers=peers or {},
            rpc_timeout=rpc_timeout,
            time_scale=time_scale,
        )
        try:
            self.service = KeywordSearchService.create(config, network=self.transport)
            if address not in self.service.dolr.nodes:
                known = self.service.dolr.addresses()
                raise ValueError(
                    f"address {address} is not part of this deployment; "
                    f"valid addresses: {known}"
                )
            if stats_port is not None:
                self.stats = StatsServer(self.transport.metrics, host=host, port=stats_port)
        except BaseException:
            self.close()
            raise

    @property
    def endpoint(self) -> tuple[str, int]:
        """The (host, port) this daemon's node listens on."""
        return self.transport.endpoints[self.address]

    @property
    def stats_endpoint(self) -> tuple[str, int] | None:
        """The (host, port) of the stats endpoint, when one is up."""
        return self.stats.endpoint if self.stats is not None else None

    def __enter__(self) -> "NodeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self.stats is not None:
            self.stats.close()
            self.stats = None
        self.transport.close()


# -- CLI glue (python -m repro node ...) -----------------------------------


def _parse_peer(spec: str) -> tuple[int, tuple[str, int]]:
    """Parse ``ADDRESS=HOST:PORT``."""
    try:
        address_part, endpoint = spec.split("=", 1)
        host, port = endpoint.rsplit(":", 1)
        return int(address_part), (host, int(port))
    except ValueError:
        raise SystemExit(
            f"invalid --peer {spec!r}: expected ADDRESS=HOST:PORT"
        ) from None


def _config_from(arguments: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        dimension=arguments.dimension,
        num_dht_nodes=arguments.nodes,
        dht=arguments.dht,
        dht_bits=arguments.bits,
        seed=arguments.seed,
    )


def add_node_commands(commands) -> None:
    """Register the ``node`` subcommand group on the repro CLI."""
    node = commands.add_parser("node", help="run or inspect a real TCP node deployment")
    actions = node.add_subparsers(dest="node_command", required=True)

    def common(subparser) -> None:
        subparser.add_argument("--dimension", type=int, required=True, help="hypercube dimension")
        subparser.add_argument("--nodes", type=int, required=True, help="number of DHT nodes")
        subparser.add_argument("--dht", default="chord", choices=["chord", "kademlia", "pastry"])
        subparser.add_argument("--bits", type=int, default=32, help="identifier-space bits")
        subparser.add_argument("--seed", type=int, default=0, help="deployment seed")

    addresses = actions.add_parser(
        "addresses", help="print the node addresses this deployment consists of"
    )
    common(addresses)

    serve = actions.add_parser("serve", help="host one node's endpoint over TCP")
    common(serve)
    serve.add_argument("--address", type=int, required=True, help="which node to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="listen port (0: OS-assigned)")
    serve.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="ADDRESS=HOST:PORT",
        help="endpoint of another node's daemon (repeatable)",
    )
    serve.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="also serve Prometheus/JSON metrics over HTTP on this port (0: OS-assigned)",
    )


def run_node_command(arguments: argparse.Namespace) -> int:
    config = _config_from(arguments)
    if arguments.node_command == "addresses":
        for address in cluster_addresses(config):
            print(address)
        return 0

    peers = dict(_parse_peer(spec) for spec in arguments.peer)
    daemon = NodeDaemon(
        config,
        arguments.address,
        host=arguments.host,
        port=arguments.port,
        peers=peers,
        stats_port=arguments.stats_port,
    )
    host, port = daemon.endpoint
    print(f"serving {arguments.address} on {host}:{port}", flush=True)
    if daemon.stats_endpoint is not None:
        stats_host, stats_port = daemon.stats_endpoint
        print(f"stats on http://{stats_host}:{stats_port}/metrics", flush=True)
    try:
        while True:
            daemon.transport.sleep(1000)  # 1 s per tick; all work happens in the IO thread
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0
