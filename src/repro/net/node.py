"""``NodeDaemon``: host one DHT node behind a TCP endpoint.

A daemon builds the *whole* deterministic stack from the shared
``(seed, config)`` spec — the static-membership deployment model: every
participant derives the same address list, placement mapping, and
routing tables from the config, so no join protocol is needed — but
serves exactly **one** address over TCP.  RPCs its node's protocol code
issues toward any other address are dialled out to that address's
daemon, found through the ``peers`` book (address -> host:port).

Deployment recipe (one shell per node)::

    python -m repro node addresses --dimension 6 --nodes 4 --seed 7
    # -> e.g. 1182657605 1399953982 2916232149 3675293713

    python -m repro node serve --dimension 6 --nodes 4 --seed 7 \\
        --address 1182657605 --port 9001 \\
        --peer 1399953982=127.0.0.1:9002 \\
        --peer 2916232149=127.0.0.1:9003 \\
        --peer 3675293713=127.0.0.1:9004

Each daemon prints ``serving <address> on <host>:<port>`` once its
socket is bound.  Any daemon can then publish and search through its
:attr:`NodeDaemon.service`; the CLI form just serves until interrupted.

For an N-node deployment inside one process (tests, benchmarks, smoke
jobs) use :class:`~repro.net.cluster.LocalCluster` instead.
"""

from __future__ import annotations

import argparse
import signal
import threading
from pathlib import Path

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.admission import AdmissionPolicy
from repro.net.aio import AsyncioTransport
from repro.obs.stats import StatsServer
from repro.store.backend import MemoryStore
from repro.store.file import FileStore

__all__ = ["NodeDaemon", "cluster_addresses", "add_node_commands", "run_node_command"]


def cluster_addresses(config: ServiceConfig) -> list[int]:
    """The DHT addresses a deployment of ``config`` consists of.

    Derived by building a throwaway simulated stack from the same seed —
    cheap, and guaranteed to agree with what every daemon derives.
    """
    return KeywordSearchService.create(config).dolr.addresses()


class NodeDaemon:
    """One node of a multi-process deployment."""

    def __init__(
        self,
        config: ServiceConfig,
        address: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        peers: dict[int, tuple[str, int]] | None = None,
        rpc_timeout: float = 10.0,
        time_scale: float = 0.001,
        stats_port: int | None = None,
        data_dir: str | Path | None = None,
        admission: AdmissionPolicy | None = None,
    ):
        """``stats_port`` (0 for OS-assigned) additionally serves this
        daemon's metrics over HTTP — Prometheus text at ``/metrics``,
        JSON at ``/metrics.json`` (see :mod:`repro.obs.stats`).

        ``admission`` bounds the served node's inflight requests:
        excess requests are answered T_BUSY straight from the IO loop
        instead of queueing behind the handler pool (see
        :mod:`repro.net.admission`).  None admits everything.

        ``data_dir`` makes the served node durable: its index shard and
        reference table live in a WAL + snapshot store under
        ``<data_dir>/node-<address>/`` (see :mod:`repro.store`), replayed
        on boot — so a ``kill -9``'d daemon restarted from the same
        directory serves its full shard again.  The *other* addresses of
        the derived deployment stay in memory (their daemons own their
        own directories).
        """
        self.config = config
        self.address = address
        self.stats: StatsServer | None = None
        self._shutdown = threading.Event()
        self.transport = AsyncioTransport(
            host=host,
            serve_addresses={address},
            ports={address: port},
            peers=peers or {},
            rpc_timeout=rpc_timeout,
            time_scale=time_scale,
            admission=admission,
        )
        store_factory = None
        if data_dir is not None:
            base = Path(data_dir)

            def store_factory(addr: int):
                if addr == address:
                    return FileStore(base / f"node-{addr}", metrics=self.transport.metrics)
                return MemoryStore()

        try:
            self.service = KeywordSearchService.create(
                config, network=self.transport, store_factory=store_factory
            )
            if address not in self.service.dolr.nodes:
                known = self.service.dolr.addresses()
                raise ValueError(
                    f"address {address} is not part of this deployment; "
                    f"valid addresses: {known}"
                )
            if stats_port is not None:
                self.stats = StatsServer(self.transport.metrics, host=host, port=stats_port)
        except BaseException:
            self.close()
            raise

    @property
    def endpoint(self) -> tuple[str, int]:
        """The (host, port) this daemon's node listens on."""
        return self.transport.endpoints[self.address]

    @property
    def stats_endpoint(self) -> tuple[str, int] | None:
        """The (host, port) of the stats endpoint, when one is up."""
        return self.stats.endpoint if self.stats is not None else None

    @property
    def store(self):
        """The served address's durable backend (None without data_dir)."""
        service = getattr(self, "service", None)
        if service is None:
            return None
        return service.stores.get(self.address)

    # -- graceful shutdown --------------------------------------------

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self, *_signal_args) -> None:
        """Ask the serve loop to exit; safe to call from a signal handler."""
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into :meth:`request_shutdown` so the
        serve loop winds down through :meth:`close` — flushing the WAL
        and closing the stats server — instead of dying mid-append.
        Main thread only (a signal-module constraint)."""
        signal.signal(signal.SIGTERM, self.request_shutdown)
        signal.signal(signal.SIGINT, self.request_shutdown)

    def __enter__(self) -> "NodeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self.stats is not None:
            self.stats.close()
            self.stats = None
        service = getattr(self, "service", None)
        if service is not None:
            service.close_stores()
        self.transport.close()


# -- CLI glue (python -m repro node ...) -----------------------------------


def _parse_peer(spec: str) -> tuple[int, tuple[str, int]]:
    """Parse ``ADDRESS=HOST:PORT``."""
    try:
        address_part, endpoint = spec.split("=", 1)
        host, port = endpoint.rsplit(":", 1)
        return int(address_part), (host, int(port))
    except ValueError:
        raise SystemExit(
            f"invalid --peer {spec!r}: expected ADDRESS=HOST:PORT"
        ) from None


def _config_from(arguments: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        dimension=arguments.dimension,
        num_dht_nodes=arguments.nodes,
        dht=arguments.dht,
        dht_bits=arguments.bits,
        seed=arguments.seed,
    )


def add_node_commands(commands) -> None:
    """Register the ``node`` subcommand group on the repro CLI."""
    node = commands.add_parser("node", help="run or inspect a real TCP node deployment")
    actions = node.add_subparsers(dest="node_command", required=True)

    def common(subparser) -> None:
        subparser.add_argument("--dimension", type=int, required=True, help="hypercube dimension")
        subparser.add_argument("--nodes", type=int, required=True, help="number of DHT nodes")
        subparser.add_argument("--dht", default="chord", choices=["chord", "kademlia", "pastry"])
        subparser.add_argument("--bits", type=int, default=32, help="identifier-space bits")
        subparser.add_argument("--seed", type=int, default=0, help="deployment seed")

    addresses = actions.add_parser(
        "addresses", help="print the node addresses this deployment consists of"
    )
    common(addresses)

    serve = actions.add_parser("serve", help="host one node's endpoint over TCP")
    common(serve)
    serve.add_argument("--address", type=int, required=True, help="which node to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="listen port (0: OS-assigned)")
    serve.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="ADDRESS=HOST:PORT",
        help="endpoint of another node's daemon (repeatable)",
    )
    serve.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="also serve Prometheus/JSON metrics over HTTP on this port (0: OS-assigned)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help="persist this node's state under DIR/node-<address>/ (WAL + snapshots), "
        "replayed on restart",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission control: bound concurrently served requests; excess requests "
        "are shed with T_BUSY (default: unbounded, no admission control)",
    )
    serve.add_argument(
        "--priority-headroom",
        type=int,
        default=0,
        help="extra admission slots reserved for priority > 0 requests "
        "(only with --max-inflight)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=0.0,
        help="backoff hint (transport time units) shipped in T_BUSY replies "
        "(only with --max-inflight)",
    )


def run_node_command(arguments: argparse.Namespace) -> int:
    config = _config_from(arguments)
    if arguments.node_command == "addresses":
        for address in cluster_addresses(config):
            print(address)
        return 0

    peers = dict(_parse_peer(spec) for spec in arguments.peer)
    admission = None
    if arguments.max_inflight is not None:
        admission = AdmissionPolicy(
            max_inflight=arguments.max_inflight,
            priority_headroom=arguments.priority_headroom,
            retry_after=arguments.retry_after,
        )
    daemon = NodeDaemon(
        config,
        arguments.address,
        host=arguments.host,
        port=arguments.port,
        peers=peers,
        stats_port=arguments.stats_port,
        data_dir=arguments.data_dir,
        admission=admission,
    )
    host, port = daemon.endpoint
    print(f"serving {arguments.address} on {host}:{port}", flush=True)
    if daemon.stats_endpoint is not None:
        stats_host, stats_port = daemon.stats_endpoint
        print(f"stats on http://{stats_host}:{stats_port}/metrics", flush=True)
    daemon.install_signal_handlers()
    try:
        while not daemon.shutdown_requested:
            daemon.transport.sleep(250)  # all work happens in the IO thread
    except KeyboardInterrupt:  # pre-handler-installation race
        pass
    finally:
        daemon.close()
    print(f"stopped {arguments.address}", flush=True)
    return 0
