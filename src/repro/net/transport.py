"""The transport contract every protocol layer is written against.

Historically the DHT / DOLR / index / search layers called
:class:`~repro.sim.network.SimulatedNetwork` directly.  This module
extracts the surface they actually use into a :class:`Transport`
protocol, so the same protocol code runs unchanged over the simulator
*or* over real sockets (:class:`~repro.net.aio.AsyncioTransport`).

The contract, in terms of the paper's model:

* **Endpoints** — :meth:`Transport.register` attaches a handler at an
  integer address (the DHT node identifier); :meth:`Transport.unregister`
  detaches it (the node leaves).
* **Request/reply** — :meth:`Transport.rpc` delivers one request and
  returns the handler's return value.  A local call (``src == dst``)
  is free, as in the paper.  Failure semantics: the transport raises a
  :class:`~repro.net.errors.PeerUnreachableError` (or subclass) when
  the destination cannot be reached or does not answer in time; those
  are the errors :class:`~repro.sim.resilience.ResilientChannel`
  retries.
* **Datagrams** — :meth:`Transport.send` is one-way, best-effort, and
  never raises for a dead destination (the message is silently lost,
  like a UDP datagram).
* **Accounting** — every message is counted in :attr:`Transport.metrics`
  (counter ``network.messages``) and in any open :meth:`Transport.trace`
  window, so the paper's cost metrics (messages per query, nodes
  contacted) work identically over both media.
* **Clock** — :meth:`Transport.now` / :meth:`Transport.sleep` expose the
  medium's notion of time: the virtual scheduler clock for the
  simulator, the monotonic wall clock for real sockets.  Retry backoff
  and circuit-breaker reset windows are expressed against this
  interface, which is what makes the resilience layer
  transport-independent.

Liveness (:meth:`Transport.is_alive`) is necessarily *advisory*: the
simulator has global knowledge, while a real transport can only vouch
for local endpoints and assumes configured remote peers are up until a
call fails.  Protocol code treats it as a hint, never a guarantee.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import AbstractContextManager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:
    # Import lazily: repro.sim.network imports this module, and pulling
    # in the repro.sim package eagerly here would be circular.
    from repro.sim.metrics import MetricsRegistry

__all__ = ["Handler", "Message", "MessageTrace", "Transport"]


@dataclass(frozen=True)
class Message:
    """One network message."""

    src: int
    dst: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    is_reply: bool = False


Handler = Callable[[Message], Any]


@dataclass
class MessageTrace:
    """Messages captured by a :meth:`Transport.trace` window."""

    messages: list[Message] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def request_count(self) -> int:
        return sum(1 for m in self.messages if not m.is_reply)

    def nodes_contacted(self, *, exclude: frozenset[int] | set[int] = frozenset()) -> set[int]:
        """Distinct destinations of non-reply messages, minus ``exclude``.

        This is the paper's "number of nodes need to be contacted".
        """
        return {m.dst for m in self.messages if not m.is_reply} - set(exclude)

    def count_kind(self, kind: str) -> int:
        return sum(1 for m in self.messages if m.kind == kind)


@runtime_checkable
class Transport(Protocol):
    """What a medium must provide for the protocol stack to run on it.

    Implementations: :class:`~repro.sim.network.SimulatedNetwork`
    (deterministic, virtual time) and
    :class:`~repro.net.aio.AsyncioTransport` (TCP, wall-clock time).
    Failure injection (``fail`` / ``recover``) is an optional extension
    both implementations offer but the core contract does not require.
    """

    metrics: MetricsRegistry

    # -- membership ---------------------------------------------------

    def register(self, address: int, handler: Handler) -> None:
        """Attach ``handler`` at ``address``.  Re-registration replaces."""
        ...

    def unregister(self, address: int) -> None:
        """Detach the endpoint at ``address`` (node leaves the network)."""
        ...

    def is_alive(self, address: int) -> bool:
        """Advisory liveness: whether a call to ``address`` is expected
        to succeed.  Never a guarantee on a real network."""
        ...

    def addresses(self) -> frozenset[int]:
        """All known addresses (local endpoints plus configured peers)."""
        ...

    # -- communication ------------------------------------------------

    def rpc(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Synchronous request/reply; returns the handler's return value.

        ``timeout`` bounds the wait for the reply, in the transport's
        time units (see :meth:`now`); ``None`` means the transport's
        default.  Raises :class:`~repro.net.errors.PeerUnreachableError`
        (or a subclass, e.g. :class:`~repro.net.errors.RpcTimeoutError`)
        when the destination cannot be reached or does not reply.
        """
        ...

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        deliver: bool = True,
    ) -> None:
        """One-way, best-effort datagram; silently lost if the
        destination is dead.  ``deliver=False`` accounts the message
        without transmitting it (receipt is a no-op by protocol)."""
        ...

    # -- tracing ------------------------------------------------------

    def trace(self) -> AbstractContextManager[MessageTrace]:
        """Capture every message sent inside the ``with`` block."""
        ...

    # -- clock --------------------------------------------------------

    def now(self) -> float:
        """The medium's current time, in its own units (virtual units
        for the simulator, scaled wall-clock for real transports)."""
        ...

    def sleep(self, delay: float) -> None:
        """Let ``delay`` time units pass — advancing the virtual clock,
        or actually sleeping.  Used for retry backoff."""
        ...
