"""The transport contract every protocol layer is written against.

Historically the DHT / DOLR / index / search layers called
:class:`~repro.sim.network.SimulatedNetwork` directly.  This module
extracts the surface they actually use into a :class:`Transport`
protocol, so the same protocol code runs unchanged over the simulator
*or* over real sockets (:class:`~repro.net.aio.AsyncioTransport`).

The contract, in terms of the paper's model:

* **Endpoints** — :meth:`Transport.register` attaches a handler at an
  integer address (the DHT node identifier); :meth:`Transport.unregister`
  detaches it (the node leaves).
* **Request/reply** — :meth:`Transport.rpc` delivers one request and
  returns the handler's return value.  A local call (``src == dst``)
  is free, as in the paper.  Failure semantics: the transport raises a
  :class:`~repro.net.errors.PeerUnreachableError` (or subclass) when
  the destination cannot be reached or does not answer in time; those
  are the errors :class:`~repro.sim.resilience.ResilientChannel`
  retries.
* **Batch request/reply** — :meth:`Transport.rpc_many` issues a list of
  :class:`RpcCall` requests *concurrently* and returns one
  :class:`RpcOutcome` per call, in call order, each carrying either the
  handler's return value or the exception the call would have raised.
  No exception of one call disturbs another: a batch always yields
  exactly ``len(calls)`` outcomes.  Accounting is identical to issuing
  the calls one by one (one request + one reply message per successful
  call, request-only for unreachable destinations); only the elapsed
  time differs — virtual time advances by the *slowest* call's round
  trip on the simulator, and real transports overlap the socket waits.
* **Datagrams** — :meth:`Transport.send` is one-way, best-effort, and
  never raises for a dead destination (the message is silently lost,
  like a UDP datagram).
* **Accounting** — every message is counted in :attr:`Transport.metrics`
  (counter ``network.messages``) and in any open :meth:`Transport.trace`
  window, so the paper's cost metrics (messages per query, nodes
  contacted) work identically over both media.
* **Clock** — :meth:`Transport.now` / :meth:`Transport.sleep` expose the
  medium's notion of time: the virtual scheduler clock for the
  simulator, the monotonic wall clock for real sockets.  Retry backoff
  and circuit-breaker reset windows are expressed against this
  interface, which is what makes the resilience layer
  transport-independent.

Liveness (:meth:`Transport.is_alive`) is necessarily *advisory*: the
simulator has global knowledge, while a real transport can only vouch
for local endpoints and assumes configured remote peers are up until a
call fails.  Protocol code treats it as a hint, never a guarantee.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import AbstractContextManager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:
    # Import lazily: repro.sim.network imports this module, and pulling
    # in the repro.sim package eagerly here would be circular.
    from repro.sim.metrics import MetricsRegistry

__all__ = [
    "Handler",
    "Message",
    "MessageTrace",
    "RpcCall",
    "RpcOutcome",
    "Transport",
    "sequential_rpc_many",
]


@dataclass(frozen=True)
class Message:
    """One network message."""

    src: int
    dst: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    is_reply: bool = False


Handler = Callable[[Message], Any]


@dataclass(frozen=True)
class RpcCall:
    """One request of a :meth:`Transport.rpc_many` batch.

    ``timeout`` bounds this call's reply wait in transport time units
    (``None``: the transport's default), mirroring the ``timeout``
    keyword of :meth:`Transport.rpc`.
    """

    src: int
    dst: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    timeout: float | None = None


@dataclass(frozen=True)
class RpcOutcome:
    """Result of one call in a batch: a value or the error it raised.

    Exactly one of ``value`` / ``error`` is meaningful; :attr:`ok`
    discriminates.  :meth:`unwrap` recovers the sequential-``rpc``
    behaviour (return the value or raise the error).
    """

    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value

    @classmethod
    def success(cls, value: Any) -> "RpcOutcome":
        return cls(value=value)

    @classmethod
    def failure(cls, error: BaseException) -> "RpcOutcome":
        return cls(error=error)


def sequential_rpc_many(
    transport: "Transport", calls: "list[RpcCall] | tuple[RpcCall, ...]"
) -> list[RpcOutcome]:
    """Reference ``rpc_many`` semantics: the calls issued one at a time.

    This is the behavioural contract batch implementations must match
    call-for-call (same results, same errors, same message accounting) —
    and the fallback used for transports that predate the batch API.
    """
    outcomes: list[RpcOutcome] = []
    for call in calls:
        try:
            outcomes.append(
                RpcOutcome.success(
                    transport.rpc(call.src, call.dst, call.kind, call.payload, timeout=call.timeout)
                )
            )
        except Exception as error:  # noqa: BLE001 - ferried to the caller per call
            outcomes.append(RpcOutcome.failure(error))
    return outcomes


@dataclass
class MessageTrace:
    """Messages captured by a :meth:`Transport.trace` window."""

    messages: list[Message] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def request_count(self) -> int:
        return sum(1 for m in self.messages if not m.is_reply)

    def nodes_contacted(self, *, exclude: frozenset[int] | set[int] = frozenset()) -> set[int]:
        """Distinct destinations of non-reply messages, minus ``exclude``.

        This is the paper's "number of nodes need to be contacted".
        """
        return {m.dst for m in self.messages if not m.is_reply} - set(exclude)

    def count_kind(self, kind: str) -> int:
        return sum(1 for m in self.messages if m.kind == kind)


@runtime_checkable
class Transport(Protocol):
    """What a medium must provide for the protocol stack to run on it.

    Implementations: :class:`~repro.sim.network.SimulatedNetwork`
    (deterministic, virtual time) and
    :class:`~repro.net.aio.AsyncioTransport` (TCP, wall-clock time).
    Failure injection (``fail`` / ``recover``) is an optional extension
    both implementations offer but the core contract does not require.
    """

    metrics: MetricsRegistry

    # -- membership ---------------------------------------------------

    def register(self, address: int, handler: Handler) -> None:
        """Attach ``handler`` at ``address``.  Re-registration replaces."""
        ...

    def unregister(self, address: int) -> None:
        """Detach the endpoint at ``address`` (node leaves the network)."""
        ...

    def is_alive(self, address: int) -> bool:
        """Advisory liveness: whether a call to ``address`` is expected
        to succeed.  Never a guarantee on a real network."""
        ...

    def addresses(self) -> frozenset[int]:
        """All known addresses (local endpoints plus configured peers)."""
        ...

    # -- communication ------------------------------------------------

    def rpc(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Synchronous request/reply; returns the handler's return value.

        ``timeout`` bounds the wait for the reply, in the transport's
        time units (see :meth:`now`); ``None`` means the transport's
        default.  Raises :class:`~repro.net.errors.PeerUnreachableError`
        (or a subclass, e.g. :class:`~repro.net.errors.RpcTimeoutError`)
        when the destination cannot be reached or does not reply.
        """
        ...

    def rpc_many(self, calls: list[RpcCall] | tuple[RpcCall, ...]) -> list[RpcOutcome]:
        """Issue every call concurrently; return one outcome per call,
        in call order.

        Per-call results and errors match :meth:`rpc` exactly (same
        return values, same exception types, same per-call message
        accounting); a failed call never disturbs its batch mates.  The
        win is purely elapsed time: the batch completes in one
        slowest-call round trip instead of the sum of round trips.
        """
        ...

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        deliver: bool = True,
    ) -> None:
        """One-way, best-effort datagram; silently lost if the
        destination is dead.  ``deliver=False`` accounts the message
        without transmitting it (receipt is a no-op by protocol)."""
        ...

    # -- tracing ------------------------------------------------------

    def trace(self) -> AbstractContextManager[MessageTrace]:
        """Capture every message sent inside the ``with`` block."""
        ...

    # -- clock --------------------------------------------------------

    def now(self) -> float:
        """The medium's current time, in its own units (virtual units
        for the simulator, scaled wall-clock for real transports)."""
        ...

    def sleep(self, delay: float) -> None:
        """Let ``delay`` time units pass — advancing the virtual clock,
        or actually sleeping.  Used for retry backoff."""
        ...
