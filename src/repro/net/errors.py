"""Transport-level error taxonomy, shared by every transport.

The protocol layers — and in particular the resilience machinery
(:mod:`repro.sim.resilience`) — must treat "the destination could not
be reached" uniformly whether the medium is the in-process simulator or
a real TCP connection.  This module is the common root:

* :class:`TransportError` — base class of everything a transport may
  raise.
* :class:`PeerUnreachableError` — the destination could not be reached
  (connection refused, reset, or a fail-stop peer).  **This is the
  retryable class**: :class:`~repro.sim.resilience.RetryPolicy` retries
  exactly these.
* :class:`RpcTimeoutError` — a request was sent but no reply arrived in
  time.  A timeout is indistinguishable from an unreachable peer, so it
  subclasses :class:`PeerUnreachableError` and is retried the same way.
* :class:`NodeBusyError` — the peer is alive but *shed* the request
  before dispatching it (its admission queue was full and it answered
  T_BUSY).  Retryable — the overload is transient by definition — so it
  subclasses :class:`PeerUnreachableError`, but the resilience layer
  counts it separately from failures and does not feed it to circuit
  breakers: a busy node is healthy, just saturated.
* :class:`ProtocolError` — a malformed, truncated, oversized or
  wrong-version frame.  Not retryable: the bytes are wrong, not the
  peer.
* :class:`RemoteHandlerError` — the peer was reached and its handler
  raised.  Not retryable either: the failure is deterministic
  application logic, and retrying would duplicate side effects.

The simulator's historical exception types
(:class:`~repro.sim.network.NetworkError`,
:class:`~repro.sim.network.NodeUnreachableError`) are rebased onto this
hierarchy, so ``except PeerUnreachableError`` catches failures from
both media and existing ``except NodeUnreachableError`` sites keep
working unchanged on the simulator.
"""

from __future__ import annotations

__all__ = [
    "NodeBusyError",
    "PeerUnreachableError",
    "ProtocolError",
    "RemoteHandlerError",
    "RpcTimeoutError",
    "TransportError",
]


class TransportError(RuntimeError):
    """Base class for failures raised by any transport implementation."""


class PeerUnreachableError(TransportError):
    """The destination could not be reached.

    Carries the destination ``address`` so retry/breaker bookkeeping can
    key on it.  Transport implementations should raise this (or a
    subclass) for connection refusals, resets, and fail-stop peers.
    """

    def __init__(self, address: int, reason: str = "unreachable"):
        super().__init__(f"node {address} is {reason}")
        self.address = address


class RpcTimeoutError(PeerUnreachableError):
    """A request was sent but no reply arrived within the timeout.

    From the caller's perspective a timeout and an unreachable peer are
    the same event (the reply is absent either way), so this subclasses
    :class:`PeerUnreachableError` and retry policies treat it
    identically.
    """

    def __init__(self, address: int, timeout: float):
        PeerUnreachableError.__init__(
            self, address, f"silent: no reply within {timeout:g}s"
        )
        self.timeout = timeout


class NodeBusyError(PeerUnreachableError):
    """The destination shed the request: its admission queue was full.

    Carries the ``queue_depth`` the shedding node reported and its
    ``retry_after`` hint (transport time units; 0 when the node offered
    none).  Distinct from a timeout in that the peer demonstrably
    received and *refused* the request — the reply arrived, it just
    said no — so callers know nothing was executed and a retry cannot
    duplicate side effects.
    """

    def __init__(self, address: int, queue_depth: int = 0, retry_after: float = 0.0):
        PeerUnreachableError.__init__(
            self, address, f"busy: shed the request at queue depth {queue_depth}"
        )
        self.queue_depth = queue_depth
        self.retry_after = retry_after


class ProtocolError(TransportError):
    """The byte stream violated the wire format (bad length, bad
    version, malformed payload).  The connection carrying it is
    poisoned and must be closed; the error is not retryable."""


class RemoteHandlerError(TransportError):
    """The destination's handler raised while serving a request.

    The remote exception type and message travel back in the error
    frame; they are carried here verbatim.  Deliberately *not* a
    :class:`PeerUnreachableError`: the peer is healthy, the application
    logic failed, and a retry would re-execute the side effects.
    """

    def __init__(self, address: int, kind: str, error_type: str, message: str):
        super().__init__(
            f"handler for {kind!r} at node {address} raised {error_type}: {message}"
        )
        self.address = address
        self.kind = kind
        self.error_type = error_type
        self.remote_message = message
