"""Real networking for the reproduction: transports, wire format, daemons.

The protocol layers (DHT routing, DOLR, hypercube index, superset
search) are written against the :class:`~repro.net.transport.Transport`
interface.  Two implementations exist:

* :class:`~repro.sim.network.SimulatedNetwork` — the deterministic
  in-process medium every experiment runs on, and
* :class:`~repro.net.aio.AsyncioTransport` — per-node asyncio TCP
  servers plus a pooled, request/response-correlated client, speaking
  the length-prefixed frame format of :mod:`repro.net.wire`.

:class:`~repro.net.cluster.LocalCluster` spins N node daemons on
loopback ports inside one process and wires a
:class:`~repro.core.service.KeywordSearchService` over them, so the
paper's protocol runs over actual sockets without forking any protocol
code.  :class:`~repro.net.node.NodeDaemon` hosts a single node for
multi-process deployments (``python -m repro node serve``).

The heavy members (``AsyncioTransport``, ``LocalCluster``,
``NodeDaemon``) are imported lazily: :mod:`repro.sim.network` imports
the light contract modules from here, and eagerly pulling in the stack
on top of it would be circular.
"""

from repro.net.codec import (
    BINARY_CODEC,
    CODEC_BINARY,
    CODEC_JSON,
    JSON_CODEC,
    Codec,
    PostingList,
    codec_by_id,
    codec_by_name,
)
from repro.net.errors import (
    PeerUnreachableError,
    ProtocolError,
    RemoteHandlerError,
    RpcTimeoutError,
    TransportError,
)
from repro.net.transport import Handler, Message, MessageTrace, Transport
from repro.net.wire import (
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BINARY,
    Frame,
    FrameDecoder,
    FrameType,
    decode_frame,
    encode_frame,
)

__all__ = [
    "AsyncioTransport",
    "BINARY_CODEC",
    "CODEC_BINARY",
    "CODEC_JSON",
    "Codec",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "Handler",
    "JSON_CODEC",
    "LocalCluster",
    "Message",
    "MessageTrace",
    "NodeDaemon",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_BINARY",
    "PeerUnreachableError",
    "PostingList",
    "ProtocolError",
    "RemoteHandlerError",
    "RpcTimeoutError",
    "Transport",
    "TransportError",
    "cluster_addresses",
    "codec_by_id",
    "codec_by_name",
    "decode_frame",
    "encode_frame",
]

_LAZY = {
    "AsyncioTransport": ("repro.net.aio", "AsyncioTransport"),
    "LocalCluster": ("repro.net.cluster", "LocalCluster"),
    "NodeDaemon": ("repro.net.node", "NodeDaemon"),
    "cluster_addresses": ("repro.net.node", "cluster_addresses"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
