"""``LocalCluster``: N real node daemons on loopback, one process.

The cheapest way to run the paper's whole stack over actual TCP: one
:class:`~repro.net.aio.AsyncioTransport` hosts a listening socket for
*every* DHT node address (N servers on N OS-assigned loopback ports),
and a :class:`~repro.core.service.KeywordSearchService` is built on top
of it.  Protocol code is byte-for-byte the code the simulator runs —
only the medium changed — so every inter-node RPC (routing steps, index
scans, cache probes) now crosses a real socket through the wire codec
of :mod:`repro.net.wire`.

Because the stack is deterministic given ``(config.seed, config)``, a
cluster and a simulator built from the same config place the same
objects on the same nodes and return identical result sets — the
equality the integration tests assert.

>>> from repro.core.config import ServiceConfig
>>> from repro.net.cluster import LocalCluster
>>> with LocalCluster(ServiceConfig(dimension=6, num_dht_nodes=8)) as cluster:
...     _ = cluster.service.publish("paper.pdf", {"dht", "search"})
...     cluster.service.superset_search({"dht"}).results()
('paper.pdf',)
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.membership import MembershipAgent, MembershipApplication, MembershipPolicy
from repro.net.admission import AdmissionPolicy
from repro.net.aio import AsyncioTransport
from repro.obs.stats import StatsServer
from repro.store.file import FileStore

__all__ = ["LocalCluster"]


class LocalCluster:
    """A full keyword-search deployment over loopback TCP sockets."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        host: str = "127.0.0.1",
        rpc_timeout: float = 10.0,
        time_scale: float = 0.001,
        stats_port: int | None = None,
        data_dir: str | Path | None = None,
        admission: AdmissionPolicy | None = None,
        membership: bool | MembershipPolicy = False,
    ):
        """``stats_port`` (0 for OS-assigned) additionally serves the
        cluster's metrics over HTTP (see :mod:`repro.obs.stats`).

        ``data_dir`` makes every node durable: each gets a WAL +
        snapshot store under ``<data_dir>/node-<address>/`` (see
        :mod:`repro.store`), replayed on construction — so a cluster
        rebuilt over the same directory comes back with every shard and
        reference table intact, no re-publish needed.

        ``admission`` bounds each node's inflight requests: excess
        requests are shed with T_BUSY instead of queueing (see
        :mod:`repro.net.admission`).  None (the default) admits
        everything, as before the knob existed.

        ``membership`` (False, True, or a
        :class:`~repro.membership.MembershipPolicy`) runs a
        :class:`~repro.membership.MembershipAgent` for the cluster and
        unlocks :meth:`join_node` / :meth:`leave_node` /
        :meth:`crash_node`.  Off by default — the static cluster stays
        byte-identical."""
        self.config = config
        self.stats: StatsServer | None = None
        self.membership: MembershipAgent | None = None
        self.transport = AsyncioTransport(
            host=host, rpc_timeout=rpc_timeout, time_scale=time_scale,
            admission=admission, codec=config.codec,
        )
        store_factory = None
        if data_dir is not None:
            base = Path(data_dir)

            def store_factory(address: int) -> FileStore:
                return FileStore(
                    base / f"node-{address}",
                    metrics=self.transport.metrics,
                    codec=config.codec,
                )

        try:
            self.service = KeywordSearchService.create(
                config, network=self.transport, store_factory=store_factory
            )
            if stats_port is not None:
                self.stats = StatsServer(self.transport.metrics, host=host, port=stats_port)
            if membership:
                policy = membership if isinstance(membership, MembershipPolicy) else None
                agent = MembershipAgent(
                    self.service, self.transport, policy=policy, seed=config.seed
                )
                self.service.dolr.install_everywhere(
                    lambda node: MembershipApplication(agent)
                )
                self.membership = agent.start()
        except BaseException:
            self.close()
            raise

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every server, drop every connection, join the IO thread
        (flushing and closing every durable store first)."""
        if self.membership is not None:
            self.membership.stop()
            self.membership = None
        if self.stats is not None:
            self.stats.close()
            self.stats = None
        service = getattr(self, "service", None)
        if service is not None:
            service.close_stores()
        self.transport.close()

    # -- dynamic membership -------------------------------------------

    def _agent(self) -> MembershipAgent:
        if self.membership is None:
            raise RuntimeError("cluster was built without membership=True")
        return self.membership

    def join_node(self, address: int) -> int:
        """Bring a brand-new node into the running cluster: bind its
        server, admit it to the ring, and hand over the index tables it
        now owns.  Returns the object references moved to it.  (The new
        node's shard is memory-backed even on a durable cluster — the
        store factories were applied at build time; a rebuild over the
        same ``data_dir`` re-provisions everything.)"""
        return self._agent().join(address)

    def leave_node(self, address: int) -> int:
        """Gracefully retire a node: evacuate its tables to their
        as-if-gone owners, then drop it from the ring and stop its
        server.  Returns the object references evacuated."""
        return self._agent().leave(address)

    def crash_node(self, address: int) -> None:
        """Fail-stop a node *without* telling the membership layer: its
        server stops dead, and the failure detector must notice (gossip
        misses / open breakers), declare it dead, and re-replicate.  Use
        :meth:`declare_crashed` to skip the suspicion window."""
        agent = self._agent()
        with agent._lock:
            self.transport.unregister(address)
            agent.served.discard(address)

    def declare_crashed(self, address: int) -> int:
        """Crash a node and immediately declare it dead (the operator
        knew).  Returns the object references restored from replicas."""
        self.crash_node(address)
        return self._agent().crashed(address)

    def await_membership(self, predicate, *, timeout: float = 10.0) -> bool:
        """Poll until ``predicate(book)`` holds (wall-clock ``timeout``
        seconds).  Convenience for tests and smokes."""
        import time as _time

        deadline = _time.monotonic() + timeout
        agent = self._agent()
        while _time.monotonic() < deadline:
            with agent._lock:
                if predicate(agent.book):
                    return True
            _time.sleep(0.02)
        with agent._lock:
            return bool(predicate(agent.book))

    # -- introspection ------------------------------------------------

    def client(self):
        """This cluster behind the unified :class:`~repro.client.Client`
        API (borrowing: closing the client does not close the cluster).
        For a client with its *own* socket pool — e.g. one per load
        generator process — use ``connect(cluster.config,
        peers=cluster.endpoints)`` instead."""
        from repro.client import ServiceClient

        return ServiceClient(self.service)

    def addresses(self) -> list[int]:
        """The DHT node addresses hosted by this cluster, ascending."""
        return self.service.dolr.addresses()

    @property
    def endpoints(self) -> dict[int, tuple[str, int]]:
        """Address -> (host, port) for every node's listening socket."""
        return dict(self.transport.endpoints)

    @property
    def stats_endpoint(self) -> tuple[str, int] | None:
        """The (host, port) of the stats endpoint, when one is up."""
        return self.stats.endpoint if self.stats is not None else None

    def messages_sent(self) -> int:
        return self.service.messages_sent()
