"""``LocalCluster``: N real node daemons on loopback, one process.

The cheapest way to run the paper's whole stack over actual TCP: one
:class:`~repro.net.aio.AsyncioTransport` hosts a listening socket for
*every* DHT node address (N servers on N OS-assigned loopback ports),
and a :class:`~repro.core.service.KeywordSearchService` is built on top
of it.  Protocol code is byte-for-byte the code the simulator runs —
only the medium changed — so every inter-node RPC (routing steps, index
scans, cache probes) now crosses a real socket through the wire codec
of :mod:`repro.net.wire`.

Because the stack is deterministic given ``(config.seed, config)``, a
cluster and a simulator built from the same config place the same
objects on the same nodes and return identical result sets — the
equality the integration tests assert.

>>> from repro.core.config import ServiceConfig
>>> from repro.net.cluster import LocalCluster
>>> with LocalCluster(ServiceConfig(dimension=6, num_dht_nodes=8)) as cluster:
...     _ = cluster.service.publish("paper.pdf", {"dht", "search"})
...     cluster.service.superset_search({"dht"}).results()
('paper.pdf',)
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.admission import AdmissionPolicy
from repro.net.aio import AsyncioTransport
from repro.obs.stats import StatsServer
from repro.store.file import FileStore

__all__ = ["LocalCluster"]


class LocalCluster:
    """A full keyword-search deployment over loopback TCP sockets."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        host: str = "127.0.0.1",
        rpc_timeout: float = 10.0,
        time_scale: float = 0.001,
        stats_port: int | None = None,
        data_dir: str | Path | None = None,
        admission: AdmissionPolicy | None = None,
    ):
        """``stats_port`` (0 for OS-assigned) additionally serves the
        cluster's metrics over HTTP (see :mod:`repro.obs.stats`).

        ``data_dir`` makes every node durable: each gets a WAL +
        snapshot store under ``<data_dir>/node-<address>/`` (see
        :mod:`repro.store`), replayed on construction — so a cluster
        rebuilt over the same directory comes back with every shard and
        reference table intact, no re-publish needed.

        ``admission`` bounds each node's inflight requests: excess
        requests are shed with T_BUSY instead of queueing (see
        :mod:`repro.net.admission`).  None (the default) admits
        everything, as before the knob existed."""
        self.config = config
        self.stats: StatsServer | None = None
        self.transport = AsyncioTransport(
            host=host, rpc_timeout=rpc_timeout, time_scale=time_scale, admission=admission
        )
        store_factory = None
        if data_dir is not None:
            base = Path(data_dir)

            def store_factory(address: int) -> FileStore:
                return FileStore(base / f"node-{address}", metrics=self.transport.metrics)

        try:
            self.service = KeywordSearchService.create(
                config, network=self.transport, store_factory=store_factory
            )
            if stats_port is not None:
                self.stats = StatsServer(self.transport.metrics, host=host, port=stats_port)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every server, drop every connection, join the IO thread
        (flushing and closing every durable store first)."""
        if self.stats is not None:
            self.stats.close()
            self.stats = None
        service = getattr(self, "service", None)
        if service is not None:
            service.close_stores()
        self.transport.close()

    # -- introspection ------------------------------------------------

    def client(self):
        """This cluster behind the unified :class:`~repro.client.Client`
        API (borrowing: closing the client does not close the cluster).
        For a client with its *own* socket pool — e.g. one per load
        generator process — use ``connect(cluster.config,
        peers=cluster.endpoints)`` instead."""
        from repro.client import ServiceClient

        return ServiceClient(self.service)

    def addresses(self) -> list[int]:
        """The DHT node addresses hosted by this cluster, ascending."""
        return self.service.dolr.addresses()

    @property
    def endpoints(self) -> dict[int, tuple[str, int]]:
        """Address -> (host, port) for every node's listening socket."""
        return dict(self.transport.endpoints)

    @property
    def stats_endpoint(self) -> tuple[str, int] | None:
        """The (host, port) of the stats endpoint, when one is up."""
        return self.stats.endpoint if self.stats is not None else None

    def messages_sent(self) -> int:
        return self.service.messages_sent()
