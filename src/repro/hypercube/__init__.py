"""r-dimensional hypercube machinery (Section 3.1 of the paper).

:class:`~repro.hypercube.hypercube.Hypercube` is the vector space
``H_r``; :class:`~repro.hypercube.subcube.SubHypercube` is the induced
subhypercube ``H_r(u)`` of all nodes containing ``u``; and
:class:`~repro.hypercube.sbt.SpanningBinomialTree` realizes
Definition 3.2's spanning binomial trees, both over the full cube and
induced over a subcube — the structure the superset search walks.
"""

from repro.hypercube.hypercube import Hypercube
from repro.hypercube.sbt import SpanningBinomialTree
from repro.hypercube.subcube import SubHypercube

__all__ = ["Hypercube", "SpanningBinomialTree", "SubHypercube"]
