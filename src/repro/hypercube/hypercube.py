"""The r-dimensional hypercube H_r (Section 3.1).

Nodes are r-bit integers; two nodes share an edge iff they differ in
exactly one bit.  All operations are O(r) or better and allocation-free
where possible — experiments iterate over cubes with up to 2**16 nodes.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.util import bitops

__all__ = ["Hypercube"]

_MAX_DIMENSION = 24


class Hypercube:
    """The hypercube ``H_r`` as a value object.

    >>> cube = Hypercube(4)
    >>> cube.num_nodes
    16
    >>> cube.neighbors(0b0100)
    (5, 6, 0, 12)
    >>> cube.contains_node(0b0110, 0b0100)
    True
    """

    def __init__(self, dimension: int):
        if not 0 <= dimension <= _MAX_DIMENSION:
            raise ValueError(
                f"dimension must be in [0, {_MAX_DIMENSION}] "
                f"(2**r nodes are materialized by experiments), got {dimension}"
            )
        self.dimension = dimension
        self.mask = bitops.mask_of(dimension)

    # -- basics ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return 1 << self.dimension

    @property
    def num_edges(self) -> int:
        """r * 2**(r-1) edges."""
        if self.dimension == 0:
            return 0
        return self.dimension << (self.dimension - 1)

    def check_node(self, node: int) -> int:
        if not 0 <= node <= self.mask:
            raise ValueError(f"node {node} outside H_{self.dimension}")
        return node

    def nodes(self) -> range:
        """All node identifiers."""
        return range(self.num_nodes)

    def neighbor(self, node: int, dimension: int) -> int:
        """The neighbour of ``node`` across ``dimension``."""
        self.check_node(node)
        if not 0 <= dimension < self.dimension:
            raise ValueError(f"dimension must be in [0, {self.dimension}), got {dimension}")
        return node ^ (1 << dimension)

    def neighbors(self, node: int) -> tuple[int, ...]:
        """All r neighbours of ``node``, by ascending dimension."""
        self.check_node(node)
        return tuple(node ^ (1 << d) for d in range(self.dimension))

    def edges(self) -> Iterator[tuple[int, int]]:
        """All undirected edges as (low, high) pairs."""
        for node in self.nodes():
            for dimension in range(self.dimension):
                other = node ^ (1 << dimension)
                if node < other:
                    yield (node, other)

    # -- paper vocabulary --------------------------------------------------

    def one(self, node: int) -> tuple[int, ...]:
        """``One(node)`` — positions of one bits (Section 3.1)."""
        self.check_node(node)
        return bitops.one_positions(node, self.dimension)

    def zero(self, node: int) -> tuple[int, ...]:
        """``Zero(node)`` — positions of zero bits."""
        self.check_node(node)
        return bitops.zero_positions(node, self.dimension)

    def contains_node(self, container: int, contained: int) -> bool:
        """True iff ``container`` contains ``contained``:
        ``One(contained) ⊆ One(container)``."""
        self.check_node(container)
        self.check_node(contained)
        return bitops.contains(container, contained)

    def hamming(self, u: int, v: int) -> int:
        self.check_node(u)
        self.check_node(v)
        return bitops.hamming_distance(u, v)

    def weight(self, node: int) -> int:
        """|One(node)| — the node's Hamming weight."""
        self.check_node(node)
        return bitops.popcount(node)

    # -- subcube geometry ----------------------------------------------------

    def subcube_dimension(self, inducer: int) -> int:
        """Dimension of the subhypercube induced by ``inducer``:
        |Zero(inducer)|."""
        self.check_node(inducer)
        return self.dimension - bitops.popcount(inducer)

    def subcube_size(self, inducer: int) -> int:
        """Number of nodes in H_r(inducer): 2**|Zero(inducer)|."""
        return 1 << self.subcube_dimension(inducer)

    def nodes_of_weight(self, weight: int) -> Iterator[int]:
        """All nodes with exactly ``weight`` one bits, ascending.

        Gosper's hack enumerates same-weight bit patterns in order
        without scanning all 2**r nodes.
        """
        if not 0 <= weight <= self.dimension:
            raise ValueError(
                f"weight must be in [0, {self.dimension}], got {weight}"
            )
        if weight == 0:
            yield 0
            return
        value = (1 << weight) - 1
        while value <= self.mask:
            yield value
            lowest = value & -value
            ripple = value + lowest
            value = ripple | (((value ^ ripple) >> 2) // lowest)

    def format_node(self, node: int) -> str:
        """Render a node as its r-bit binary string."""
        return bitops.bit_string(self.check_node(node), self.dimension)
