"""Induced subhypercubes H_r(u) (Definition 3.1).

``H_r(u)`` contains every node ``w`` that contains ``u`` (every one bit
of ``u`` is set in ``w``), and is isomorphic to a |Zero(u)|-dimensional
hypercube obtained by masking out the fixed one bits.  The superset
search space for a keyword set K is exactly ``H_r(F_h(K))``
(Lemma 3.1), and Lemma 3.3's refinement property —
``K1 ⊆ K2  ⇒  H_r(F_h(K2)) ⊆ H_r(F_h(K1))`` — falls out of
:meth:`SubHypercube.is_subcube_of`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.hypercube.hypercube import Hypercube
from repro.util import bitops

__all__ = ["SubHypercube"]


class SubHypercube:
    """The subhypercube of ``cube`` induced by ``inducer``.

    >>> sub = SubHypercube(Hypercube(4), 0b0100)
    >>> sub.size
    8
    >>> sorted(sub.nodes()) == [n for n in range(16) if n & 0b0100 == 0b0100]
    True
    """

    def __init__(self, cube: Hypercube, inducer: int):
        cube.check_node(inducer)
        self.cube = cube
        self.inducer = inducer
        self.free_mask = cube.mask & ~inducer
        self.free_dimensions = bitops.one_positions(self.free_mask, cube.dimension)

    # -- geometry ---------------------------------------------------------

    @property
    def dimension(self) -> int:
        """|Zero(inducer)| — the dimension of the isomorphic cube."""
        return len(self.free_dimensions)

    @property
    def size(self) -> int:
        return 1 << self.dimension

    def __contains__(self, node: int) -> bool:
        return 0 <= node <= self.cube.mask and bitops.contains(node, self.inducer)

    def nodes(self) -> Iterator[int]:
        """All member nodes, by enumerating subsets of the free mask.

        Uses the standard submask-enumeration trick so each node costs
        O(1); order is descending in the free bits then the inducer last.
        """
        submask = self.free_mask
        while True:
            yield self.inducer | submask
            if submask == 0:
                return
            submask = (submask - 1) & self.free_mask

    def nodes_at_depth(self, depth: int) -> Iterator[int]:
        """Members whose Hamming distance from the inducer is ``depth``
        (i.e. ``depth`` extra one bits among the free dimensions)."""
        if not 0 <= depth <= self.dimension:
            raise ValueError(f"depth must be in [0, {self.dimension}], got {depth}")
        free = self.free_dimensions
        if depth == 0:
            yield self.inducer
            return
        # Enumerate combinations of free dimensions via Gosper over the
        # compact (masked) index space, then expand.
        compact = (1 << depth) - 1
        limit = 1 << self.dimension
        while compact < limit:
            expanded = 0
            remaining = compact
            while remaining:
                low = remaining & -remaining
                expanded |= 1 << free[low.bit_length() - 1]
                remaining ^= low
            yield self.inducer | expanded
            lowest = compact & -compact
            ripple = compact + lowest
            compact = ripple | (((compact ^ ripple) >> 2) // lowest)

    def depth_of(self, node: int) -> int:
        """Hamming distance of a member from the inducer."""
        if node not in self:
            raise ValueError(
                f"node {node} not in subcube induced by {self.inducer}"
            )
        return bitops.popcount(node ^ self.inducer)

    def is_subcube_of(self, other: "SubHypercube") -> bool:
        """Lemma 3.3: this subcube is contained in ``other`` iff our
        inducer contains theirs."""
        if self.cube.dimension != other.cube.dimension:
            return False
        return bitops.contains(self.inducer, other.inducer)

    # -- compact isomorphism (masking the fixed bits) ----------------------

    def compact(self, node: int) -> int:
        """Map a member to the isomorphic |Zero(u)|-bit cube by dropping
        the fixed one bits."""
        if node not in self:
            raise ValueError(f"node {node} not in subcube")
        compact = 0
        for index, dimension in enumerate(self.free_dimensions):
            if (node >> dimension) & 1:
                compact |= 1 << index
        return compact

    def expand(self, compact: int) -> int:
        """Inverse of :meth:`compact`."""
        if not 0 <= compact < self.size:
            raise ValueError(f"compact id {compact} outside {self.dimension}-bit cube")
        node = self.inducer
        for index, dimension in enumerate(self.free_dimensions):
            if (compact >> index) & 1:
                node |= 1 << dimension
        return node
