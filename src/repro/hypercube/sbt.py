"""Spanning binomial trees (Definition 3.2).

For a root ``u`` in ``H_r``, the spanning binomial tree ``SBT(u)``
connects all 2**r nodes: for a non-root node ``v``, let ``p`` be the
*lowest* dimension at which ``v`` and ``u`` differ; the parent of ``v``
flips bit ``p`` back toward ``u`` and the children of ``v`` flip the
dimensions strictly below ``p`` (every dimension, for the root).  A node
at depth ``d`` has Hamming distance exactly ``d`` from the root — the
property the superset search exploits to return objects ordered by the
number of extra keywords (Lemma 3.2).

The same construction, restricted to the free (zero) dimensions of the
root, yields the *induced* tree ``SBT_{H_r}(u)`` spanning the
subhypercube ``H_r(u)``; this is the tree the T_QUERY protocol walks.
Both variants are served by one class, parameterized by the set of free
dimensions.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.hypercube.hypercube import Hypercube
from repro.hypercube.subcube import SubHypercube
from repro.util import bitops

__all__ = ["SpanningBinomialTree"]


class SpanningBinomialTree:
    """A spanning binomial tree rooted at ``root``.

    ``free_mask`` selects the dimensions the tree spans: the full cube
    mask for ``SBT(u)``, or ``~u`` for the induced ``SBT_{H_r}(u)``.
    Use the :meth:`of_cube` / :meth:`induced` constructors.

    >>> cube = Hypercube(4)
    >>> tree = SpanningBinomialTree.induced(cube, 0b0100)
    >>> tree.children(0b0100)
    (12, 6, 5)
    >>> tree.parent(0b1100)
    4
    >>> tree.depth(0b1101)
    2
    """

    def __init__(self, cube: Hypercube, root: int, free_mask: int):
        cube.check_node(root)
        cube.check_node(free_mask)
        self.cube = cube
        self.root = root
        self.free_mask = free_mask
        self.free_dimensions = bitops.one_positions(free_mask, cube.dimension)

    @classmethod
    def of_cube(cls, cube: Hypercube, root: int) -> "SpanningBinomialTree":
        """``SBT(root)`` spanning the whole of ``H_r``."""
        return cls(cube, root, cube.mask)

    @classmethod
    def induced(cls, cube: Hypercube, root: int) -> "SpanningBinomialTree":
        """``SBT_{H_r}(root)`` spanning the subhypercube induced by
        ``root`` (free dimensions = Zero(root))."""
        return cls(cube, root, cube.mask & ~root)

    # -- membership -------------------------------------------------------

    @property
    def size(self) -> int:
        return 1 << len(self.free_dimensions)

    @property
    def height(self) -> int:
        """Maximum depth — the number of spanned dimensions."""
        return len(self.free_dimensions)

    def __contains__(self, node: int) -> bool:
        if not 0 <= node <= self.cube.mask:
            return False
        return (node ^ self.root) & ~self.free_mask == 0

    def _check_member(self, node: int) -> int:
        if node not in self:
            raise ValueError(f"node {node} not spanned by this tree")
        return node

    # -- structure ----------------------------------------------------------

    def depth(self, node: int) -> int:
        """Depth = Hamming distance from the root (Lemma 3.2)."""
        self._check_member(node)
        return bitops.popcount(node ^ self.root)

    def branch_dimension(self, node: int) -> int:
        """The paper's ``p``: the lowest dimension at which ``node``
        differs from the root, or -1 for the root itself."""
        self._check_member(node)
        return bitops.lowest_set_bit(node ^ self.root)

    def parent(self, node: int) -> int | None:
        """The parent per Definition 3.2 (None for the root)."""
        p = self.branch_dimension(node)
        if p == -1:
            return None
        return node ^ (1 << p)

    def children(self, node: int) -> tuple[int, ...]:
        """Children per Definition 3.2: flip each free dimension strictly
        below the branch dimension (all free dimensions, at the root).
        Ordered by descending dimension, matching the definition's
        ``Z_v = {p-1, ..., 1, 0}``."""
        p = self.branch_dimension(node)
        ceiling = self.cube.dimension if p == -1 else p
        return tuple(
            node ^ (1 << d)
            for d in reversed(self.free_dimensions)
            if d < ceiling
        )

    def child_dimensions(self, node: int) -> tuple[int, ...]:
        """The dimensions the children of ``node`` flip, descending."""
        p = self.branch_dimension(node)
        ceiling = self.cube.dimension if p == -1 else p
        return tuple(d for d in reversed(self.free_dimensions) if d < ceiling)

    # -- traversal ------------------------------------------------------------

    def bfs(self) -> Iterator[tuple[int, int]]:
        """Breadth-first (top-down) traversal: yields (node, depth) with
        depths non-decreasing — exactly the order a FIFO frontier (the
        protocol's queue U) visits the tree."""
        from collections import deque

        frontier: deque[int] = deque([self.root])
        while frontier:
            node = frontier.popleft()
            yield node, self.depth(node)
            frontier.extend(self.children(node))

    def bfs_bottom_up(self) -> Iterator[tuple[int, int]]:
        """Level order starting from the deepest level — the variant
        Section 3.3 sketches for preferring more specific objects."""
        for depth in range(self.height, -1, -1):
            for node in self.level(depth):
                yield node, depth

    def dfs(self) -> Iterator[tuple[int, int]]:
        """Depth-first preorder, children in definition order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node, self.depth(node)
            stack.extend(reversed(self.children(node)))

    def level(self, depth: int) -> Iterator[int]:
        """All nodes at a given depth, in BFS-consistent order."""
        if not 0 <= depth <= self.height:
            raise ValueError(f"depth must be in [0, {self.height}], got {depth}")
        sub = SubHypercube(self.cube, self.root & ~self.free_mask)
        if self.free_mask == sub.free_mask and self.root & self.free_mask == 0:
            yield from sub.nodes_at_depth(depth)
            return
        # General case (full-cube tree rooted anywhere): XOR the root
        # with every weight-`depth` pattern over the free dimensions.
        for positions in _combinations(self.free_dimensions, depth):
            delta = 0
            for dimension in positions:
                delta |= 1 << dimension
            yield self.root ^ delta

    def path_to_root(self, node: int) -> list[int]:
        """The node's ancestor chain, starting at ``node`` and ending at
        the root."""
        self._check_member(node)
        path = [node]
        current = node
        while True:
            parent = self.parent(current)
            if parent is None:
                return path
            path.append(parent)
            current = parent


def _combinations(pool: tuple[int, ...], count: int) -> Iterator[tuple[int, ...]]:
    import itertools

    yield from itertools.combinations(pool, count)
