"""Estimating |O_K| by sampling the subhypercube.

A user interface often wants "about N results" *before* paying for a
full superset search.  Because the index spreads a keyword set's
objects uniformly over the subhypercube induced by ``F_h(K)`` (the
load-balance property of Figures 6/7), the matching count can be
estimated by scanning a uniform sample of subcube nodes and scaling:

    |O_K|  ≈  (subcube size / sample size) × matches in sample

The estimator is unbiased (each node's matching count is sampled
without replacement from the finite population) and its error shrinks
as the sample grows; :func:`estimate_matching_count` also returns a
standard-error-based confidence interval so callers can decide whether
to sample more.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords
from repro.hypercube.subcube import SubHypercube
from repro.util.rng import make_rng

__all__ = ["CountEstimate", "estimate_matching_count"]


@dataclass(frozen=True)
class CountEstimate:
    """A sampled cardinality estimate for one query."""

    query: frozenset[str]
    estimate: float
    stderr: float
    sampled_nodes: int
    subcube_size: int
    exact: bool

    @property
    def low(self) -> float:
        """Lower edge of a ~95% confidence interval (never below 0)."""
        return max(0.0, self.estimate - 1.96 * self.stderr)

    @property
    def high(self) -> float:
        """Upper edge of a ~95% confidence interval."""
        return self.estimate + 1.96 * self.stderr


def estimate_matching_count(
    index: HypercubeIndex,
    keywords: Iterable[str],
    *,
    sample_nodes: int = 32,
    seed: int | random.Random | None = 0,
    origin: int | None = None,
) -> CountEstimate:
    """Estimate |O_K| from a uniform node sample of the subhypercube.

    Contacts at most ``sample_nodes`` nodes; when the subcube is that
    small or smaller, the count is exact (the full subcube is scanned).
    Message cost: one request/reply per sampled node.
    """
    if sample_nodes < 1:
        raise ValueError(f"sample_nodes must be >= 1, got {sample_nodes}")
    query = normalize_keywords(keywords)
    dolr = index.dolr
    origin = dolr.any_address() if origin is None else origin
    root = index.mapper.node_for(query)
    sub = SubHypercube(index.cube, root)
    rng = make_rng(seed)

    if sub.size <= sample_nodes:
        sampled = list(sub.nodes())
        exact = True
    else:
        compacts = rng.sample(range(sub.size), sample_nodes)
        sampled = [sub.expand(compact) for compact in compacts]
        exact = False

    counts = []
    for logical in sampled:
        physical = index.mapping.physical_owner(logical)
        reply = dolr.rpc_at(
            origin,
            physical,
            "hindex.scan",
            {
                "namespace": index.namespace,
                "logical": logical,
                "keywords": query,
                "limit": None,
            },
        )
        counts.append(sum(len(ids) for _, ids in reply["matches"]))

    n = len(counts)
    mean = sum(counts) / n
    estimate = mean * sub.size
    if exact or n < 2:
        stderr = 0.0
    else:
        variance = sum((c - mean) ** 2 for c in counts) / (n - 1)
        # Finite-population correction: sampling without replacement.
        fpc = (sub.size - n) / (sub.size - 1)
        stderr = sub.size * math.sqrt(variance / n * fpc)
    return CountEstimate(
        query=query,
        estimate=estimate,
        stderr=stderr,
        sampled_nodes=n,
        subcube_size=sub.size,
        exact=exact,
    )
