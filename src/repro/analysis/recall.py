"""Recall-vs-cost curves from search traces (Figure 8's axes).

Figure 8 plots, for queries of m keywords on an r-cube, the percentage
of hypercube nodes that must be contacted to reach a given recall rate.
A :class:`~repro.core.search.SearchResult` records the visit order and
how many objects each visit returned, which is exactly the data needed.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.search import SearchResult

__all__ = ["recall_curve", "average_recall_curve"]

DEFAULT_RECALL_POINTS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def recall_curve(
    result: SearchResult,
    total_matching: int,
    total_nodes: int,
    recall_points: Sequence[float] = DEFAULT_RECALL_POINTS,
) -> list[tuple[float, float]]:
    """(recall rate, fraction of nodes contacted) for one search.

    ``total_matching`` is the ground-truth |O_K| (the search itself must
    have run uncapped so its trace reaches 100% recall);
    ``total_nodes`` is 2**r.
    """
    if total_nodes < 1:
        raise ValueError(f"total_nodes must be >= 1, got {total_nodes}")
    if total_matching < 0:
        raise ValueError(f"total_matching must be >= 0, got {total_matching}")
    if len(result.objects) < total_matching:
        raise ValueError(
            f"trace returned {len(result.objects)} objects but |O_K| = "
            f"{total_matching}; run the search without a threshold"
        )
    curve = []
    for fraction in recall_points:
        contacted = result.nodes_contacted_for_recall(fraction, total_matching)
        curve.append((fraction, contacted / total_nodes))
    return curve


def average_recall_curve(
    curves: Sequence[Sequence[tuple[float, float]]]
) -> list[tuple[float, float]]:
    """Pointwise mean of per-query recall curves (Figure 8 averages over
    the sampled popular keyword sets)."""
    if not curves:
        raise ValueError("need at least one curve")
    points = len(curves[0])
    if any(len(curve) != points for curve in curves):
        raise ValueError("curves must share their recall points")
    averaged = []
    for index in range(points):
        recall = curves[0][index][0]
        if any(curve[index][0] != recall for curve in curves):
            raise ValueError("curves must share their recall points")
        mean_cost = sum(curve[index][1] for curve in curves) / len(curves)
        averaged.append((recall, mean_cost))
    return averaged
