"""Analytical models and measurement helpers.

* :mod:`repro.analysis.balls` — the paper's Equations (1) and (2): the
  balls-in-bins distribution of ``|One(F_h(K))|``.
* :mod:`repro.analysis.dimension` — choosing the hypercube dimension r
  from a keyword-set-size distribution (Section 4's "how r can be
  determined without experiment").
* :mod:`repro.analysis.load` — ranked load curves, Gini coefficients
  and the other balance metrics Figure 6 is read through.
* :mod:`repro.analysis.recall` — recall-vs-nodes-contacted curves from
  search traces (Figure 8's axes).
* :mod:`repro.analysis.estimate` — |O_K| estimation by subcube sampling.
* :mod:`repro.analysis.latency` — critical-path latency of search
  traces (Section 3.5's time bounds under heterogeneous links).
* :mod:`repro.analysis.ascii` — terminal line charts of experiment rows.
"""

from repro.analysis.balls import (
    expected_one_count,
    monte_carlo_one_count,
    one_count_distribution,
    one_count_probability,
)
from repro.analysis.dimension import (
    node_weight_distribution,
    object_weight_distribution,
    recommend_dimension,
)
from repro.analysis.load import (
    coefficient_of_variation,
    gini_coefficient,
    max_to_mean_ratio,
    ranked_load_curve,
)
from repro.analysis.ascii import ascii_chart, chart_experiment
from repro.analysis.estimate import CountEstimate, estimate_matching_count
from repro.analysis.latency import critical_path_latency, sequential_latency, speedup
from repro.analysis.recall import recall_curve

__all__ = [
    "CountEstimate",
    "ascii_chart",
    "chart_experiment",
    "coefficient_of_variation",
    "critical_path_latency",
    "estimate_matching_count",
    "expected_one_count",
    "gini_coefficient",
    "max_to_mean_ratio",
    "monte_carlo_one_count",
    "node_weight_distribution",
    "object_weight_distribution",
    "one_count_distribution",
    "one_count_probability",
    "ranked_load_curve",
    "recall_curve",
    "recommend_dimension",
    "sequential_latency",
    "speedup",
]
