"""Critical-path latency of a search trace (Section 3.5's time claims).

The simulator executes protocol steps serially, so the virtual clock
measures *message count × delay*, not the concurrency a real network
exploits.  This module reconstructs wall-clock estimates from a search
trace and a latency model:

* sequential (the paper's queue protocol): the root waits for each
  node's reply before querying the next — total time is the sum of
  round trips;
* level-parallel (Section 3.5's speed-up): all nodes of a tree level
  are queried concurrently — each level costs its *slowest* round trip,
  and the total is the sum over levels, realizing the
  ``r − |One(F_h(K))|`` time bound with heterogeneous links.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.search import NodeVisit, SearchResult
from repro.sim.latency import LatencyModel

__all__ = ["critical_path_latency", "sequential_latency", "speedup"]


def _round_trip(model: LatencyModel, a: int, b: int) -> float:
    if a == b:
        return 0.0
    return model.delay(a, b) + model.delay(b, a)


def sequential_latency(
    result: SearchResult, model: LatencyModel, *, root: int | None = None
) -> float:
    """Total time of the one-at-a-time walk: sum of per-visit round
    trips from the root's physical node."""
    root = result.root_physical if root is None else root
    return sum(_round_trip(model, root, visit.physical) for visit in result.visits)


def critical_path_latency(
    result: SearchResult, model: LatencyModel, *, root: int | None = None
) -> float:
    """Total time of the level-parallel walk: per tree level, the
    slowest round trip; summed over levels."""
    root = result.root_physical if root is None else root
    by_depth: dict[int, list[NodeVisit]] = {}
    for visit in result.visits:
        by_depth.setdefault(visit.depth, []).append(visit)
    total = 0.0
    for depth in sorted(by_depth):
        total += max(
            _round_trip(model, root, visit.physical) for visit in by_depth[depth]
        )
    return total


def speedup(result: SearchResult, model: LatencyModel) -> float:
    """Sequential over parallel latency for one trace (>= 1 for any
    exhaustive walk; 0/0 → 1 for empty traces)."""
    parallel = critical_path_latency(result, model)
    if parallel == 0.0:
        return 1.0
    return sequential_latency(result, model) / parallel


def mean_speedup(results: Sequence[SearchResult], model: LatencyModel) -> float:
    """Mean speedup over several traces."""
    if not results:
        raise ValueError("need at least one trace")
    return sum(speedup(result, model) for result in results) / len(results)
