"""ASCII line charts for experiment results.

The paper's artifacts are mostly *figures*; the benchmark harness
regenerates their data as tables, and this module renders those tables
as terminal line charts so a run's output is visually comparable to the
paper without any plotting dependency.

>>> print(ascii_chart({"a": [(0, 0.0), (1, 1.0)]}, width=10, height=4))  # doctest: +SKIP
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["ascii_chart", "chart_experiment"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as one ASCII chart.

    Each series gets a marker from a fixed cycle; a legend follows the
    axes.  Points are mapped onto a ``width`` x ``height`` grid with
    linear scaling; later series overwrite earlier ones on collisions.
    """
    if width < 8 or height < 4:
        raise ValueError(f"chart needs width >= 8 and height >= 4, got {width}x{height}")
    points = [
        (float(x), float(y))
        for line in series.values()
        for x, y in line
    ]
    if not points:
        raise ValueError("no points to draw")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][column] = marker

    legend = []
    for index, (label, line) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {label}")
        for x, y in line:
            place(float(x), float(y), marker)

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{y_high:>10.4g} |"
        elif row_index == height - 1:
            prefix = f"{y_low:>10.4g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    footer = f"{x_low:<.4g}".ljust(width // 2) + f"{x_high:>.4g}".rjust(width // 2)
    lines.append(" " * 12 + footer)
    if x_label or y_label:
        lines.append(" " * 12 + f"x: {x_label}   y: {y_label}".rstrip())
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def chart_experiment(
    result,
    *,
    group_by: str | None,
    x: str,
    y: str,
    width: int = 64,
    height: int = 16,
) -> str:
    """Chart an :class:`~repro.experiments.harness.ExperimentResult`.

    Pivots rows into series by ``group_by`` (None = one series named
    after the experiment) and renders them; rows with missing values in
    any used column are skipped.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for row in result.rows:
        group = result.experiment if group_by is None else row.get(group_by)
        x_value, y_value = row.get(x), row.get(y)
        if group is None or x_value is None or y_value is None:
            continue
        series.setdefault(str(group), []).append((x_value, y_value))
    if not series:
        raise ValueError(
            f"no rows with columns {group_by!r}, {x!r}, {y!r} in {result.experiment}"
        )
    return ascii_chart(series, width=width, height=height, x_label=x, y_label=y)
