"""Equations (1) and (2): the distribution of |One(F_h(K))|.

Hashing m distinct keywords uniformly into r dimensions sets
``|One(F_h(K))| = j`` exactly when m distinct balls thrown into r
distinct buckets leave exactly j buckets non-empty.  Equation (1):

    P(|One| = j) = C(r, j) * sum_{i=0}^{j} (-1)^i C(j, i) ((j - i) / r)^m

(the paper writes the summand as ``(1 - (i + r - j)/r)^m``, which is the
same quantity), and Equation (2) is the corresponding expectation.

Computed with exact rational arithmetic — the alternating sum is
catastrophically cancellative in floating point for large r, m.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

from repro.util.rng import make_rng

__all__ = [
    "expected_one_count",
    "monte_carlo_one_count",
    "one_count_distribution",
    "one_count_probability",
]


def _validate(r: int, m: int) -> None:
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")


def one_count_probability(r: int, m: int, j: int) -> float:
    """Equation (1): P(|One(F_h(K))| = j) for |K| = m over r dimensions.

    >>> one_count_probability(4, 1, 1)
    1.0
    >>> abs(one_count_probability(2, 2, 1) - 0.5) < 1e-12
    True
    """
    _validate(r, m)
    if j < 0 or j > r:
        raise ValueError(f"j must be in [0, {r}], got {j}")
    if m == 0:
        return 1.0 if j == 0 else 0.0
    if j == 0 or j > m:
        return 0.0
    total = Fraction(0)
    for i in range(j + 1):
        term = Fraction(j - i, r) ** m * math.comb(j, i)
        total += term if i % 2 == 0 else -term
    return float(total * math.comb(r, j))


def one_count_distribution(r: int, m: int) -> list[float]:
    """The full pmf over j = 0..r (sums to 1)."""
    _validate(r, m)
    return [one_count_probability(r, m, j) for j in range(r + 1)]


def expected_one_count(r: int, m: int) -> float:
    """Equation (2): E[|One(F_h(K))|].

    Evaluated through the standard closed form
    ``r * (1 - (1 - 1/r)^m)`` — the expected number of occupied buckets —
    which equals Equation (2)'s sum but is numerically robust.  Tests
    verify the identity against the exact Equation (1) pmf.
    """
    _validate(r, m)
    return r * (1.0 - (1.0 - 1.0 / r) ** m)


def expected_one_count_by_pmf(r: int, m: int) -> float:
    """Equation (2) evaluated literally as ``sum j * P(|One| = j)``."""
    return math.fsum(j * p for j, p in enumerate(one_count_distribution(r, m)))


def monte_carlo_one_count(
    r: int, m: int, *, trials: int = 10_000, seed: int | random.Random | None = 0
) -> list[float]:
    """Empirical pmf of |One| from ``trials`` random keyword hashes —
    the simulation check for Equation (1)."""
    _validate(r, m)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = make_rng(seed)
    counts = [0] * (r + 1)
    for _ in range(trials):
        occupied: set[int] = set()
        for _ in range(m):
            occupied.add(rng.randrange(r))
        counts[len(occupied)] += 1
    return [count / trials for count in counts]
