"""Choosing the hypercube dimension r (Section 4, Figure 7).

The paper observes that index load balances when the *object*
distribution over node weights ``|One(u)|`` approaches the *node*
distribution (binomial, centred at r/2), and that given the
keyword-set-size distribution, Equation (1) predicts the object
distribution — "we can calculate an appropriate r ... thereby to
balance the index load".  :func:`recommend_dimension` automates that:
sweep r, compute both distributions analytically, return the r whose
distributions are closest in total-variation distance.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.analysis.balls import one_count_distribution

__all__ = [
    "distribution_distance",
    "node_weight_distribution",
    "object_weight_distribution",
    "recommend_dimension",
]


def node_weight_distribution(r: int) -> list[float]:
    """P(|One(u)| = x) for a uniformly random node u of H_r — the
    binomial(r, 1/2) line of Figure 7."""
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    scale = 2.0**r
    return [math.comb(r, x) / scale for x in range(r + 1)]


def object_weight_distribution(
    r: int, size_distribution: Mapping[int, float]
) -> list[float]:
    """P(object lands on a node of weight x) for keyword-set sizes drawn
    from ``size_distribution`` (size -> probability) — Figure 7's other
    line, via Equation (1):

        P(x) = sum_m P(m) * P(|One| = x  |  m keywords, r dims)
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    total = math.fsum(size_distribution.values())
    if total <= 0:
        raise ValueError("size distribution must have positive mass")
    result = [0.0] * (r + 1)
    for size, mass in size_distribution.items():
        if size < 0:
            raise ValueError(f"keyword-set size must be >= 0, got {size}")
        pmf = one_count_distribution(r, size)
        for weight, probability in enumerate(pmf):
            result[weight] += (mass / total) * probability
    return result


def distribution_distance(p: list[float], q: list[float]) -> float:
    """Total-variation distance between two pmfs on the same support."""
    if len(p) != len(q):
        raise ValueError(f"supports differ: {len(p)} vs {len(q)}")
    return 0.5 * math.fsum(abs(a - b) for a, b in zip(p, q))


def recommend_dimension(
    size_distribution: Mapping[int, float],
    *,
    min_dimension: int = 4,
    max_dimension: int = 20,
) -> tuple[int, dict[int, float]]:
    """The r in [min, max] whose object distribution best matches the
    node distribution.  Returns (best r, {r: distance}).

    For the paper's corpus (mean 7.3 keywords) this lands near r = 10,
    matching Figure 6/7's empirical optimum.
    """
    if not 1 <= min_dimension <= max_dimension:
        raise ValueError(
            f"need 1 <= min <= max, got [{min_dimension}, {max_dimension}]"
        )
    distances: dict[int, float] = {}
    for r in range(min_dimension, max_dimension + 1):
        distances[r] = distribution_distance(
            object_weight_distribution(r, size_distribution),
            node_weight_distribution(r),
        )
    best = min(distances, key=lambda r: (distances[r], r))
    return best, distances
