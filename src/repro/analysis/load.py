"""Load-balance metrics for Figure 6.

Figure 6 ranks node loads from heavy to light and plots the cumulative
percentage of objects against the percentage of nodes; a perfectly
balanced scheme is the diagonal.  :func:`ranked_load_curve` produces
exactly that curve; the scalar summaries (Gini, CV, max/mean) make the
comparisons in tests and EXPERIMENTS.md quantitative.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "coefficient_of_variation",
    "gini_coefficient",
    "load_values",
    "max_to_mean_ratio",
    "ranked_load_curve",
]


def load_values(loads: Mapping[int, int] | Iterable[int]) -> list[int]:
    """Normalize a load mapping or iterable into a list of counts."""
    if isinstance(loads, Mapping):
        return list(loads.values())
    return list(loads)


def ranked_load_curve(
    loads: Mapping[int, int] | Iterable[int], points: Sequence[float] = ()
) -> list[tuple[float, float]]:
    """Figure 6's curve: (fraction of nodes, fraction of objects) with
    nodes ranked heaviest first.

    When ``points`` is given, the curve is sampled at those node
    fractions (by linear interpolation on the rank axis); otherwise one
    point per node is returned.

    >>> ranked_load_curve([3, 1, 0, 0])
    [(0.25, 0.75), (0.5, 1.0), (0.75, 1.0), (1.0, 1.0)]
    """
    values = sorted(load_values(loads), reverse=True)
    if not values:
        raise ValueError("loads must not be empty")
    total = sum(values)
    count = len(values)
    cumulative: list[float] = []
    running = 0
    for value in values:
        running += value
        cumulative.append(running / total if total else 0.0)
    if not points:
        return [((rank + 1) / count, share) for rank, share in enumerate(cumulative)]
    sampled: list[tuple[float, float]] = []
    for fraction in points:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"node fraction must be in [0, 1], got {fraction}")
        position = fraction * count
        index = min(count - 1, max(0, math.ceil(position) - 1))
        sampled.append((fraction, cumulative[index] if fraction > 0 else 0.0))
    return sampled


def gini_coefficient(loads: Mapping[int, int] | Iterable[int]) -> float:
    """Gini of the load distribution: 0 = perfectly balanced.

    >>> gini_coefficient([1, 1, 1, 1])
    0.0
    """
    values = sorted(load_values(loads))
    count = len(values)
    if count == 0:
        raise ValueError("loads must not be empty")
    total = sum(values)
    if total == 0:
        return 0.0
    weighted = sum((index + 1) * value for index, value in enumerate(values))
    return (2.0 * weighted) / (count * total) - (count + 1.0) / count


def coefficient_of_variation(loads: Mapping[int, int] | Iterable[int]) -> float:
    """Standard deviation over mean of the loads."""
    values = load_values(loads)
    if not values:
        raise ValueError("loads must not be empty")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return math.sqrt(variance) / mean


def max_to_mean_ratio(loads: Mapping[int, int] | Iterable[int]) -> float:
    """Peak load relative to the mean — the hot-spot indicator."""
    values = load_values(loads)
    if not values:
        raise ValueError("loads must not be empty")
    mean = sum(values) / len(values)
    return max(values) / mean if mean else 0.0
