"""One client API over every deployment shape.

The repository grew three ways to issue a search — an in-process
:class:`~repro.core.service.KeywordSearchService` (simulator or TCP), a
:class:`~repro.net.cluster.LocalCluster`, and a fleet of
:class:`~repro.net.node.NodeDaemon` processes addressed by a peers book
— each with its own spelling.  Load generators, experiments, and smoke
scripts had to know which one they were driving.  :class:`Client` is
the one spelling: ``search`` / ``insert`` / ``delete``, identical over
any medium, obtained from whatever you have::

    client = service.client()                  # any KeywordSearchService
    client = cluster.client()                  # a LocalCluster
    client = connect(config, peers=endpoints)  # a daemon fleet, by address book

    client.insert("paper.pdf", {"dht", "search"})
    client.search({"dht"}).results()
    client.search({"dht"}, SearchOptions(deadline=2000.0, priority=1))

:class:`~repro.core.config.SearchOptions` carries all per-query knobs,
including the PR-6 ``deadline`` and ``priority`` QoS fields, so a
driver written against :class:`Client` exercises admission control and
deadline budgets over TCP and runs unchanged on the simulator.

The old entry-point spellings remain valid on their own objects;
:class:`Client` additionally carries thin ``publish`` /
``superset_search`` adapters (deprecation-warned) so code written
against the service's method names accepts a client without edits.

``connect(config, peers=...)`` builds a :class:`DaemonFleetClient`: a
serve-nothing :class:`~repro.net.aio.AsyncioTransport` whose every RPC
— including self-addressed ones — dials out to the daemon that owns the
address.  That is also how the multi-process load generator
(:mod:`repro.load`) gives each worker process its own socket pool
against one shared cluster.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.config import SearchOptions, ServiceConfig
from repro.core.search import SearchResult
from repro.core.service import KeywordSearchService, PublishedObject
from repro.membership import PeerBook, apply_book
from repro.net.aio import AsyncioTransport
from repro.net.errors import PeerUnreachableError

if TYPE_CHECKING:
    from repro.net.cluster import LocalCluster

__all__ = ["Client", "DaemonFleetClient", "InvalidQueryError", "ServiceClient", "connect"]


class InvalidQueryError(ValueError):
    """A query rejected at the client boundary before any message is
    sent: an empty keyword set, a non-string keyword, an empty prefix,
    or a prefix query that is not exactly one string.  Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` call sites
    keep working."""


def _validated_query(keywords, options: SearchOptions | None):
    """Normalize a query up front, re-framing malformed input as
    :class:`InvalidQueryError` instead of a bare ``ValueError`` from
    deep inside :mod:`repro.core.keywords`.  Normalization is
    idempotent, so passing the canonical form through changes no
    behaviour."""
    from repro.core.keywords import normalize_keywords, normalize_prefix

    try:
        if options is not None and options.prefix:
            if isinstance(keywords, str):
                return normalize_prefix(keywords)
            items = list(keywords)
            if len(items) != 1 or not isinstance(items[0], str):
                raise ValueError(
                    f"a prefix query takes exactly one prefix string, got {items!r}"
                )
            return normalize_prefix(items[0])
        return normalize_keywords(keywords)
    except (TypeError, ValueError) as error:
        raise InvalidQueryError(str(error)) from None


@runtime_checkable
class Client(Protocol):
    """What every deployment shape looks like to a driver.

    ``search`` runs a superset search; ``insert`` publishes one object
    replica; ``delete`` withdraws it; ``close`` releases whatever the
    client owns (sockets for a fleet client, nothing for a borrowed
    service).  Implementations are context managers.
    """

    def search(
        self, keywords: Iterable[str], options: SearchOptions | None = None
    ) -> SearchResult: ...

    def insert(
        self, object_id: str, keywords: Iterable[str], *, holder: int | None = None
    ) -> PublishedObject: ...

    def delete(self, object_id: str, *, holder: int) -> None: ...

    def close(self) -> None: ...


class _ServiceBackedClient:
    """Shared implementation: every shape bottoms out in a service."""

    service: KeywordSearchService

    def search(
        self, keywords: Iterable[str], options: SearchOptions | None = None
    ) -> SearchResult:
        """min(t, |O_K|) objects describable by ``keywords`` — or, with
        ``options.prefix``, the objects carrying any keyword extending
        the given prefix.  Malformed queries raise
        :class:`InvalidQueryError` before any message is sent."""
        return self.service.search(_validated_query(keywords, options), options)

    def insert(
        self, object_id: str, keywords: Iterable[str], *, holder: int | None = None
    ) -> PublishedObject:
        """Publish one replica of ``object_id`` under ``keywords``.
        Malformed keyword sets raise :class:`InvalidQueryError`."""
        return self.service.publish(
            object_id, _validated_query(keywords, None), holder=holder
        )

    def delete(self, object_id: str, *, holder: int) -> None:
        """Withdraw the replica ``holder`` published."""
        self.service.unpublish(object_id, holder=holder)

    def close(self) -> None:  # overridden where the client owns resources
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- deprecated service-shaped adapters ---------------------------

    def publish(
        self, object_id: str, keywords: Iterable[str], *, holder: int | None = None
    ) -> PublishedObject:
        """Deprecated alias of :meth:`insert` (the service's spelling)."""
        warnings.warn(
            "Client.publish() is deprecated; use Client.insert()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.insert(object_id, keywords, holder=holder)

    def superset_search(
        self, keywords: Iterable[str], options: SearchOptions | None = None
    ) -> SearchResult:
        """Deprecated alias of :meth:`search` (the service's spelling)."""
        warnings.warn(
            "Client.superset_search() is deprecated; use Client.search()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.search(keywords, options)


class ServiceClient(_ServiceBackedClient):
    """A :class:`Client` borrowing an existing service (any medium).

    The service is *not* owned: :meth:`close` is a no-op, and the
    service (or the cluster housing it) outlives the client.  Built by
    :meth:`KeywordSearchService.client` and :meth:`LocalCluster.client`.
    """

    def __init__(self, service: KeywordSearchService):
        self.service = service


class DaemonFleetClient(_ServiceBackedClient):
    """A :class:`Client` dialing a fleet of node daemons over TCP.

    Builds the deterministic stack from the shared ``(seed, config)``
    spec — the same derivation every daemon performs — on a transport
    that serves *nothing*: all addresses live in ``peers``, so every
    RPC, self-addressed ones included, crosses the wire to the daemon
    that owns the address.  The client owns its transport;
    :meth:`close` drops the socket pool.

    Under dynamic membership (see :mod:`repro.membership`) the client's
    derived view can go stale: a target daemon may have left, died, or
    been replaced by a joiner.  When an operation fails with
    :class:`~repro.net.errors.PeerUnreachableError`, the client fetches
    the current peer book from any reachable daemon (``memb.book``),
    folds it into its view — rewiring its ring and endpoint table — and
    retries the operation once against the refreshed placement.
    Deployments without membership are unaffected: the refresh finds no
    ``memb.*`` handler and the original error propagates.
    """

    def __init__(
        self,
        config: ServiceConfig,
        peers: dict[int, tuple[str, int]],
        *,
        rpc_timeout: float = 10.0,
        time_scale: float = 0.001,
    ):
        self.transport = AsyncioTransport(
            serve_addresses=frozenset(),
            peers=dict(peers),
            rpc_timeout=rpc_timeout,
            time_scale=time_scale,
        )
        try:
            self.service = KeywordSearchService.create(config, network=self.transport)
        except BaseException:
            self.transport.close()
            raise

    def close(self) -> None:
        self.transport.close()

    # -- membership-aware retry ---------------------------------------

    def refresh_membership(self) -> bool:
        """Fetch the current peer book from any reachable daemon and
        fold it into this client's view.  True when a book was fetched
        (False: no daemon answered, or none runs membership)."""
        # Bounded wait per candidate (2s wall) so one dead daemon at the
        # front of the book does not stall the whole refresh.
        probe_timeout = 2.0 / self.transport.time_scale
        for address in sorted(self.transport.peers):
            try:
                reply = self.transport.rpc(
                    address, address, "memb.book", {}, timeout=probe_timeout
                )
            except Exception:  # noqa: BLE001 - daemon down or membership off; next
                continue
            book = PeerBook.from_payload(reply["book"])
            apply_book(self.service, self.transport, book, served=set())
            self.transport.metrics.increment("client.membership_refreshes")
            return True
        return False

    def _retrying(self, operation):
        """Run ``operation``; on an unreachable peer, refresh the view
        from the live deployment and retry once."""
        try:
            return operation()
        except PeerUnreachableError:
            if not self.refresh_membership():
                raise
            self.transport.metrics.increment("client.membership_retries")
            return operation()

    def search(
        self, keywords: Iterable[str], options: SearchOptions | None = None
    ) -> SearchResult:
        """min(t, |O_K|) objects describable by ``keywords`` (with the
        stale-placement retry described on the class)."""
        return self._retrying(lambda: super(DaemonFleetClient, self).search(keywords, options))

    def insert(
        self, object_id: str, keywords: Iterable[str], *, holder: int | None = None
    ) -> PublishedObject:
        """Publish one replica of ``object_id`` (with the
        stale-placement retry described on the class)."""
        return self._retrying(
            lambda: super(DaemonFleetClient, self).insert(object_id, keywords, holder=holder)
        )

    def delete(self, object_id: str, *, holder: int) -> None:
        """Withdraw the replica ``holder`` published (with the
        stale-placement retry described on the class)."""
        return self._retrying(
            lambda: super(DaemonFleetClient, self).delete(object_id, holder=holder)
        )


def connect(
    target: KeywordSearchService | "LocalCluster" | ServiceConfig,
    *,
    peers: dict[int, tuple[str, int]] | None = None,
    rpc_timeout: float = 10.0,
    time_scale: float = 0.001,
) -> Client:
    """The one factory: a :class:`Client` for whatever you have.

    * a :class:`~repro.core.service.KeywordSearchService` (simulated or
      TCP-backed) -> a borrowing :class:`ServiceClient`;
    * a :class:`~repro.net.cluster.LocalCluster` -> a
      :class:`ServiceClient` on its service;
    * a :class:`~repro.core.config.ServiceConfig` plus ``peers``
      (address -> (host, port), e.g. a cluster's ``endpoints`` or a
      hand-built daemon address book) -> an owning
      :class:`DaemonFleetClient` whose every RPC crosses TCP.
    """
    if isinstance(target, KeywordSearchService):
        return ServiceClient(target)
    if isinstance(target, ServiceConfig):
        if peers is None:
            raise TypeError("connect(config, ...) needs peers= (address -> (host, port))")
        return DaemonFleetClient(
            target, peers, rpc_timeout=rpc_timeout, time_scale=time_scale
        )
    service = getattr(target, "service", None)
    if isinstance(service, KeywordSearchService):  # LocalCluster / NodeDaemon shape
        return ServiceClient(service)
    raise TypeError(
        f"cannot build a Client from {type(target).__name__}; pass a "
        "KeywordSearchService, a LocalCluster, or a ServiceConfig with peers="
    )
