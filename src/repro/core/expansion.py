"""Query expansion (Section 3.4's hot-spot mitigation).

Popular few-keyword queries all root at the same handful of nodes.
The paper's remedy: "query expansion can be used to expand keyword
sets.  Moreover, the applications can add some keywords, based on,
say, the user's preference or his past logs, to help him locate his
interest.  This customization not only improves search quality, but
also alleviates the potential hot spot."

:class:`QueryExpander` implements that application-side policy with no
global knowledge: a cheap category sample of the original query yields
candidate extra keywords; the expander picks the candidate that (a)
matches the user's preference profile where possible and (b) actually
shrinks the search space (hashes into a new dimension), and issues the
*expanded* query.  Expanded queries root deeper in the subcube
(Lemma 3.3), spreading load off the popular roots.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords
from repro.core.sampling import SampledSearch, suggest_refinements

__all__ = ["ExpandedQuery", "QueryExpander"]


@dataclass(frozen=True)
class ExpandedQuery:
    """An expansion decision."""

    original: frozenset[str]
    expanded: frozenset[str]
    added: frozenset[str]
    sample_visits: int

    @property
    def changed(self) -> bool:
        return self.expanded != self.original


class QueryExpander:
    """Application-side query expansion from samples and preferences."""

    def __init__(
        self,
        index: HypercubeIndex,
        *,
        sample_visits: int = 12,
        per_category: int = 2,
        max_categories: int = 12,
    ):
        if sample_visits < 1:
            raise ValueError(f"sample_visits must be >= 1, got {sample_visits}")
        self.index = index
        self.sample_visits = sample_visits
        self.per_category = per_category
        self.max_categories = max_categories
        self._sampler = SampledSearch(index)

    def expand(
        self,
        keywords: Iterable[str],
        *,
        preferences: Mapping[str, float] | Iterable[str] = (),
        max_added: int = 1,
        origin: int | None = None,
    ) -> ExpandedQuery:
        """Expand a query by up to ``max_added`` keywords.

        ``preferences`` weights candidate keywords (a mapping keyword →
        weight, or an iterable treated as weight 1 each) — the "user's
        preference or past logs" of the paper.  Candidates that do not
        occupy a new hypercube dimension are skipped (they would not
        shrink the search space).  When nothing qualifies, the original
        query is returned unchanged.
        """
        if max_added < 0:
            raise ValueError(f"max_added must be >= 0, got {max_added}")
        query = normalize_keywords(keywords)
        if max_added == 0:
            return ExpandedQuery(query, query, frozenset(), 0)
        if isinstance(preferences, Mapping):
            weights = {k: float(v) for k, v in preferences.items()}
        else:
            weights = {k: 1.0 for k in preferences}
        weights = {
            normalized: weight
            for keyword, weight in weights.items()
            for normalized in [next(iter(normalize_keywords([keyword])))]
        }

        sample = self._sampler.run(
            query,
            per_category=self.per_category,
            max_categories=self.max_categories,
            max_visits=self.sample_visits,
            origin=origin,
        )
        suggestions = suggest_refinements(sample, self.index, limit=16)
        current = query
        added: set[str] = set()
        for _ in range(max_added):
            best = None
            best_score = 0.0
            for suggestion in suggestions:
                if suggestion.keyword in current or suggestion.keyword in added:
                    continue
                if suggestion.subcube_reduction <= 0.0:
                    continue  # hashes into an occupied dimension
                preference = 1.0 + weights.get(suggestion.keyword, 0.0)
                score = suggestion.score * preference
                if score > best_score:
                    best, best_score = suggestion, score
            if best is None:
                break
            added.add(best.keyword)
            current = frozenset(current | {best.keyword})
        return ExpandedQuery(query, current, frozenset(added), sample.visits)
