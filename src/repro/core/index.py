"""The hypercube index: per-node shards and Insert / Delete / Pin.

Every logical hypercube node ``u`` keeps an index table ``Tbl_u`` of
entries ``⟨keyword_set, {object ids}⟩`` (Section 3.3).  A physical DHT
node may play several logical nodes (when r exceeds log2 of the network
size), so its :class:`IndexShard` keys tables by ``(namespace, logical
node)`` — the namespace isolates coexisting indexes (e.g. the groups of
a decomposed index, Section 3.4) and a superset scan is always scoped
to one logical node of one namespace, which keeps results exact and
duplicate-free even under heavy logical-to-physical sharing.

:class:`HypercubeIndex` is the network-facing orchestrator.  Operations
follow the paper's flow: an object publish first records the replica
reference at ``L(σ)`` through the DOLR layer; only the *first* copy
triggers index insertion at ``g(F_h(K_σ))``.  Pin search routes one
message to the responsible node.  (Superset search lives in
:mod:`repro.core.search`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.cache import (
    CachedResult,
    CacheSizing,
    FifoQueryCache,
    QueryCache,
    optimum_capacities,
)
from repro.core.keywords import KeywordSetMapper, normalize_keywords
from repro.core.mapping import HypercubeMapping
from repro.dht.dolr import DolrNetwork, DolrNode
from repro.hypercube.hypercube import Hypercube
from repro.net.codec import PostingList
from repro.net.transport import RpcCall
from repro.obs.trace import active_recorder
from repro.sim.network import Message
from repro.store.backend import MemoryStore, StoreBackend

__all__ = ["HypercubeIndex", "IndexEntry", "IndexShard", "PinResult"]

TableKey = tuple[str, int]


@dataclass(frozen=True)
class IndexEntry:
    """One index-table entry ⟨K, {σ_1, ..., σ_n}⟩."""

    keywords: frozenset[str]
    object_ids: frozenset[str]


@dataclass(frozen=True)
class PinResult:
    """Outcome of a pin search."""

    keywords: frozenset[str]
    object_ids: tuple[str, ...]
    logical_node: int
    physical_node: int
    dht_hops: int

    def results(self) -> tuple[str, ...]:
        """The matching object IDs — the accessor shared by every search
        result type (see :meth:`repro.core.search.SearchResult.results`)."""
        return self.object_ids


def _entry_sort_key(item: tuple[frozenset[str], set[str]]) -> tuple[int, tuple[str, ...]]:
    keywords, _ = item
    return (len(keywords), tuple(sorted(keywords)))


class IndexShard:
    """Per-physical-node application holding the index tables of every
    logical node that physical node plays, plus the query cache.

    Message kinds (prefix ``hindex``):

    * ``hindex.put`` / ``hindex.remove`` — entry maintenance,
    * ``hindex.pin`` — exact-set lookup,
    * ``hindex.scan`` — superset scan at one logical node (the body of a
      T_QUERY step),
    * ``hindex.results`` — receipt of directly-forwarded result IDs,
    * ``hindex.transfer`` — bulk table hand-off for churn maintenance,
    * ``hindex.cache_get`` / ``hindex.cache_put`` — root-side result
      cache for repeated queries,
    * ``hindex.cache_invalidate`` — coherence sweep after a write (or a
      table handoff) below cached queries; see ``docs/protocol.md`` §16.

    The shard holds **one** query cache with the full per-physical-node
    budget, keyed ``(namespace, logical, query)`` — so a node playing
    many logical hypercube nodes shares one α-budget across them instead
    of multiplying it per hosted table.  Per-namespace *coherence
    epochs* guard cache fills: every write sweep (local or received)
    bumps the namespace's epoch, and a ``cache_put`` carrying an older
    epoch is rejected — it was computed from scans that predate a write.
    """

    prefix = "hindex"

    def __init__(
        self,
        cache_factory=None,
        cache_capacity: int = 0,
        store: StoreBackend | None = None,
    ):
        # Durable backend: every table mutation is recorded through it,
        # and whatever state it recovered becomes the boot tables.  The
        # default MemoryStore records nothing and recovers nothing.
        self.store: StoreBackend = store if store is not None else MemoryStore()
        recovered = self.store.recover()
        self.tables: dict[TableKey, dict[frozenset[str], set[str]]] = {
            key: {keywords: set(objects) for keywords, objects in table.items()}
            for key, table in recovered.tables.items()
        }
        self.store.bind(tables=lambda: self.tables)
        # One query cache per *physical* node, shared by every logical
        # node (and namespace) this shard plays: keys are
        # (namespace, logical, query).  The capacity is the node's whole
        # budget — hosting many logical nodes does not multiply it.
        self.cache_factory = cache_factory if cache_factory is not None else FifoQueryCache
        self.cache_capacity = cache_capacity
        self.cache: QueryCache = self.cache_factory(cache_capacity)
        # Per-namespace coherence epoch: bumped by every invalidation
        # sweep; stale cache fills (computed before the bump) carry the
        # old epoch and are rejected.
        self.cache_epochs: dict[str, int] = {}
        # Scans iterate entries in sorted order; the order is cached per
        # table and invalidated on mutation (scans vastly outnumber
        # mutations in the query experiments).
        self._scan_order: dict[TableKey, list[frozenset[str]]] = {}

    # -- query cache -------------------------------------------------------

    def cache_epoch(self, namespace: str) -> int:
        return self.cache_epochs.get(namespace, 0)

    def reset_cache(self, cache_capacity: int | None = None, cache_factory=None) -> None:
        """Replace the cache (dropping every entry), optionally with a
        new capacity or policy.  Epochs are kept — a reset is not a
        coherence event, but fills in flight must still be judged
        against the same epoch line."""
        if cache_capacity is not None:
            self.cache_capacity = cache_capacity
        if cache_factory is not None:
            self.cache_factory = cache_factory
        metrics = self.cache.metrics
        if metrics is not None:
            metrics.increment("cache.used", -self.cache.used)
        self.cache = self.cache_factory(self.cache_capacity)
        self.cache.metrics = metrics

    def cache_get(
        self, namespace: str, logical: int, query: frozenset[str], threshold: int | None
    ) -> CachedResult | None:
        return self.cache.get((namespace, logical, query), threshold)

    def cache_put(
        self,
        namespace: str,
        logical: int,
        query: frozenset[str],
        results: tuple,
        *,
        complete: bool,
        epoch: int | None = None,
        speculative: bool = False,
    ) -> bool:
        """Install one entry; a fill whose ``epoch`` predates the current
        coherence epoch is rejected (its scans may have read pre-write
        tables, and the invalidation that bumped the epoch cannot reach
        an entry that does not exist yet).  ``speculative`` marks
        cooperative path fills, which are admission-controlled so they
        never displace demand entries (see
        :meth:`repro.core.cache.QueryCache.put`)."""
        if epoch is not None and epoch != self.cache_epoch(namespace):
            return False
        return self.cache.put(
            (namespace, logical, query),
            results,
            complete=complete,
            speculative=speculative,
        )

    def invalidate_queries(
        self,
        namespace: str,
        *,
        keywords: frozenset[str] | None = None,
        object_id: str | None = None,
        op: str = "insert",
        logical: int | None = None,
    ) -> int:
        """The receiver side of ``hindex.cache_invalidate``.

        Fine-grained form (``keywords`` given): a write touched table
        ⟨keywords⟩, so every cached query K ⊆ keywords may cover it.  On
        ``remove``, complete entries are *patched* — the object filtered
        out in place, which preserves fresh-walk result order — and
        partial entries dropped (their prefix may shift); on ``insert``
        every affected entry is dropped (the new object's position in a
        fresh walk is unknowable here).

        Coarse form (``logical`` given): a whole table moved hosts
        (churn handoff / repair), so every cached query rooted at a
        bit-subset of ``logical`` is dropped — mid-handoff walks may
        have scanned an empty table.

        Either form bumps the namespace's coherence epoch, even when no
        entry matched: in-flight fills may carry pre-write scans for
        entries not installed yet.  Returns entries invalidated.
        """
        if keywords is not None:
            def affected(key) -> bool:
                key_namespace, _, key_query = key
                return key_namespace == namespace and key_query <= keywords
        else:
            if logical is None:
                raise ValueError("invalidate_queries needs keywords or logical")
            def affected(key) -> bool:
                key_namespace, key_logical, _ = key
                return key_namespace == namespace and (key_logical & logical) == key_logical
        count = 0
        for key in self.cache.matching_keys(affected):
            entry = self.cache.peek(key)
            if (
                op == "remove"
                and entry is not None
                and entry.complete
                and object_id is not None
            ):
                patched = tuple(
                    (cached_id, cached_keywords)
                    for cached_id, cached_keywords in entry.results
                    if cached_id != object_id
                )
                if len(patched) < len(entry.results):
                    self.cache.replace(key, CachedResult(patched, True))
                    count += 1
                # A complete entry not holding the object needs nothing:
                # the removed object never matched this query.
                continue
            if self.cache.drop(key):
                count += 1
        self.cache_epochs[namespace] = self.cache_epoch(namespace) + 1
        return count

    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of this shard's cache."""
        return self.cache.hits, self.cache.misses

    # -- local operations (also the handler bodies) -----------------------

    def put(self, key: TableKey, keywords: frozenset[str], object_id: str) -> None:
        table = self.tables.setdefault(key, {})
        table.setdefault(keywords, set()).add(object_id)
        self._scan_order.pop(key, None)
        self.store.record_put(key[0], key[1], keywords, object_id)
        self.store.maybe_compact()

    def remove(self, key: TableKey, keywords: frozenset[str], object_id: str) -> bool:
        table = self.tables.get(key)
        if table is None or keywords not in table:
            return False
        objects = table[keywords]
        objects.discard(object_id)
        if not objects:
            del table[keywords]
            if not table:
                del self.tables[key]
        self._scan_order.pop(key, None)
        self.store.record_remove(key[0], key[1], keywords, object_id)
        self.store.maybe_compact()
        return True

    def pin(self, key: TableKey, keywords: frozenset[str]) -> tuple[str, ...]:
        table = self.tables.get(key, {})
        return tuple(sorted(table.get(keywords, ())))

    def scan(
        self, key: TableKey, keywords: frozenset[str], limit: int | None
    ) -> tuple[PostingList, bool]:
        """Entries at ``key`` whose keyword set contains ``keywords``,
        smallest/lexicographically-first keyword sets first, truncated to
        ``limit`` object ids.  Returns (matches, truncated).

        The matches come back as a
        :class:`~repro.net.codec.PostingList` — a plain list to every
        in-process consumer, but the wire layer recognizes the type and
        ships a scan reply in the binary codec's flat posting-set form
        (one pass over the strings, no per-element type bytes).
        """
        table = self.tables.get(key)
        if table is None:
            return PostingList(), False
        order = self._scan_order.get(key)
        if order is None:
            order = sorted(table, key=lambda k: (len(k), tuple(sorted(k))))
            self._scan_order[key] = order
        matches: PostingList = PostingList()
        budget = limit
        truncated = False
        for entry_keywords in order:
            if not keywords <= entry_keywords:
                continue
            ordered = tuple(sorted(table[entry_keywords]))
            if budget is not None:
                if budget <= 0:
                    truncated = True
                    break
                if len(ordered) > budget:
                    ordered = ordered[:budget]
                    truncated = True
                budget -= len(ordered)
            matches.append((entry_keywords, ordered))
        return matches, truncated

    # -- churn handoff ------------------------------------------------------

    def snapshot_records(self, key: TableKey) -> list[tuple[list[str], list[str]]]:
        """One table's entries as deterministic ``(keywords, ids)``
        rows — the stream churn handoff ships and snapshots fold (same
        order as :func:`repro.store.wal.entry_records`)."""
        table = self.tables.get(key, {})
        return [
            (sorted(keywords), sorted(table[keywords]))
            for keywords in sorted(table, key=lambda k: (len(k), tuple(sorted(k))))
        ]

    def drop_table(self, key: TableKey) -> None:
        """Forget one table (it was handed off); the drop is durable, so
        a restarted node does not resurrect entries it gave away."""
        if self.tables.pop(key, None) is None:
            return
        self._scan_order.pop(key, None)
        self.store.record_drop(key[0], key[1])
        self.store.maybe_compact()

    # -- introspection ------------------------------------------------------

    def entries(self, key: TableKey) -> list[IndexEntry]:
        table = self.tables.get(key, {})
        return [
            IndexEntry(keywords, frozenset(objects))
            for keywords, objects in sorted(table.items(), key=_entry_sort_key)
        ]

    def load(self, key: TableKey | None = None, *, namespace: str | None = None) -> int:
        """Object references stored — for one table, one namespace, or in
        total."""
        if key is not None:
            return sum(len(objects) for objects in self.tables.get(key, {}).values())
        return sum(
            len(objects)
            for (table_namespace, _), table in self.tables.items()
            if namespace is None or table_namespace == namespace
            for objects in table.values()
        )

    # -- message handling ---------------------------------------------------

    def handle(self, node: DolrNode, message: Message):
        payload = message.payload
        if self.cache.metrics is None:
            # First message wires the node's registry in: cache counters
            # (hits/misses/evictions/invalidations/used) then surface in
            # this node's MetricsSnapshot and /metrics endpoint.
            self.cache.metrics = node.network.metrics
        if message.kind in ("hindex.put", "hindex.remove", "hindex.pin", "hindex.scan"):
            key = (payload["namespace"], payload["logical"])
            keywords = frozenset(payload["keywords"])
            if message.kind == "hindex.put":
                self.put(key, keywords, payload["object_id"])
                return {}
            if message.kind == "hindex.remove":
                return {"removed": self.remove(key, keywords, payload["object_id"])}
            if message.kind == "hindex.pin":
                return {"object_ids": self.pin(key, keywords)}
            epoch = self.cache_epoch(key[0])
            if payload.get("consult"):
                # Cooperative path cache (docs/protocol.md §16): when a
                # complete subtree result for this exact query is cached
                # here and fits the scan limit, answer from it and let
                # the walker skip the whole subtree.
                entry = self.cache.peek((key[0], key[1], keywords))
                limit = payload.get("limit")
                if (
                    entry is not None
                    and entry.complete
                    and (limit is None or len(entry.results) <= limit)
                ):
                    self.cache.get((key[0], key[1], keywords), None)  # count the hit
                    # A fill that actually pruned a walk has earned
                    # demand-tier protection from later fills.
                    self.cache.promote((key[0], key[1], keywords))
                    return {"cache_hit": True, "results": entry.results, "epoch": epoch}
                self.cache.misses += 1
                self.cache._count("cache.misses")
            matches, truncated = self.scan(key, keywords, payload.get("limit"))
            # Payloads stay in-process: entries cross as (frozenset,
            # tuple) pairs without serialization round-trips.  The epoch
            # rides along so the walker can guard its later cache fills.
            return {"matches": matches, "truncated": truncated, "epoch": epoch}
        if message.kind == "hindex.transfer":
            key = (payload["namespace"], payload["logical"])
            for keywords, object_ids in payload["table"]:
                for object_id in object_ids:
                    self.put(key, frozenset(keywords), object_id)
            return {"accepted": sum(len(ids) for _, ids in payload["table"])}
        if message.kind == "hindex.snapshot":
            # Read-only counterpart of hindex.transfer: ship one table's
            # deterministic rows *without* dropping it — the pull side of
            # re-replication after a crash (see repro.membership).
            key = (payload["namespace"], payload["logical"])
            return {"table": self.snapshot_records(key)}
        if message.kind == "hindex.results":
            # Receipt of object IDs a queried node forwarded directly to
            # the requester; the requester-side driver already collected
            # them, so this is accounting-only.
            return {}
        if message.kind == "hindex.cache_get":
            namespace = payload["namespace"]
            entry = self.cache_get(
                namespace,
                payload["logical"],
                frozenset(payload["keywords"]),
                payload.get("threshold"),
            )
            epoch = self.cache_epoch(namespace)
            if entry is None:
                return {"hit": False, "epoch": epoch}
            return {
                "hit": True,
                "complete": entry.complete,
                "results": entry.results,
                "epoch": epoch,
            }
        if message.kind == "hindex.cache_put":
            stored = self.cache_put(
                payload["namespace"],
                payload["logical"],
                frozenset(payload["keywords"]),
                tuple(payload["results"]),
                complete=payload["complete"],
                epoch=payload.get("epoch"),
                speculative=payload.get("speculative", False),
            )
            if not stored and payload.get("epoch") is not None:
                self.cache._count("cache.stale_fills_rejected")
            return {"stored": stored}
        if message.kind == "hindex.cache_invalidate":
            keywords = payload.get("keywords")
            count = self.invalidate_queries(
                payload["namespace"],
                keywords=frozenset(keywords) if keywords is not None else None,
                object_id=payload.get("object_id"),
                op=payload.get("op", "insert"),
                logical=payload.get("logical"),
            )
            return {"invalidated": count, "epoch": self.cache_epoch(payload["namespace"])}
        raise LookupError(f"unknown hindex message kind {message.kind!r}")


class HypercubeIndex:
    """The keyword index over a hypercube mapped onto a DOLR network."""

    def __init__(
        self,
        cube: Hypercube,
        dolr: DolrNetwork,
        *,
        mapper: KeywordSetMapper | None = None,
        mapping: HypercubeMapping | None = None,
        namespace: str = "main",
        cache_capacity: int = 0,
        cache_factory=FifoQueryCache,
        stores: dict[int, StoreBackend] | None = None,
    ):
        """``stores`` maps physical addresses to durable backends; a
        node's shard boots from (and records into) its entry.  Absent
        addresses get the no-op :class:`~repro.store.MemoryStore`."""
        self.cube = cube
        self.dolr = dolr
        self.mapper = mapper if mapper is not None else KeywordSetMapper(cube)
        self.mapping = mapping if mapping is not None else HypercubeMapping(cube, dolr)
        self.namespace = namespace
        self.cache_capacity = cache_capacity
        stores = stores or {}
        dolr.ensure_application(
            lambda node: IndexShard(cache_factory, cache_capacity, store=stores.get(node.address)),
            "hindex",
        )

    # -- shard access -------------------------------------------------------

    def shard_at(self, physical: int) -> IndexShard:
        shard = self.dolr.node(physical).application("hindex")
        assert isinstance(shard, IndexShard)
        return shard

    def shard_for_logical(self, logical: int) -> IndexShard:
        return self.shard_at(self.mapping.physical_owner(logical))

    def table_key(self, logical: int) -> TableKey:
        return (self.namespace, logical)

    # -- the paper's operations ------------------------------------------------

    def insert(
        self, object_id: str, keywords: Iterable[str], holder: int, *, origin: int | None = None
    ) -> bool:
        """Publish a replica of ``object_id`` held at node ``holder``.

        The reference is recorded at L(σ); if this was the first copy,
        the index entry ⟨K_σ, σ⟩ is placed at g(F_h(K_σ)).  Returns True
        when the index entry was created (first copy).
        """
        normalized = normalize_keywords(keywords)
        first_copy = self.dolr.insert(object_id, holder, origin=origin)
        if not first_copy:
            return False
        logical = self.mapper.node_for(normalized)
        reference_owner = self.dolr.local_owner(self.dolr.object_key(object_id))
        self.dolr.route_rpc(
            self.mapping.dht_key(logical),
            "hindex.put",
            {
                "namespace": self.namespace,
                "logical": logical,
                "keywords": sorted(normalized),
                "object_id": object_id,
            },
            origin=reference_owner,
        )
        self.invalidate_caches(normalized, object_id, "insert", origin=reference_owner)
        return True

    def delete(
        self, object_id: str, keywords: Iterable[str], holder: int, *, origin: int | None = None
    ) -> bool:
        """Withdraw a replica; the index entry is removed with the last
        copy.  Returns True when the index entry was removed."""
        normalized = normalize_keywords(keywords)
        last_copy = self.dolr.delete(object_id, holder, origin=origin)
        if not last_copy:
            return False
        logical = self.mapper.node_for(normalized)
        reference_owner = self.dolr.local_owner(self.dolr.object_key(object_id))
        self.dolr.route_rpc(
            self.mapping.dht_key(logical),
            "hindex.remove",
            {
                "namespace": self.namespace,
                "logical": logical,
                "keywords": sorted(normalized),
                "object_id": object_id,
            },
            origin=reference_owner,
        )
        self.invalidate_caches(normalized, object_id, "remove", origin=reference_owner)
        return True

    # -- cache coherence ---------------------------------------------------

    def coherence_targets(self, logical: int) -> list[int]:
        """Physical hosts that may cache a query covering table
        ``logical``.

        A cached entry for query K at logical node w can cover ⟨K_σ⟩ at
        ``u = F_h(K_σ)`` only when ``w ⊆ u`` bitwise (the root of K's
        walk, or an interior node of it, is always a bit-subset of every
        table the walk reads).  The candidates are therefore the
        ``2**popcount(u) - 1`` nonzero bit-subsets of ``u`` — small,
        since ``popcount(u) <= |K_σ|`` — deduplicated to physical
        owners; when the subset lattice outnumbers the live cluster, one
        message per live host is cheaper and equally exact.
        """
        bits = [i for i in range(self.cube.dimension) if (logical >> i) & 1]
        live = self.dolr.live_addresses()
        if (1 << len(bits)) - 1 >= len(live):
            return sorted(live)
        owners: set[int] = set()
        for mask in range(1, 1 << len(bits)):
            subset = 0
            for j, bit in enumerate(bits):
                if (mask >> j) & 1:
                    subset |= 1 << bit
            owners.add(self.mapping.physical_owner(subset))
        return sorted(owners)

    def _send_invalidations(self, payload: dict, logical: int, origin: int) -> int:
        """Fan one ``hindex.cache_invalidate`` to every coherence target
        of ``logical`` in a single batch; unreachable targets are
        skipped (a crashed node's cache dies with it).  Returns entries
        invalidated cluster-wide."""
        targets = self.coherence_targets(logical)
        calls = [
            RpcCall(origin, target, "hindex.cache_invalidate", payload) for target in targets
        ]
        outcomes = self.dolr.channel.rpc_many(calls)
        invalidated = sum(
            outcome.value["invalidated"] for outcome in outcomes if outcome.ok
        )
        self.dolr.network.metrics.increment("cache.invalidate_rpcs", len(calls))
        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                "cache_invalidate",
                namespace=payload["namespace"],
                op=payload["op"],
                logical=logical,
                targets=len(targets),
                invalidated=invalidated,
            )
        return invalidated

    def invalidate_caches(
        self, keywords: frozenset[str], object_id: str, op: str, *, origin: int
    ) -> int:
        """Write-path coherence: after a put/remove of ⟨keywords⟩, sweep
        every cache that could hold a query covering that table.  A
        no-op while caching is off (``cache_capacity == 0``) so the
        cacheless experiments keep their exact message counts."""
        if self.cache_capacity <= 0:
            return 0
        logical = self.mapper.node_for(keywords)
        payload = {
            "namespace": self.namespace,
            "op": op,
            "keywords": sorted(keywords),
            "object_id": object_id,
        }
        return self._send_invalidations(payload, logical, origin)

    def invalidate_coverage(self, logical: int, *, origin: int) -> int:
        """Churn-path coherence: a whole table changed hosts (handoff or
        replica repair), so drop every cached query rooted at a
        bit-subset of ``logical`` — a walk that raced the move may have
        scanned an empty table and cached the miss as authoritative."""
        if self.cache_capacity <= 0:
            return 0
        payload = {"namespace": self.namespace, "op": "table", "logical": logical}
        return self._send_invalidations(payload, logical, origin)

    def pin_search(self, keywords: Iterable[str], *, origin: int | None = None) -> PinResult:
        """Exact-keyword-set search: one routed message to F_h(K)."""
        normalized = normalize_keywords(keywords)
        logical = self.mapper.node_for(normalized)
        result, route = self.dolr.route_rpc(
            self.mapping.dht_key(logical),
            "hindex.pin",
            {
                "namespace": self.namespace,
                "logical": logical,
                "keywords": sorted(normalized),
            },
            origin=origin,
        )
        return PinResult(
            keywords=normalized,
            object_ids=tuple(result["object_ids"]),
            logical_node=logical,
            physical_node=route.owner,
            dht_hops=route.hops,
        )

    # -- churn maintenance -------------------------------------------------

    def rebalance(self) -> int:
        """Move misplaced index tables to their current owners.

        After nodes *join*, keys change owners but data does not move by
        itself (the DHT layer stores what it is given).  This sweep
        transfers every table of this namespace hosted on the wrong node
        to the right one, one ``hindex.transfer`` message per (logical
        node, destination).  Returns the number of object references
        moved.
        """
        self.mapping.invalidate_placement_cache()
        moved = 0
        for address in list(self.dolr.addresses()):
            moved += self._push_misplaced_tables(address)
        return moved

    def evacuate(self, leaving: int) -> int:
        """Hand off a departing node's tables before a graceful leave.

        Owners are computed *as if* ``leaving`` were already gone, so
        the data lands exactly where post-departure lookups will go.
        Call this, then ``dolr.leave(leaving)``.  Returns the number of
        object references moved.
        """
        if leaving not in self.dolr.nodes:
            raise ValueError(f"unknown node {leaving}")
        shard = self.shard_at(leaving)
        node = self.dolr.nodes.pop(leaving)  # simulate absence for placement
        try:
            self.mapping.invalidate_placement_cache()
            moved = self._push_misplaced_tables(leaving, shard=shard)
        finally:
            self.dolr.nodes[leaving] = node
            self.mapping.invalidate_placement_cache()
        return moved

    def _push_misplaced_tables(self, address: int, shard: IndexShard | None = None) -> int:
        shard = self.shard_at(address) if shard is None else shard
        moved = 0
        for key in [k for k in shard.tables if k[0] == self.namespace]:
            _, logical = key
            owner = self.mapping.physical_owner(logical)
            if owner == address:
                continue
            # Stream the table as snapshot records, then drop it — the
            # receiving shard's puts and this drop both hit the stores,
            # so the handoff is durable on both ends and a restarted
            # sender does not resurrect what it gave away.
            payload_table = shard.snapshot_records(key)
            self.dolr.channel.rpc(
                address,
                owner,
                "hindex.transfer",
                {"namespace": self.namespace, "logical": logical, "table": payload_table},
            )
            shard.drop_table(key)
            # The table just changed hosts: queries that raced the move
            # may have cached scans of the receiver's then-empty table.
            self.invalidate_coverage(logical, origin=address)
            moved += sum(len(ids) for _, ids in payload_table)
        return moved

    # -- bulk/introspection helpers for experiments ---------------------------

    def reset_caches(self, cache_capacity: int | None = None, cache_factory=None) -> None:
        """Drop every node's query cache (optionally re-configuring the
        per-physical-node capacity/policy) — lets experiments sweep
        cache parameters without rebuilding the index."""
        if cache_capacity is not None:
            self.cache_capacity = cache_capacity
        for address in self.dolr.addresses():
            self.shard_at(address).reset_cache(cache_capacity, cache_factory)

    def apportion_cache_capacity(
        self,
        total_budget: int,
        *,
        sizing: CacheSizing = CacheSizing.SQRT_LOAD,
        cache_factory=None,
    ) -> dict[int, int]:
        """Split one cluster-wide cache budget across physical nodes per
        the Sarshar & Roychowdhury optimum-size rule (see
        :func:`repro.core.cache.optimum_capacities`), weighting each
        node by the object references it currently indexes.  Resets
        every shard's cache to its allocation and returns the
        ``address -> capacity`` map."""
        loads = self.load_by_physical_node()
        addresses = sorted(loads)
        capacities = optimum_capacities(
            total_budget, [loads[address] for address in addresses], sizing=sizing
        )
        allocation = dict(zip(addresses, capacities))
        for address, capacity in allocation.items():
            self.shard_at(address).reset_cache(capacity, cache_factory)
        self.cache_capacity = max(capacities, default=0)
        return allocation

    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) aggregated over all shards."""
        hits = misses = 0
        for address in self.dolr.addresses():
            shard_hits, shard_misses = self.shard_at(address).cache_stats()
            hits += shard_hits
            misses += shard_misses
        return hits, misses

    def bulk_load(self, items: Iterable[tuple[str, Iterable[str]]]) -> int:
        """Load index entries directly into shards, bypassing the
        network protocol.

        An out-of-band bootstrap for experiments that study *query*
        behaviour over a large pre-built index: placement is identical
        to :meth:`insert` (same ``F_h`` and ``g``), only the per-object
        routed messages are skipped.  Returns the number of entries
        loaded.  Replica references are *not* registered.
        """
        placement = self.mapping.placement()
        shards = {address: self.shard_at(address) for address in self.dolr.addresses()}
        count = 0
        for object_id, keywords in items:
            normalized = normalize_keywords(keywords)
            logical = self.mapper.node_for(normalized)
            shards[placement[logical]].put(self.table_key(logical), normalized, object_id)
            count += 1
        return count

    def load_by_logical_node(self) -> dict[int, int]:
        """Object references indexed per logical node of this namespace
        (zero-load nodes included).  O(2**r) — experiment scale only."""
        loads = dict.fromkeys(self.cube.nodes(), 0)
        for address in self.dolr.addresses():
            node = self.dolr.node(address)
            if not node.has_application("hindex"):
                continue
            shard = node.application("hindex")
            assert isinstance(shard, IndexShard)
            for (namespace, logical), table in shard.tables.items():
                if namespace == self.namespace:
                    loads[logical] += sum(len(objects) for objects in table.values())
        return loads

    def load_by_physical_node(self) -> dict[int, int]:
        """Object references of this namespace indexed per physical node."""
        loads = dict.fromkeys(self.dolr.addresses(), 0)
        for address in self.dolr.addresses():
            node = self.dolr.node(address)
            if node.has_application("hindex"):
                shard = node.application("hindex")
                assert isinstance(shard, IndexShard)
                loads[address] = shard.load(namespace=self.namespace)
        return loads

    def total_indexed(self) -> int:
        return sum(self.load_by_physical_node().values())
