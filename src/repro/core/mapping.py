"""Mapping the logical hypercube onto the physical DHT (Section 3.2).

``g : V → V'`` hashes each logical hypercube node to a key of the DHT
identifier space; the physical node responsible for that key (by the
DHT's surrogate routing) plays the logical node.  The hypercube
dimension ``r`` is free to differ from the DHT identifier size ``a``:
with ``r`` large, many logical nodes share a physical node; with ``r``
small, only some physical nodes carry index shards.
"""

from __future__ import annotations

from repro.dht.dolr import DolrNetwork, LookupResult
from repro.hypercube.hypercube import Hypercube
from repro.obs.trace import active_recorder

__all__ = ["HypercubeMapping"]


class HypercubeMapping:
    """Binds a hypercube to a DOLR network through the hash ``g``."""

    def __init__(
        self,
        cube: Hypercube,
        dolr: DolrNetwork,
        *,
        salt: str = "g",
        identity: bool = False,
    ):
        """``identity=True`` makes ``g`` the identity map — for native
        hypercube overlays (Section 3.2's "physical hypercube" option,
        :class:`repro.dht.hypercup.HypercubeOverlay`), where logical
        hypercube nodes *are* the physical vertices.  Requires the cube
        dimension to equal the overlay's identifier width."""
        if identity and cube.dimension != dolr.space.bits:
            raise ValueError(
                f"identity mapping needs cube dimension ({cube.dimension}) == "
                f"DHT bits ({dolr.space.bits})"
            )
        self.cube = cube
        self.dolr = dolr
        self.salt = salt
        self.identity = identity
        self._key_cache: dict[int, int] = {}
        self._placement_cache: dict[int, int] | None = None
        self._inverse_cache: dict[int, tuple[int, ...]] | None = None

    def dht_key(self, logical: int) -> int:
        """``g(u)``: the DHT key standing for logical node ``u``."""
        if self.identity:
            return self.cube.check_node(logical)
        cached = self._key_cache.get(logical)
        if cached is not None:
            return cached
        self.cube.check_node(logical)
        key = self.dolr.space.hash_name(
            f"hypercube/{self.cube.dimension}/{logical}", salt=f"mapping.g/{self.salt}"
        )
        self._key_cache[logical] = key
        return key

    def physical_owner(self, logical: int) -> int:
        """The physical node playing ``u``, from global knowledge."""
        if self._placement_cache is not None:
            owner = self._placement_cache.get(logical)
            if owner is not None:
                return owner
        owner = self.dolr.local_owner(self.dht_key(logical))
        if self._placement_cache is not None:
            self._placement_cache[logical] = owner
        return owner

    def enable_placement_cache(self) -> None:
        """Memoize logical→physical ownership.  Call only while DHT
        membership is static; :meth:`invalidate_placement_cache` after
        any join/leave."""
        if self._placement_cache is None:
            self._placement_cache = {}

    def invalidate_placement_cache(self) -> None:
        """Drop memoized ownership after a membership change."""
        if self._placement_cache is not None:
            self._placement_cache = {}
        self._inverse_cache = None

    def disable_placement_cache(self) -> None:
        """Turn memoization off entirely — for workloads that violate
        the static-membership assumption (node failures, churn), where
        even a repopulated cache would answer with stale owners."""
        self._placement_cache = None
        self._inverse_cache = None

    def route_to(
        self, logical: int, origin: int | None = None, *, refresh: bool = False
    ) -> LookupResult:
        """Route to the physical node playing ``u``, paying DHT hops.

        Shares the placement cache with :meth:`physical_owner`: while
        the cache is enabled (static membership) a cached owner answers
        with zero hops, and a paid lookup populates it.  ``refresh=True``
        skips the consult and re-resolves — the degraded-search paths
        use it after a contact failed, when the cached owner is exactly
        what can no longer be trusted.
        """
        cache = self._placement_cache
        if cache is not None and not refresh:
            owner = cache.get(logical)
            if owner is not None:
                result = LookupResult(
                    key=self.dht_key(logical), owner=owner, hops=0, path=(owner,)
                )
                recorder = active_recorder()
                if recorder is not None:
                    recorder.emit(
                        "route",
                        target=logical,
                        owner=owner,
                        hops=0,
                        origin=origin,
                        cached=True,
                    )
                return result
        result = self.dolr.lookup(self.dht_key(logical), origin=origin)
        if cache is not None:
            cache[logical] = result.owner
        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                "route",
                target=logical,
                owner=result.owner,
                hops=result.hops,
                origin=origin,
            )
        return result

    def placement(self) -> dict[int, int]:
        """logical node -> physical owner for the whole cube.

        Materializes 2**r entries; fine for the experiment range
        (r ≤ 16) but avoid for very large cubes.
        """
        return {
            logical: self.physical_owner(logical) for logical in self.cube.nodes()
        }

    def logical_nodes_of(self, physical: int) -> list[int]:
        """All logical nodes a physical node plays (inverse of ``g``
        composed with ownership).

        O(2**r) on first call; while the placement cache is enabled the
        full inverse map is memoized alongside it (recovery and churn
        handoff ask per node), so repeat calls are O(result).
        """
        if self._placement_cache is None:
            return [
                logical
                for logical in self.cube.nodes()
                if self.physical_owner(logical) == physical
            ]
        if self._inverse_cache is None:
            inverse: dict[int, list[int]] = {}
            for logical in self.cube.nodes():
                inverse.setdefault(self.physical_owner(logical), []).append(logical)
            self._inverse_cache = {
                owner: tuple(nodes) for owner, nodes in inverse.items()
            }
        return list(self._inverse_cache.get(physical, ()))
