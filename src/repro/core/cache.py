"""Per-node query-result caches (Section 4, third experiment).

The paper installs a cache at each node, managed FIFO, with capacity
``α × |O| / 2**r`` — a fraction α of the average index size per node.
Because every query for keyword set K roots at the same node
``F_h(K)``, caching complete result sets at the root lets repeated
popular queries (the bulk of real streams) be answered by contacting
that single node.

A cache entry maps a query keyword set to the ordered results collected
by a previous search, together with a completeness flag: a search that
exhausted the subhypercube caches a *complete* set, usable at any
requested threshold; a threshold-limited search caches a partial set,
usable only when it already covers the new request.  Capacity is
accounted in object references, the same unit as index-table size, so α
is directly comparable to the paper's.

Coherence primitives (:meth:`QueryCache.drop`,
:meth:`QueryCache.replace`, :meth:`QueryCache.matching_keys`) let the
index shard invalidate or patch entries when a write lands below a
cached query — see ``docs/protocol.md`` §16 for the protocol that
drives them.  :func:`optimum_capacities` apportions one cluster-wide
cache budget across physical nodes per the optimum-cache-size analysis
of Sarshar & Roychowdhury (PAPERS.md): allocation proportional to the
square root of a node's demand equalizes the marginal miss reduction
per cache slot across the cluster, which beats a uniform split whenever
load is skewed.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import math
from collections import OrderedDict
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

__all__ = [
    "CacheSizing",
    "CachedResult",
    "FifoQueryCache",
    "LruQueryCache",
    "QueryCache",
    "optimum_capacities",
]


class CacheSizing(enum.Enum):
    """How one cluster-wide cache budget is split across physical nodes
    (see :func:`optimum_capacities`)."""

    UNIFORM = "uniform"
    SQRT_LOAD = "sqrt_load"


@dataclass(frozen=True)
class CachedResult:
    """Results of one earlier query: (object_id, keyword_set) in the
    order the search returned them, plus completeness.

    ``speculative`` marks cooperative path-cache fills pushed by a
    walker rather than demanded locally.  Speculative entries are
    admission-controlled: they may claim free capacity or displace one
    another but never evict a demand entry, and they are the first
    victims when a demand insert needs room — so enabling the
    cooperative tier can only add coverage on top of the baseline
    root-cache behaviour, never degrade it (docs/protocol.md §16).
    """

    results: tuple[tuple[str, frozenset[str]], ...]
    complete: bool
    speculative: bool = False

    @property
    def size(self) -> int:
        """Cache-capacity units consumed (object references)."""
        return len(self.results)

    def satisfies(self, threshold: int | None) -> bool:
        """Can this entry answer a request for ``threshold`` results
        (None = all)?"""
        if self.complete:
            return True
        return threshold is not None and len(self.results) >= threshold


class QueryCache(abc.ABC):
    """Bounded cache of query results with a pluggable eviction policy.

    ``unit`` selects how capacity is accounted:

    * ``"entries"`` (default) — one unit per cached query, mirroring the
      index table's ⟨K, O⟩ entry granularity.  This is the reading under
      which the paper's Figure 9 is reproducible: a root node needs to
      retain one entry per distinct query it roots, and the number of
      distinct queries per root is small even for huge streams.
    * ``"references"`` — one unit per cached object reference, for the
      stricter-accounting ablation.
    """

    def __init__(self, capacity: int, *, unit: str = "entries"):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if unit not in ("entries", "references"):
            raise ValueError(f"unit must be 'entries' or 'references', got {unit!r}")
        self.capacity = capacity
        self.unit = unit
        self._entries: OrderedDict[Hashable, CachedResult] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Optional MetricsRegistry sink: when set (the index shard wires
        # its node's registry in), hit/miss/eviction/invalidation counts
        # and the occupancy gauge are mirrored as ``cache.*`` counters.
        self.metrics = None

    def _size_of(self, entry: CachedResult) -> int:
        return 1 if self.unit == "entries" else entry.size

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.increment(name, amount)

    # -- policy hook ------------------------------------------------------

    @abc.abstractmethod
    def _touch(self, key: Hashable) -> None:
        """Update recency bookkeeping after a hit on ``key``."""

    # -- operations ---------------------------------------------------------

    def get(self, query: Hashable, threshold: int | None) -> CachedResult | None:
        """Return a cached result able to answer ``threshold``, or None."""
        entry = self._entries.get(query)
        if entry is None or not entry.satisfies(threshold):
            self.misses += 1
            self._count("cache.misses")
            return None
        self.hits += 1
        self._count("cache.hits")
        self._touch(query)
        return entry

    def peek(self, query: Hashable) -> CachedResult | None:
        """The entry for ``query`` without hit/miss accounting or recency
        touch — the probe coherence sweeps and cooperative consults use
        to decide before committing to a counted :meth:`get`."""
        return self._entries.get(query)

    def put(
        self,
        query: Hashable,
        results: tuple[tuple[str, frozenset[str]], ...],
        *,
        complete: bool,
        speculative: bool = False,
    ) -> bool:
        """Insert (or refresh) an entry, evicting in policy order until it
        fits.  Returns False when the entry alone exceeds capacity — it
        is then not cached at all, and any *existing* entry for the same
        query (smaller, possibly complete) is left intact rather than
        evicted in favour of nothing.

        ``speculative`` entries (cooperative path fills) are admission
        controlled: the insert succeeds only if free capacity plus other
        speculative entries can make room — a fill never displaces a
        demand entry (see :class:`CachedResult`)."""
        entry = CachedResult(results, complete, speculative)
        size = self._size_of(entry)
        if size > self.capacity:
            return False
        if speculative:
            reclaimable = self.capacity - self._used + sum(
                self._size_of(held)
                for key, held in self._entries.items()
                if held.speculative or key == query
            )
            if size > reclaimable:
                return False
        self._evict_key(query)
        while self._used + size > self.capacity and self._entries:
            self._evict_oldest(speculative_only=speculative)
        self._entries[query] = entry
        self._used += size
        self._count("cache.used", size)
        return True

    def promote(self, query: Hashable) -> None:
        """Flip a speculative entry to the demand tier — called when a
        cooperative consult actually answers from it, i.e. the fill has
        proven its worth.  Keeps the entry's eviction position; no-op
        for absent or already-demand entries."""
        entry = self._entries.get(query)
        if entry is not None and entry.speculative:
            self._entries[query] = dataclasses.replace(entry, speculative=False)

    def drop(self, query: Hashable) -> bool:
        """Coherence removal: delete one entry because a write made it
        stale.  Counted as an invalidation, not an eviction."""
        entry = self._entries.pop(query, None)
        if entry is None:
            return False
        size = self._size_of(entry)
        self._used -= size
        self.invalidations += 1
        self._count("cache.invalidations")
        self._count("cache.used", -size)
        return True

    def replace(self, query: Hashable, entry: CachedResult) -> None:
        """Coherence patch: swap an entry's value in place, preserving
        its position in the eviction order (a patched entry is not a new
        arrival).  Counted as an invalidation."""
        previous = self._entries.get(query)
        if previous is None:
            raise KeyError(query)
        if entry.speculative != previous.speculative:
            # A coherence patch rewrites the value, not the tier.
            entry = dataclasses.replace(entry, speculative=previous.speculative)
        delta = self._size_of(entry) - self._size_of(previous)
        self._entries[query] = entry  # same key: OrderedDict keeps position
        self._used += delta
        self.invalidations += 1
        self._count("cache.invalidations")
        self._count("cache.used", delta)

    def matching_keys(self, predicate) -> list[Hashable]:
        """Keys whose entry a coherence sweep must touch — materialized
        so the caller can drop/replace while iterating."""
        return [key for key in self._entries if predicate(key)]

    def _evict_key(self, query: Hashable) -> None:
        previous = self._entries.pop(query, None)
        if previous is not None:
            size = self._size_of(previous)
            self._used -= size
            self._count("cache.used", -size)

    def _evict_oldest(self, *, speculative_only: bool = False) -> None:
        # Speculative entries are always the preferred victims; demand
        # inserts fall back to the oldest demand entry, speculative
        # inserts never do (admission control in :meth:`put` guarantees
        # a speculative victim exists when this is reached).
        victim = next(
            (key for key, held in self._entries.items() if held.speculative), None
        )
        if victim is None:
            if speculative_only:
                raise RuntimeError("no speculative entry to evict")
            victim = next(iter(self._entries))
        evicted = self._entries.pop(victim)
        size = self._size_of(evicted)
        self._used -= size
        self.evictions += 1
        self._count("cache.evictions")
        self._count("cache.used", -size)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query: Hashable) -> bool:
        return query in self._entries

    @property
    def used(self) -> int:
        """Capacity units currently occupied."""
        return self._used

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FifoQueryCache(QueryCache):
    """The paper's policy: evict in insertion order, hits do not refresh."""

    def _touch(self, key: Hashable) -> None:
        return None


class LruQueryCache(QueryCache):
    """Least-recently-used variant, for the cache-policy ablation."""

    def _touch(self, key: Hashable) -> None:
        self._entries.move_to_end(key)


def optimum_capacities(
    total_budget: int,
    weights: Sequence[float],
    *,
    sizing: CacheSizing = CacheSizing.SQRT_LOAD,
) -> list[int]:
    """Split ``total_budget`` cache units across nodes with the given
    demand ``weights``.

    ``SQRT_LOAD`` implements the optimum-cache-size rule of Sarshar &
    Roychowdhury (PAPERS.md): with miss cost proportional to demand and
    diminishing returns per slot, the budget split that minimizes total
    miss cost allocates each node a share proportional to the *square
    root* of its demand (equal marginal benefit).  Weights are smoothed
    by +1 so a currently-empty node (which may still root queries) keeps
    a nonzero allocation.  ``UNIFORM`` is the equal split ablation.

    Shares are rounded by largest remainder so the result sums exactly
    to ``total_budget`` (when positive and any node exists).
    """
    if total_budget < 0:
        raise ValueError(f"total_budget must be non-negative, got {total_budget}")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    count = len(weights)
    if count == 0:
        return []
    sizing = sizing if isinstance(sizing, CacheSizing) else CacheSizing(sizing)
    if sizing is CacheSizing.UNIFORM:
        scaled = [1.0] * count
    else:
        scaled = [math.sqrt(weight + 1.0) for weight in weights]
    scale = sum(scaled)
    shares = [total_budget * value / scale for value in scaled]
    floors = [int(share) for share in shares]
    shortfall = total_budget - sum(floors)
    # Largest fractional remainders get the leftover units; ties broken
    # by node position for determinism.
    order = sorted(range(count), key=lambda i: (floors[i] - shares[i], i))
    for i in order[:shortfall]:
        floors[i] += 1
    return floors
