"""Per-node query-result caches (Section 4, third experiment).

The paper installs a cache at each node, managed FIFO, with capacity
``α × |O| / 2**r`` — a fraction α of the average index size per node.
Because every query for keyword set K roots at the same node
``F_h(K)``, caching complete result sets at the root lets repeated
popular queries (the bulk of real streams) be answered by contacting
that single node.

A cache entry maps a query keyword set to the ordered results collected
by a previous search, together with a completeness flag: a search that
exhausted the subhypercube caches a *complete* set, usable at any
requested threshold; a threshold-limited search caches a partial set,
usable only when it already covers the new request.  Capacity is
accounted in object references, the same unit as index-table size, so α
is directly comparable to the paper's.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from collections.abc import Hashable
from dataclasses import dataclass

__all__ = ["CachedResult", "FifoQueryCache", "LruQueryCache", "QueryCache"]


@dataclass(frozen=True)
class CachedResult:
    """Results of one earlier query: (object_id, keyword_set) in the
    order the search returned them, plus completeness."""

    results: tuple[tuple[str, frozenset[str]], ...]
    complete: bool

    @property
    def size(self) -> int:
        """Cache-capacity units consumed (object references)."""
        return len(self.results)

    def satisfies(self, threshold: int | None) -> bool:
        """Can this entry answer a request for ``threshold`` results
        (None = all)?"""
        if self.complete:
            return True
        return threshold is not None and len(self.results) >= threshold


class QueryCache(abc.ABC):
    """Bounded cache of query results with a pluggable eviction policy.

    ``unit`` selects how capacity is accounted:

    * ``"entries"`` (default) — one unit per cached query, mirroring the
      index table's ⟨K, O⟩ entry granularity.  This is the reading under
      which the paper's Figure 9 is reproducible: a root node needs to
      retain one entry per distinct query it roots, and the number of
      distinct queries per root is small even for huge streams.
    * ``"references"`` — one unit per cached object reference, for the
      stricter-accounting ablation.
    """

    def __init__(self, capacity: int, *, unit: str = "entries"):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if unit not in ("entries", "references"):
            raise ValueError(f"unit must be 'entries' or 'references', got {unit!r}")
        self.capacity = capacity
        self.unit = unit
        self._entries: OrderedDict[Hashable, CachedResult] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def _size_of(self, entry: CachedResult) -> int:
        return 1 if self.unit == "entries" else entry.size

    # -- policy hook ------------------------------------------------------

    @abc.abstractmethod
    def _touch(self, key: Hashable) -> None:
        """Update recency bookkeeping after a hit on ``key``."""

    # -- operations ---------------------------------------------------------

    def get(self, query: Hashable, threshold: int | None) -> CachedResult | None:
        """Return a cached result able to answer ``threshold``, or None."""
        entry = self._entries.get(query)
        if entry is None or not entry.satisfies(threshold):
            self.misses += 1
            return None
        self.hits += 1
        self._touch(query)
        return entry

    def put(
        self,
        query: Hashable,
        results: tuple[tuple[str, frozenset[str]], ...],
        *,
        complete: bool,
    ) -> bool:
        """Insert (or refresh) an entry, evicting in policy order until it
        fits.  Returns False when the entry alone exceeds capacity — it
        is then not cached at all, and any *existing* entry for the same
        query (smaller, possibly complete) is left intact rather than
        evicted in favour of nothing."""
        entry = CachedResult(results, complete)
        size = self._size_of(entry)
        if size > self.capacity:
            return False
        self._evict_key(query)
        while self._used + size > self.capacity and self._entries:
            self._evict_oldest()
        self._entries[query] = entry
        self._used += size
        return True

    def _evict_key(self, query: Hashable) -> None:
        previous = self._entries.pop(query, None)
        if previous is not None:
            self._used -= self._size_of(previous)

    def _evict_oldest(self) -> None:
        _, evicted = self._entries.popitem(last=False)
        self._used -= self._size_of(evicted)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query: Hashable) -> bool:
        return query in self._entries

    @property
    def used(self) -> int:
        """Capacity units currently occupied."""
        return self._used

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FifoQueryCache(QueryCache):
    """The paper's policy: evict in insertion order, hits do not refresh."""

    def _touch(self, key: Hashable) -> None:
        return None


class LruQueryCache(QueryCache):
    """Least-recently-used variant, for the cache-policy ablation."""

    def _touch(self, key: Hashable) -> None:
        self._entries.move_to_end(key)
