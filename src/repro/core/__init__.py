"""The hypercube keyword index and search scheme (Section 3).

* :mod:`repro.core.keywords` — the hash ``h`` and the mapping
  ``F_h : 2^W → V`` from keyword sets to hypercube nodes.
* :mod:`repro.core.mapping` — the hash ``g`` mapping logical hypercube
  nodes to physical DHT nodes (Section 3.2).
* :mod:`repro.core.index` — per-node index shards and the Insert /
  Delete / Pin operations (Section 3.3).
* :mod:`repro.core.search` — the T_QUERY superset-search protocol:
  top-down, bottom-up, and level-parallel traversals.
* :mod:`repro.core.cumulative` — cumulative search sessions (the root
  keeps the frontier queue between requests).
* :mod:`repro.core.cache` — per-node query-result caches (Section 4,
  third experiment).
* :mod:`repro.core.decomposed` — decomposed multi-hypercube indexes
  (Section 3.4, last remark).
* :mod:`repro.core.replication` — k-way index replication through
  secondary hypercubes (Section 3.4).
* :mod:`repro.core.sampling` — per-category sampling and query
  refinement suggestions (Section 1's ranking sketch).
* :mod:`repro.core.ranking` — order/group/interleave results by
  specificity and category (Section 1).
* :mod:`repro.core.expansion` — application-side query expansion from
  samples and user preferences (Section 3.4's hot-spot mitigation).
* :mod:`repro.core.service` — the high-level façade tying a DHT, the
  mapping, and the index together.
"""

from repro.core.cache import FifoQueryCache, LruQueryCache, QueryCache
from repro.core.cumulative import CumulativeSearchSession
from repro.core.decomposed import DecomposedIndex
from repro.core.index import HypercubeIndex, IndexEntry, IndexShard
from repro.core.keywords import KeywordHasher, KeywordSetMapper, normalize_keyword
from repro.core.expansion import ExpandedQuery, QueryExpander
from repro.core.mapping import HypercubeMapping
from repro.core.ranking import RankOrder, group_by_category, interleave_categories, rank_results
from repro.core.replication import ReplicatedHypercubeIndex, ReplicatedSuperSetSearch
from repro.core.sampling import Refinement, SampledSearch, SampleResult, suggest_refinements
from repro.core.search import NodeVisit, SearchResult, SuperSetSearch, TraversalOrder
from repro.core.service import KeywordSearchService

__all__ = [
    "CumulativeSearchSession",
    "DecomposedIndex",
    "FifoQueryCache",
    "HypercubeIndex",
    "HypercubeMapping",
    "IndexEntry",
    "IndexShard",
    "KeywordHasher",
    "KeywordSearchService",
    "KeywordSetMapper",
    "LruQueryCache",
    "ExpandedQuery",
    "NodeVisit",
    "QueryCache",
    "QueryExpander",
    "RankOrder",
    "Refinement",
    "ReplicatedHypercubeIndex",
    "ReplicatedSuperSetSearch",
    "SampleResult",
    "SampledSearch",
    "SearchResult",
    "SuperSetSearch",
    "TraversalOrder",
    "group_by_category",
    "interleave_categories",
    "normalize_keyword",
    "rank_results",
    "suggest_refinements",
]
