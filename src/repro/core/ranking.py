"""Result ranking (the ordering sketch of Section 1).

The index scheme "allows upper level applications to retrieve objects
in the order they wish": by fewest extra keywords (general first), by
most (specific first), or grouped by extra-keyword category with
round-robin interleaving.  These pure functions operate on the
:class:`~repro.core.search.FoundObject` lists a search returns; no
network traffic, no global knowledge.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from collections.abc import Sequence

from repro.core.search import FoundObject

__all__ = ["RankOrder", "group_by_category", "interleave_categories", "rank_results"]


class RankOrder(enum.Enum):
    """How to order matched objects relative to the query."""

    GENERAL_FIRST = "general_first"
    SPECIFIC_FIRST = "specific_first"


def rank_results(
    results: Sequence[FoundObject],
    query: frozenset[str],
    order: RankOrder = RankOrder.GENERAL_FIRST,
) -> list[FoundObject]:
    """Stable sort by specificity (number of extra keywords).

    Ties keep the search's arrival order, which already reflects tree
    depth, so within a specificity class the root-ward objects stay
    first.
    """
    reverse = order is RankOrder.SPECIFIC_FIRST
    return sorted(results, key=lambda found: found.specificity(query), reverse=reverse)


def group_by_category(
    results: Sequence[FoundObject], query: frozenset[str]
) -> "OrderedDict[frozenset[str], list[FoundObject]]":
    """Group results by their extra-keyword set (the paper's categories:
    K plus σ1, K plus σ2, K plus σ1 and σ2, ...), smallest categories
    first, then lexicographically."""
    groups: dict[frozenset[str], list[FoundObject]] = {}
    for found in results:
        groups.setdefault(found.extra_keywords(query), []).append(found)
    ordered = OrderedDict()
    for extra in sorted(groups, key=lambda e: (len(e), sorted(e))):
        ordered[extra] = groups[extra]
    return ordered


def interleave_categories(
    results: Sequence[FoundObject],
    query: frozenset[str],
    *,
    limit: int | None = None,
) -> list[FoundObject]:
    """Round-robin over categories — one object per category per pass —
    so a short result page shows the *variety* of matches rather than
    one dominant category.  ``limit`` caps the output length."""
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0 or None, got {limit}")
    if limit == 0:
        return []
    groups = list(group_by_category(results, query).values())
    interleaved: list[FoundObject] = []
    depth = 0
    while True:
        emitted = False
        for group in groups:
            if depth < len(group):
                interleaved.append(group[depth])
                emitted = True
                if limit is not None and len(interleaved) >= limit:
                    return interleaved
        if not emitted:
            return interleaved
        depth += 1
