"""Keyword hashing and the mapping F_h (Section 3.3).

``h : W → {0, ..., r-1}`` uniformly hashes each keyword to a hypercube
dimension; ``F_h(K)`` is the node whose one bits are exactly
``{h(w) | w ∈ K}``.  The node ``F_h(K)`` is *responsible* for K, and an
object σ with keyword set ``K_σ`` is indexed at ``F_h(K_σ)``.

Keywords are normalized (NFKC, casefold, stripped) before hashing so
that "MP3 " and "mp3" resolve to the same dimension on every peer.
"""

from __future__ import annotations

import functools
import unicodedata
from collections.abc import Iterable

from repro.hypercube.hypercube import Hypercube
from repro.util.hashing import stable_hash

__all__ = [
    "KeywordHasher",
    "KeywordSetMapper",
    "normalize_keyword",
    "normalize_keywords",
    "normalize_prefix",
]


def _canonical_form(text: str) -> str:
    """The shared canonicalization pipeline: NFKC, casefold, drop
    format characters (category Cf — zero-width space/joiners, BOM —
    which NFKC leaves in place), strip.  Keywords and prefixes must run
    the exact same pipeline or prefix matching and exact matching
    disagree on canonical forms."""
    folded = unicodedata.normalize("NFKC", text).casefold()
    if not folded.isascii():
        folded = "".join(ch for ch in folded if unicodedata.category(ch) != "Cf")
    return folded.strip()


@functools.lru_cache(maxsize=1 << 20)
def normalize_keyword(keyword: str) -> str:
    """Canonicalize one keyword: NFKC normalization, casefold, format-
    character removal, strip.

    Cached — experiments normalize the same vocabulary millions of
    times.

    >>> normalize_keyword("  MP3 ")
    'mp3'
    """
    if not isinstance(keyword, str):
        raise TypeError(f"keyword must be a string, got {type(keyword).__name__}")
    canonical = _canonical_form(keyword)
    if not canonical:
        raise ValueError(f"keyword {keyword!r} is empty after normalization")
    return canonical


def normalize_prefix(prefix: str) -> str:
    """Canonicalize a keyword prefix with the same pipeline as
    :func:`normalize_keyword`, so a directory lookup for ``"Ja"``
    matches every keyword whose canonical form starts with ``"ja"``.

    >>> normalize_prefix(" Ja")
    'ja'
    """
    if not isinstance(prefix, str):
        raise TypeError(f"prefix must be a string, got {type(prefix).__name__}")
    canonical = _canonical_form(prefix)
    if not canonical:
        raise ValueError(f"prefix {prefix!r} is empty after normalization")
    return canonical


@functools.lru_cache(maxsize=1 << 20)
def _raw_keyword_hash(salt: str, keyword: str) -> int:
    """The full 160-bit digest of a normalized keyword under one salt.

    Shared across :class:`KeywordHasher` instances so sweeping the
    dimension r (as the load experiments do) hashes each vocabulary
    word only once."""
    return stable_hash(keyword, salt=f"keyword.h/{salt}", bits=160)


def normalize_keywords(keywords: Iterable[str]) -> frozenset[str]:
    """Canonicalize a keyword set.

    >>> sorted(normalize_keywords(["Jazz", "  mp3"]))
    ['jazz', 'mp3']
    """
    result = frozenset(normalize_keyword(k) for k in keywords)
    if not result:
        raise ValueError("keyword set must not be empty")
    return result


class KeywordHasher:
    """The uniform hash ``h : W → {0, ..., r-1}``.

    ``salt`` selects one member of a hash family, letting experiments
    average over independent choices of ``h``.
    """

    def __init__(self, dimension: int, *, salt: str = "h"):
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self.salt = salt

    def __call__(self, keyword: str) -> int:
        """h(keyword) — the dimension assigned to ``keyword``."""
        return _raw_keyword_hash(self.salt, normalize_keyword(keyword)) % self.dimension

    def dimensions_of(self, keywords: Iterable[str]) -> dict[str, int]:
        """Map each (normalized) keyword to its dimension."""
        return {normalized: self(normalized) for normalized in normalize_keywords(keywords)}


class KeywordSetMapper:
    """The mapping ``F_h : 2^W → V`` onto hypercube nodes.

    >>> mapper = KeywordSetMapper(Hypercube(8))
    >>> node = mapper.node_for({"mp3", "jazz"})
    >>> mapper.cube.contains_node(node, mapper.node_for({"jazz"}))
    True
    """

    def __init__(self, cube: Hypercube, hasher: KeywordHasher | None = None):
        if hasher is not None and hasher.dimension != cube.dimension:
            raise ValueError(
                f"hasher dimension {hasher.dimension} != cube dimension {cube.dimension}"
            )
        self.cube = cube
        self.hasher = hasher if hasher is not None else KeywordHasher(cube.dimension)

    def node_for(self, keywords: Iterable[str]) -> int:
        """``F_h(K)``: the hypercube node responsible for keyword set K."""
        node = 0
        for keyword in normalize_keywords(keywords):
            node |= 1 << self.hasher(keyword)
        return node

    def one_count(self, keywords: Iterable[str]) -> int:
        """|One(F_h(K))| — the number of distinct dimensions K occupies,
        the quantity Equation (1) models."""
        return self.cube.weight(self.node_for(keywords))

    def describes(self, query: Iterable[str], target: Iterable[str]) -> bool:
        """True iff ``query`` can describe ``target`` (query ⊆ target),
        the paper's describability relation on keyword sets."""
        return normalize_keywords(query) <= normalize_keywords(target)
