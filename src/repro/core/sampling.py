"""Category sampling and query refinement (Section 1's ranking sketch).

The introduction promises that the index scheme "may also sample some
objects in each category ... objects that have an extra keyword σ1, an
extra keyword σ2, ..., two extra keywords σ1, σ2, ...; and then return
these sample objects along with their extra keyword(s) to help users
refine their queries.  Note that no global knowledge is required."

:class:`SampledSearch` implements that: walk the subhypercube top-down
(so shallow, general categories fill first), group results by their
*extra-keyword set*, keep a bounded number of samples per category, and
stop once enough categories are filled.  :func:`suggest_refinements`
turns a sample into ranked single-keyword refinements, scored by how
often the keyword appears and how much the refined query would shrink
the search space (Lemma 3.3's subcube reduction) — all computed from
the returned samples, with no global statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords
from repro.core.search import FoundObject, SuperSetSearch

__all__ = ["Refinement", "SampleResult", "SampledSearch", "suggest_refinements"]


@dataclass(frozen=True)
class SampleResult:
    """Samples grouped by extra-keyword category."""

    query: frozenset[str]
    categories: dict[frozenset[str], tuple[FoundObject, ...]]
    visits: int
    exhaustive: bool

    @property
    def num_categories(self) -> int:
        return len(self.categories)

    def samples(self) -> list[FoundObject]:
        """All samples, categories interleaved in discovery order."""
        return [found for group in self.categories.values() for found in group]

    def general_first(self) -> list[frozenset[str]]:
        """Category keys ordered by ascending extra-keyword count."""
        return sorted(self.categories, key=lambda extra: (len(extra), sorted(extra)))


@dataclass(frozen=True)
class Refinement:
    """One suggested query refinement."""

    keyword: str
    refined_query: frozenset[str]
    support: int
    subcube_reduction: float

    @property
    def score(self) -> float:
        """Support weighted by how much the search space shrinks."""
        return self.support * self.subcube_reduction


class SampledSearch:
    """Collect bounded per-category samples from a superset search."""

    def __init__(self, index: HypercubeIndex, *, contact_mode: str = "direct"):
        self.index = index
        self._searcher = SuperSetSearch(index, contact_mode=contact_mode)

    def run(
        self,
        keywords: Iterable[str],
        *,
        per_category: int = 2,
        max_categories: int = 16,
        max_visits: int | None = None,
        origin: int | None = None,
    ) -> SampleResult:
        """Sample the matching set of ``keywords``.

        Walks the induced subhypercube breadth-first (the T_QUERY order)
        and stops early once ``max_categories`` categories each hold
        ``per_category`` samples, or after ``max_visits`` nodes.
        """
        if per_category < 1:
            raise ValueError(f"per_category must be >= 1, got {per_category}")
        if max_categories < 1:
            raise ValueError(f"max_categories must be >= 1, got {max_categories}")
        query = normalize_keywords(keywords)
        index = self.index
        dolr = index.dolr
        origin = dolr.any_address() if origin is None else origin
        root = index.mapper.node_for(query)
        route = index.mapping.route_to(root, origin=origin)
        dimension = index.cube.dimension

        categories: dict[frozenset[str], list[FoundObject]] = {}
        visits = 0

        def full() -> bool:
            return len(categories) >= max_categories and all(
                len(group) >= per_category for group in categories.values()
            )

        def absorb(found: list[FoundObject]) -> None:
            for sample in found:
                extra = sample.keywords - query
                group = categories.get(extra)
                if group is None:
                    if len(categories) >= max_categories:
                        continue
                    group = categories[extra] = []
                if len(group) < per_category:
                    group.append(sample)

        queue: deque[tuple[int, int]] = deque([(root, dimension)])
        exhaustive = True
        while queue:
            if full() or (max_visits is not None and visits >= max_visits):
                exhaustive = False
                break
            node, d = queue.popleft()
            physical = (
                route.owner if node == root else index.mapping.physical_owner(node)
            )
            sender = origin if node == root else route.owner
            found, _, _ = self._searcher._scan_rpc(
                sender, physical, index.namespace, node, query, None
            )
            visits += 1
            absorb(found)
            for i in range(dimension - 1, -1, -1):
                if i < d and not (node >> i) & 1:
                    queue.append((node | (1 << i), i))
        return SampleResult(
            query=query,
            categories={key: tuple(group) for key, group in categories.items()},
            visits=visits,
            exhaustive=exhaustive,
        )


def suggest_refinements(
    sample: SampleResult, index: HypercubeIndex, *, limit: int = 5
) -> list[Refinement]:
    """Rank single-keyword refinements of the sampled query.

    Support = number of sampled objects carrying the keyword; subcube
    reduction = 1 - |H_r(F_h(K ∪ {w}))| / |H_r(F_h(K))| (0 when the new
    keyword hashes into a dimension the query already occupies).
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    cube = index.cube
    base_node = index.mapper.node_for(sample.query) if sample.query else 0
    base_size = cube.subcube_size(base_node) if sample.query else cube.num_nodes
    support: dict[str, int] = {}
    for found in sample.samples():
        for keyword in found.keywords - sample.query:
            support[keyword] = support.get(keyword, 0) + 1
    suggestions = []
    for keyword, count in support.items():
        refined = sample.query | {keyword}
        refined_size = cube.subcube_size(index.mapper.node_for(refined))
        reduction = 1.0 - refined_size / base_size
        suggestions.append(
            Refinement(
                keyword=keyword,
                refined_query=frozenset(refined),
                support=count,
                subcube_reduction=reduction,
            )
        )
    suggestions.sort(key=lambda r: (-r.score, -r.support, r.keyword))
    return suggestions[:limit]
