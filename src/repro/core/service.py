"""High-level façade: the keyword/attribute search layer of Figure 2.

:class:`KeywordSearchService` wires the four-layer architecture the
paper draws — application / keyword-search layer / P2P overlay /
physical network — into one object: describe the stack with a
:class:`~repro.core.config.ServiceConfig` (which DHT, hypercube
dimension, caching, resilience policy) and publish / search objects
through a small, stable API.  Examples and downstream applications
should only need this module.

The pre-1.1 keyword form of :meth:`KeywordSearchService.create`
(``dht="chord"``, ``cache_policy="fifo"`` …) still works but emits a
:class:`DeprecationWarning`; new code should build a ``ServiceConfig``.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.cache import FifoQueryCache, LruQueryCache
from repro.core.config import CachePolicy, ContactMode, DhtKind, SearchOptions, ServiceConfig
from repro.core.cumulative import CumulativeSearchSession
from repro.core.index import HypercubeIndex, PinResult
from repro.core.keywords import normalize_keywords
from repro.core.replication import ReplicatedHypercubeIndex, ReplicatedSuperSetSearch
from repro.core.search import (
    PrefixSearch,
    PrefixSearchResult,
    SearchResult,
    SuperSetSearch,
    TraversalOrder,
)
from repro.dht.chord import ChordNetwork
from repro.dht.dolr import DolrNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork
from repro.hypercube.hypercube import Hypercube
from repro.net.qos import qos_scope
from repro.net.transport import Transport
from repro.prefix.directory import KeywordDirectory
from repro.store.backend import StoreBackend
from repro.util.rng import make_rng, spawn_rng

__all__ = ["KeywordSearchService", "PublishedObject"]

_DHT_BUILDERS = {
    DhtKind.CHORD: ChordNetwork.build,
    DhtKind.KADEMLIA: KademliaNetwork.build,
    DhtKind.PASTRY: PastryNetwork.build,
}

_CACHE_FACTORIES = {
    CachePolicy.FIFO: FifoQueryCache,
    CachePolicy.LRU: LruQueryCache,
}


def _as_prefix(query) -> str:
    """Accept a prefix query as a bare string or a one-element iterable
    (the shape ``Client.search`` naturally passes through)."""
    if isinstance(query, str):
        return query
    items = list(query)
    if len(items) != 1 or not isinstance(items[0], str):
        raise ValueError(
            f"a prefix query takes exactly one prefix string, got {items!r}"
        )
    return items[0]


@dataclass(frozen=True)
class PublishedObject:
    """Record of one published object, as the service tracks it."""

    object_id: str
    keywords: frozenset[str]
    holder: int


class KeywordSearchService:
    """The keyword/attribute search layer, end to end.

    >>> from repro.core.config import ServiceConfig
    >>> service = KeywordSearchService.create(
    ...     ServiceConfig(dimension=6, num_dht_nodes=16, seed=3)
    ... )
    >>> record = service.publish("paper.pdf", {"dht", "search", "p2p"})
    >>> service.pin_search({"dht", "search", "p2p"}).results()
    ('paper.pdf',)
    >>> service.superset_search({"dht"}).results()
    ('paper.pdf',)
    """

    def __init__(
        self,
        index: HypercubeIndex,
        *,
        contact_mode: ContactMode | str = ContactMode.DIRECT,
        config: ServiceConfig | None = None,
        replicated: ReplicatedHypercubeIndex | None = None,
    ):
        self.index = index
        self.dolr = index.dolr
        self.config = config
        # k-way replication (config.index_replicas > 1): writes fan out
        # to every replica and the searcher fails over per logical node.
        # None for the classic single-index stack.
        self.replicated = replicated
        # address -> durable backend; empty unless built with a
        # store_factory (see create()).
        self.stores: dict[int, StoreBackend] = {}
        contact_mode = ContactMode(contact_mode) if isinstance(contact_mode, str) else contact_mode
        cooperative = config.cooperative_cache if config is not None else False
        if replicated is not None:
            self.searcher: SuperSetSearch = ReplicatedSuperSetSearch(
                replicated, contact_mode=contact_mode.value, cooperative=cooperative
            )
        else:
            self.searcher = SuperSetSearch(
                index, contact_mode=contact_mode.value, cooperative=cooperative
            )
        self._published: dict[tuple[str, int], PublishedObject] = {}
        # The distributed keyword directory (repro.prefix), when the
        # config asked for one; attach_directory() wires it and the
        # prefix planner in.
        self.directory = None
        self.prefix_searcher: PrefixSearch | None = None

    def attach_directory(self, directory) -> None:
        """Wire a :class:`~repro.prefix.directory.KeywordDirectory` in:
        publishes/unpublishes maintain it and prefix queries run over
        it."""
        self.directory = directory
        self.prefix_searcher = PrefixSearch(directory, self.searcher)

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        config: ServiceConfig | None = None,
        *,
        network: Transport | None = None,
        store_factory=None,
        **legacy,
    ) -> "KeywordSearchService":
        """Build the full stack: network transport, DHT, hypercube index.

        Pass a :class:`~repro.core.config.ServiceConfig`; the pre-1.1
        keyword form (``dimension=…, num_dht_nodes=…, dht="chord"`` …)
        is still accepted but deprecated.  ``network`` injects a shared
        :class:`~repro.net.transport.Transport` — a
        :class:`~repro.sim.network.SimulatedNetwork` so several stacks
        can coexist on one medium, or an
        :class:`~repro.net.aio.AsyncioTransport` to run the same stack
        over real TCP sockets — and composes with either form.

        ``store_factory(address)`` returns the durable
        :class:`~repro.store.backend.StoreBackend` for one node (e.g. a
        :class:`~repro.store.FileStore` under ``--data-dir``); each
        node's reference table and index shard then boot from recovered
        state and record every mutation.  None (the default) keeps all
        state in memory.
        """
        if config is None:
            warnings.warn(
                "keyword-argument KeywordSearchService.create(...) is deprecated; "
                "pass a repro.core.config.ServiceConfig instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServiceConfig.from_legacy(**legacy)
        elif legacy:
            raise TypeError(
                "pass either a ServiceConfig or legacy keyword arguments, "
                f"not both: {sorted(legacy)}"
            )
        rng = make_rng(config.seed)
        dolr: DolrNetwork = _DHT_BUILDERS[config.dht](
            bits=config.dht_bits, num_nodes=config.num_dht_nodes, seed=rng, network=network
        )
        if config.resilience is not None or config.breaker is not None:
            dolr.configure_resilience(
                config.resilience,
                breaker=config.breaker,
                rng=spawn_rng(rng, "resilience"),
            )
        stores: dict[int, StoreBackend] = {}
        if store_factory is not None:
            # One backend per node, shared by the node's reference table
            # and its index shard (attach first so recovery happens once,
            # against the same instance the shard factory receives).
            for address in dolr.addresses():
                store = store_factory(address)
                if getattr(store, "metrics", None) is None:
                    store.metrics = dolr.network.metrics
                dolr.node(address).attach_store(store)
                stores[address] = store
        if config.index_replicas > 1:
            replicated = ReplicatedHypercubeIndex(
                Hypercube(config.dimension),
                dolr,
                replicas=config.index_replicas,
                cache_capacity=config.cache_capacity,
                cache_factory=_CACHE_FACTORIES[config.cache_policy],
                stores=stores,
            )
            service = cls(
                replicated.primary,
                contact_mode=config.contact_mode,
                config=config,
                replicated=replicated,
            )
            service.stores = stores
            return cls._finish_create(service)
        index = HypercubeIndex(
            Hypercube(config.dimension),
            dolr,
            cache_capacity=config.cache_capacity,
            cache_factory=_CACHE_FACTORIES[config.cache_policy],
            stores=stores,
        )
        service = cls(index, contact_mode=config.contact_mode, config=config)
        service.stores = stores
        return cls._finish_create(service)

    @classmethod
    def _finish_create(cls, service: "KeywordSearchService") -> "KeywordSearchService":
        config = service.config
        if config is not None and config.prefix_directory:
            service.attach_directory(
                KeywordDirectory(service.dolr, replicas=config.index_replicas)
            )
        return service

    # -- publishing -------------------------------------------------------

    def publish(
        self, object_id: str, keywords: Iterable[str], *, holder: int | None = None
    ) -> PublishedObject:
        """Share an object: register the replica and index its keyword set."""
        normalized = normalize_keywords(keywords)
        holder = self.dolr.any_address() if holder is None else holder
        existing = self._published.get((object_id, holder))
        if existing is not None:
            raise ValueError(f"{object_id!r} already published by node {holder}")
        if self.replicated is not None:
            first_copy = self.replicated.insert(object_id, normalized, holder) > 0
        else:
            first_copy = self.index.insert(object_id, normalized, holder)
        if first_copy and self.directory is not None:
            # Directory coherence rides the write path: the *first* copy
            # of an object registers its keywords (per-object records,
            # so later copies and repair re-pushes are idempotent).
            for keyword in sorted(normalized):
                self.directory.add_keyword(keyword, object_id, origin=holder)
        record = PublishedObject(object_id, normalized, holder)
        self._published[(object_id, holder)] = record
        return record

    def unpublish(self, object_id: str, *, holder: int) -> None:
        """Withdraw one replica of an object."""
        record = self._published.pop((object_id, holder), None)
        if record is None:
            raise KeyError(f"{object_id!r} was not published by node {holder}")
        if self.replicated is not None:
            last_copy = self.replicated.delete(object_id, record.keywords, holder) > 0
        else:
            last_copy = self.index.delete(object_id, record.keywords, holder)
        if last_copy and self.directory is not None:
            for keyword in sorted(record.keywords):
                self.directory.remove_keyword(keyword, object_id, origin=holder)

    def published_count(self) -> int:
        return len(self._published)

    # -- search ------------------------------------------------------------

    def pin_search(self, keywords: Iterable[str], *, origin: int | None = None) -> PinResult:
        """Objects whose keyword set is *exactly* K (Section 2.2)."""
        if self.replicated is not None:
            return self.replicated.pin_search(keywords, origin=origin)
        return self.index.pin_search(keywords, origin=origin)

    def superset_search(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool | None = None,
        trace: bool = False,
        options: SearchOptions | None = None,
    ) -> SearchResult:
        """min(t, |O_K|) objects describable by K (Section 2.2).

        Per-query knobs may be given individually or bundled in a
        :class:`~repro.core.config.SearchOptions` (which wins when both
        are supplied).  ``options.deadline`` / ``options.priority``
        establish the query's ambient QoS scope (see
        :mod:`repro.net.qos`): the deadline bounds every retry budget
        along the walk and the priority rides on every request frame.
        """
        priority = 0
        deadline: float | None = None
        if options is not None:
            threshold = options.threshold
            origin = options.origin
            order = options.order
            use_cache = options.use_cache
            trace = options.trace
            priority = options.priority
            deadline = options.deadline
        if use_cache is None:
            use_cache = self.index.cache_capacity > 0
        if priority == 0 and deadline is None:
            # No QoS requested: skip the scope entirely, so the default
            # path stays byte-identical to pre-QoS behaviour.
            return self.searcher.run(
                keywords, threshold, origin=origin, order=order, use_cache=use_cache, trace=trace
            )
        deadline_at = None if deadline is None else self.network.now() + deadline
        with qos_scope(priority=priority, deadline_at=deadline_at):
            return self.searcher.run(
                keywords, threshold, origin=origin, order=order, use_cache=use_cache, trace=trace
            )

    def prefix_search(
        self,
        prefix: str,
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool | None = None,
        trace: bool = False,
        max_expansions: int | None = None,
        options: SearchOptions | None = None,
    ) -> PrefixSearchResult:
        """Objects carrying any keyword that extends ``prefix``
        (docs/protocol.md §17).

        Needs ``ServiceConfig(prefix_directory=True)``.  Knobs mirror
        :meth:`superset_search`; ``options`` wins when supplied, and its
        ``deadline``/``priority`` establish one QoS scope shared by the
        directory resolution and every keyword expansion.
        """
        if self.prefix_searcher is None:
            raise RuntimeError(
                "prefix search requires a keyword directory — build the service "
                "with ServiceConfig(prefix_directory=True)"
            )
        priority = 0
        deadline: float | None = None
        if options is not None:
            threshold = options.threshold
            origin = options.origin
            order = options.order
            use_cache = options.use_cache
            trace = options.trace
            priority = options.priority
            deadline = options.deadline
            max_expansions = options.max_expansions
        if use_cache is None:
            use_cache = self.index.cache_capacity > 0
        if priority == 0 and deadline is None:
            return self.prefix_searcher.run(
                prefix,
                threshold,
                origin=origin,
                order=order,
                use_cache=use_cache,
                trace=trace,
                max_expansions=max_expansions,
            )
        deadline_at = None if deadline is None else self.network.now() + deadline
        with qos_scope(priority=priority, deadline_at=deadline_at):
            return self.prefix_searcher.run(
                prefix,
                threshold,
                origin=origin,
                order=order,
                use_cache=use_cache,
                trace=trace,
                max_expansions=max_expansions,
            )

    def search(
        self, keywords: Iterable[str], options: SearchOptions | None = None
    ) -> SearchResult | PrefixSearchResult:
        """The options-object form of :meth:`superset_search` — or, with
        ``options.prefix`` set, of :meth:`prefix_search` (``keywords``
        is then a prefix string, or an iterable holding exactly one)."""
        options = options or SearchOptions()
        if options.prefix:
            return self.prefix_search(_as_prefix(keywords), options=options)
        return self.superset_search(keywords, options=options)

    def client(self):
        """This service behind the unified :class:`~repro.client.Client`
        API (borrowing: closing the client does not close the service)."""
        from repro.client import ServiceClient

        return ServiceClient(self)

    def cumulative_search(
        self, keywords: Iterable[str], *, origin: int | None = None
    ) -> CumulativeSearchSession:
        """A browse-style session over a large matching set."""
        return CumulativeSearchSession(self.index, keywords, origin=origin)

    def read(self, object_id: str, *, origin: int | None = None) -> list[int]:
        """The DOLR Read: replica holders of an object."""
        return self.dolr.read(object_id, origin=origin)

    # -- introspection -------------------------------------------------------

    @property
    def cube(self) -> Hypercube:
        return self.index.cube

    @property
    def indexes(self) -> list[HypercubeIndex]:
        """Every index this service maintains: the replicas when
        replication is on, else just the one index.  The membership
        layer iterates this to rebalance/evacuate/repair all of them."""
        if self.replicated is not None:
            return list(self.replicated.indexes)
        return [self.index]

    @property
    def network(self) -> Transport:
        return self.dolr.network

    def messages_sent(self) -> int:
        return self.network.metrics.counter("network.messages")

    def resilience_metrics(self) -> dict[str, int]:
        """The retry/deadline/breaker counters accumulated so far."""
        return {
            name: value
            for name, value in sorted(self.network.metrics.counters().items())
            if name.startswith(("rpc.", "breaker.", "search.degraded", "search.surrogate"))
        }

    def metrics_snapshot(self):
        """A point-in-time :class:`~repro.obs.export.MetricsSnapshot` of
        every counter and sample series (diff two with ``.delta()``)."""
        return self.network.metrics.snapshot()

    def apportion_cache_capacity(self, total_budget: int) -> dict[int, int]:
        """Re-split one cluster-wide cache budget across physical nodes
        per the config's ``cache_sizing`` rule (see
        :meth:`~repro.core.index.HypercubeIndex.apportion_cache_capacity`).
        Call after loading content so the ``SQRT_LOAD`` rule sees real
        per-node demand.  Returns the per-address capacities applied."""
        sizing = self.config.cache_sizing if self.config is not None else None
        capacities: dict[int, int] = {}
        for index in self.indexes:
            kwargs = {} if sizing is None else {"sizing": sizing}
            capacities = index.apportion_cache_capacity(total_budget, **kwargs)
        return capacities

    # -- durability ----------------------------------------------------------

    def flush_stores(self) -> None:
        """Fsync every node's WAL (a no-op for in-memory backends)."""
        for store in self.stores.values():
            store.flush()

    def close_stores(self) -> None:
        """Graceful-shutdown flush + close of every durable backend."""
        for store in self.stores.values():
            store.close()
