"""High-level façade: the keyword/attribute search layer of Figure 2.

:class:`KeywordSearchService` wires the four-layer architecture the
paper draws — application / keyword-search layer / P2P overlay /
physical network — into one object: pick a DHT (Chord, Kademlia or
Pastry), choose the hypercube dimension, and publish / search objects
through a small, stable API.  Examples and downstream applications
should only need this module.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.cache import FifoQueryCache, LruQueryCache
from repro.core.cumulative import CumulativeSearchSession
from repro.core.index import HypercubeIndex, PinResult
from repro.core.keywords import normalize_keywords
from repro.core.search import SearchResult, SuperSetSearch, TraversalOrder
from repro.dht.chord import ChordNetwork
from repro.dht.dolr import DolrNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork
from repro.hypercube.hypercube import Hypercube
from repro.sim.network import SimulatedNetwork
from repro.util.rng import make_rng

__all__ = ["KeywordSearchService", "PublishedObject"]

_DHT_BUILDERS = {
    "chord": ChordNetwork.build,
    "kademlia": KademliaNetwork.build,
    "pastry": PastryNetwork.build,
}

_CACHE_FACTORIES = {
    "fifo": FifoQueryCache,
    "lru": LruQueryCache,
}


@dataclass(frozen=True)
class PublishedObject:
    """Record of one published object, as the service tracks it."""

    object_id: str
    keywords: frozenset[str]
    holder: int


class KeywordSearchService:
    """The keyword/attribute search layer, end to end.

    >>> service = KeywordSearchService.create(dimension=6, num_dht_nodes=16, seed=3)
    >>> record = service.publish("paper.pdf", {"dht", "search", "p2p"})
    >>> service.pin_search({"dht", "search", "p2p"}).object_ids
    ('paper.pdf',)
    >>> [f.object_id for f in service.superset_search({"dht"}).objects]
    ['paper.pdf']
    """

    def __init__(self, index: HypercubeIndex, *, contact_mode: str = "direct"):
        self.index = index
        self.dolr = index.dolr
        self.searcher = SuperSetSearch(index, contact_mode=contact_mode)
        self._published: dict[tuple[str, int], PublishedObject] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        *,
        dimension: int,
        num_dht_nodes: int,
        dht: str = "chord",
        dht_bits: int = 32,
        seed: int | random.Random | None = 0,
        cache_capacity: int = 0,
        cache_policy: str = "fifo",
        contact_mode: str = "direct",
        network: SimulatedNetwork | None = None,
    ) -> "KeywordSearchService":
        """Build the full stack: simulated network, DHT, hypercube index.

        ``dimension`` is the hypercube dimension r (Section 3's central
        tuning knob); ``num_dht_nodes`` the physical overlay size;
        ``cache_capacity`` the per-logical-node query cache in entry
        units (0 disables caching).
        """
        if dht not in _DHT_BUILDERS:
            raise ValueError(f"dht must be one of {sorted(_DHT_BUILDERS)}, got {dht!r}")
        if cache_policy not in _CACHE_FACTORIES:
            raise ValueError(
                f"cache_policy must be one of {sorted(_CACHE_FACTORIES)}, got {cache_policy!r}"
            )
        rng = make_rng(seed)
        dolr: DolrNetwork = _DHT_BUILDERS[dht](
            bits=dht_bits, num_nodes=num_dht_nodes, seed=rng, network=network
        )
        index = HypercubeIndex(
            Hypercube(dimension),
            dolr,
            cache_capacity=cache_capacity,
            cache_factory=_CACHE_FACTORIES[cache_policy],
        )
        return cls(index, contact_mode=contact_mode)

    # -- publishing -------------------------------------------------------

    def publish(
        self, object_id: str, keywords: Iterable[str], *, holder: int | None = None
    ) -> PublishedObject:
        """Share an object: register the replica and index its keyword set."""
        normalized = normalize_keywords(keywords)
        holder = self.dolr.any_address() if holder is None else holder
        existing = self._published.get((object_id, holder))
        if existing is not None:
            raise ValueError(f"{object_id!r} already published by node {holder}")
        self.index.insert(object_id, normalized, holder)
        record = PublishedObject(object_id, normalized, holder)
        self._published[(object_id, holder)] = record
        return record

    def unpublish(self, object_id: str, *, holder: int) -> None:
        """Withdraw one replica of an object."""
        record = self._published.pop((object_id, holder), None)
        if record is None:
            raise KeyError(f"{object_id!r} was not published by node {holder}")
        self.index.delete(object_id, record.keywords, holder)

    def published_count(self) -> int:
        return len(self._published)

    # -- search ------------------------------------------------------------

    def pin_search(self, keywords: Iterable[str], *, origin: int | None = None) -> PinResult:
        """Objects whose keyword set is *exactly* K (Section 2.2)."""
        return self.index.pin_search(keywords, origin=origin)

    def superset_search(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool | None = None,
    ) -> SearchResult:
        """min(t, |O_K|) objects describable by K (Section 2.2)."""
        if use_cache is None:
            use_cache = self.index.cache_capacity > 0
        return self.searcher.run(
            keywords, threshold, origin=origin, order=order, use_cache=use_cache
        )

    def cumulative_search(
        self, keywords: Iterable[str], *, origin: int | None = None
    ) -> CumulativeSearchSession:
        """A browse-style session over a large matching set."""
        return CumulativeSearchSession(self.index, keywords, origin=origin)

    def read(self, object_id: str, *, origin: int | None = None) -> list[int]:
        """The DOLR Read: replica holders of an object."""
        return self.dolr.read(object_id, origin=origin)

    # -- introspection -------------------------------------------------------

    @property
    def cube(self) -> Hypercube:
        return self.index.cube

    @property
    def network(self) -> SimulatedNetwork:
        return self.dolr.network

    def messages_sent(self) -> int:
        return self.network.metrics.counter("network.messages")
