"""Typed configuration for the service façade.

:class:`ServiceConfig` replaces the stringly-typed knobs
``KeywordSearchService.create`` grew over time (``dht="chord"``,
``cache_policy="fifo"``, ``contact_mode="direct"``) with enums and
dataclasses that fail at construction time instead of deep inside the
stack, and that carry the resilience policy (retries, deadlines,
circuit breaking) alongside the topology knobs.  :class:`SearchOptions`
does the same for per-query parameters.

The legacy keyword form of ``create`` keeps working through
:meth:`ServiceConfig.from_legacy`, which coerces strings to enums and
emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace

from repro.core.cache import CacheSizing
from repro.core.search import TraversalOrder
from repro.net.codec import codec_by_name
from repro.sim.resilience import BreakerPolicy, RetryPolicy

__all__ = [
    "CachePolicy",
    "CacheSizing",
    "ContactMode",
    "DhtKind",
    "SearchOptions",
    "ServiceConfig",
]


class DhtKind(enum.Enum):
    """Which DHT implements the paper's generalized DOLR layer."""

    CHORD = "chord"
    KADEMLIA = "kademlia"
    PASTRY = "pastry"


class CachePolicy(enum.Enum):
    """Eviction policy of the per-logical-node query caches."""

    FIFO = "fifo"
    LRU = "lru"


class ContactMode(enum.Enum):
    """How the search root reaches tree nodes: cached physical contacts
    (one DHT message each, Section 3.4's observation) or a full DHT
    lookup per contact."""

    DIRECT = "direct"
    ROUTED = "routed"


def _coerce(value, kind):
    """Accept an enum member or its string value."""
    return value if isinstance(value, kind) else kind(value)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything needed to build a :class:`KeywordSearchService`.

    ``dimension`` is the hypercube dimension r (Section 3's central
    tuning knob); ``num_dht_nodes`` the physical overlay size;
    ``cache_capacity`` the per-physical-node query cache in entry units,
    shared across the logical tables the node hosts (0 disables
    caching).  ``resilience`` / ``breaker`` configure the
    messaging channel every protocol RPC goes through — when set, a
    superset search degrades past unreachable nodes (reported in
    ``SearchResult.degraded_visits``) instead of raising.

    ``index_replicas`` builds the index ``k``-way replicated through
    Section 3.4's secondary hypercubes (see
    :mod:`repro.core.replication`): writes go to every replica, reads
    fail over per logical node, and the membership layer re-replicates
    a dead node's tables from the surviving replicas.  The default 1
    keeps the single-index stack byte-identical to pre-replication
    behaviour.

    ``prefix_directory`` builds the distributed keyword directory
    (:mod:`repro.prefix`, docs/protocol.md §17) alongside the index:
    every publish/unpublish also maintains a DHT-sharded trie of the
    indexed keywords, and :meth:`KeywordSearchService.prefix_search`
    (or ``SearchOptions(prefix=True)``) becomes available.  The default
    off adds zero messages and keeps every experiment byte-identical.

    ``cooperative_cache`` turns on the SBT-path caching tier
    (docs/protocol.md §16): interior tree nodes cache their subtree's
    complete results and walkers consult them before descending.  Only
    meaningful with ``cache_capacity > 0``; the default off keeps the
    root-only Figure 9 behaviour.  ``cache_sizing`` picks how
    :meth:`~repro.core.index.HypercubeIndex.apportion_cache_capacity`
    splits one cluster-wide budget across nodes — ``UNIFORM`` (the
    equal split, default) or ``SQRT_LOAD`` (the Sarshar & Roychowdhury
    optimum, allocation proportional to √demand).

    ``codec`` picks the serialization stack (docs/protocol.md §18) for
    TCP deployments: ``"binary"`` (default) speaks the v2 binary wire
    envelope and writes v2 WAL records; ``"json"`` pins the v1 JSON
    formats everywhere.  Mixed clusters interoperate — binary nodes
    negotiate per connection and fall back to JSON with v1 peers, and
    store recovery reads either record format — so the knob exists for
    rolling upgrades and A/B measurement, not correctness.
    """

    dimension: int
    num_dht_nodes: int
    dht: DhtKind = DhtKind.CHORD
    dht_bits: int = 32
    seed: int | random.Random | None = 0
    cache_capacity: int = 0
    cache_policy: CachePolicy = CachePolicy.FIFO
    contact_mode: ContactMode = ContactMode.DIRECT
    resilience: RetryPolicy | None = None
    breaker: BreakerPolicy | None = None
    index_replicas: int = 1
    cooperative_cache: bool = False
    cache_sizing: CacheSizing = CacheSizing.UNIFORM
    prefix_directory: bool = False
    codec: str = "binary"

    def __post_init__(self) -> None:
        # Tolerate string forms so configs read naturally from literals,
        # while normalizing eagerly: a constructed config always holds
        # enum members.
        object.__setattr__(self, "dht", _coerce(self.dht, DhtKind))
        object.__setattr__(self, "cache_policy", _coerce(self.cache_policy, CachePolicy))
        object.__setattr__(self, "contact_mode", _coerce(self.contact_mode, ContactMode))
        object.__setattr__(self, "cache_sizing", _coerce(self.cache_sizing, CacheSizing))
        # Normalize via the codec registry so typos fail here, not at
        # the first frame; a constructed config always holds the
        # canonical codec name ("binary" / "json").
        object.__setattr__(self, "codec", codec_by_name(self.codec).name)
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")
        if self.num_dht_nodes < 1:
            raise ValueError(f"num_dht_nodes must be >= 1, got {self.num_dht_nodes}")
        if self.cache_capacity < 0:
            raise ValueError(f"cache_capacity must be >= 0, got {self.cache_capacity}")
        if self.index_replicas < 1:
            raise ValueError(f"index_replicas must be >= 1, got {self.index_replicas}")

    @classmethod
    def from_legacy(cls, **kwargs) -> "ServiceConfig":
        """Build a config from the pre-1.1 keyword arguments (strings
        for ``dht`` / ``cache_policy`` / ``contact_mode``).  Unknown
        string values raise ``ValueError`` exactly as the old façade
        did."""
        try:
            return cls(**kwargs)
        except ValueError as error:
            # Re-frame enum coercion errors in the old API's terms.
            message = str(error)
            if "DhtKind" in message:
                raise ValueError(
                    f"dht must be one of {sorted(k.value for k in DhtKind)}, "
                    f"got {kwargs.get('dht')!r}"
                ) from None
            if "CachePolicy" in message:
                raise ValueError(
                    f"cache_policy must be one of {sorted(p.value for p in CachePolicy)}, "
                    f"got {kwargs.get('cache_policy')!r}"
                ) from None
            if "ContactMode" in message:
                raise ValueError(
                    f"contact_mode must be 'direct' or 'routed', "
                    f"got {kwargs.get('contact_mode')!r}"
                ) from None
            raise

    def with_resilience(
        self, resilience: RetryPolicy, breaker: BreakerPolicy | None = None
    ) -> "ServiceConfig":
        """A copy of this config with a resilience policy installed."""
        return replace(self, resilience=resilience, breaker=breaker)


@dataclass(frozen=True)
class SearchOptions:
    """Per-query knobs of a superset search.

    ``threshold`` is the paper's t (stop after min(t, |O_K|) objects);
    ``origin`` the requesting node (any live node when None); ``order``
    the tree-traversal strategy; ``use_cache`` overrides the service
    default (cache on iff a cache capacity was configured); ``trace``
    attaches a per-query :class:`~repro.obs.trace.QueryTrace` to the
    result (observable behaviour is unchanged either way).

    ``deadline`` bounds the whole query in transport time units: the
    service resolves it to an absolute instant once and every retry
    budget along the query (see
    :class:`~repro.sim.resilience.ResilientChannel`) races that same
    wall, via the ambient :mod:`repro.net.qos` context rather than
    per-call plumbing.  ``priority`` (>= 0, default 0) is stamped on
    every request frame the query sends; nodes under admission control
    shed low-priority traffic first.  The two fields are appended after
    the original five, so positional callers predating them are
    unaffected.

    ``prefix`` switches the query to prefix mode (docs/protocol.md
    §17): the query string is a keyword *prefix*, resolved through the
    service's keyword directory and expanded keyword-by-keyword under
    the shared ``threshold``/``deadline`` budget.  ``max_expansions``
    bounds how many matched keywords the directory enumerates per query
    (None: unbounded).  Both fields are appended after the existing
    seven, keeping positional callers unaffected.
    """

    threshold: int | None = None
    origin: int | None = None
    order: TraversalOrder = TraversalOrder.TOP_DOWN
    use_cache: bool | None = None
    trace: bool = False
    deadline: float | None = None
    priority: int = 0
    prefix: bool = False
    max_expansions: int | None = None

    def __post_init__(self) -> None:
        if self.threshold is not None and self.threshold < 1:
            raise ValueError(f"threshold must be >= 1 or None, got {self.threshold}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive or None, got {self.deadline}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.max_expansions is not None and self.max_expansions < 1:
            raise ValueError(
                f"max_expansions must be >= 1 or None, got {self.max_expansions}"
            )
