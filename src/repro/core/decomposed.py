"""Decomposed multi-hypercube indexes (Section 3.4, final remark).

"Instead of using a single large hypercube to index objects, we can
divide the entire keyword set into smaller, disjoint subsets, and then
use a hypercube for each subset" — useful when objects carry several
attribute groups of very different query frequency, and because a
smaller dimension means a smaller subhypercube to search.

Keywords are partitioned into ``groups`` disjoint sub-vocabularies —
either by an explicit classifier (e.g. attribute name prefixes) or by a
uniform hash.  An object is indexed in every group its keyword set
touches, under the *projection* of the set onto that group.  A query is
answered from the group with the most selective projection (the one
occupying the most dimensions), and candidates are verified against the
full query using the object metadata fetched through the DOLR layer —
each group's entry stores the object's full keyword set for exactly
that purpose.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.index import HypercubeIndex
from repro.core.keywords import KeywordHasher, KeywordSetMapper, normalize_keywords
from repro.core.mapping import HypercubeMapping
from repro.core.search import FoundObject, SearchResult, SuperSetSearch, TraversalOrder
from repro.dht.dolr import DolrNetwork
from repro.hypercube.hypercube import Hypercube
from repro.util.hashing import stable_hash_to_range

__all__ = ["DecomposedIndex", "DecomposedSearchResult"]


@dataclass(frozen=True)
class DecomposedSearchResult:
    """Outcome of a search against a decomposed index."""

    query: frozenset[str]
    group: int
    projection: frozenset[str]
    objects: tuple[FoundObject, ...]
    candidates: int
    inner: SearchResult

    @property
    def object_ids(self) -> tuple[str, ...]:
        return tuple(found.object_id for found in self.objects)

    def results(self) -> tuple[str, ...]:
        """The matching object IDs — the accessor shared by every search
        result type (see :meth:`repro.core.search.SearchResult.results`)."""
        return self.object_ids

    @property
    def precision(self) -> float:
        """Fraction of candidates that survived full-query verification."""
        return len(self.objects) / self.candidates if self.candidates else 1.0


class DecomposedIndex:
    """Several smaller hypercube indexes over a partitioned vocabulary.

    Entries are keyed by the *projection* of an object's keyword set but
    carry the full set (as extra "shadow" keywords folded into the entry
    keyword set would misplace the entry, the full set is stored in a
    registry shard alongside — here, for simulation economy, in the
    orchestrator's metadata map, standing in for a DOLR metadata fetch).
    """

    def __init__(
        self,
        dolr: DolrNetwork,
        *,
        groups: int,
        dimension_per_group: int,
        classifier: Callable[[str], int] | None = None,
        salt: str = "decomposed",
    ):
        if groups < 1:
            raise ValueError(f"groups must be >= 1, got {groups}")
        self.dolr = dolr
        self.groups = groups
        self.salt = salt
        self._classifier = classifier
        self.indexes: list[HypercubeIndex] = []
        for group in range(groups):
            cube = Hypercube(dimension_per_group)
            mapper = KeywordSetMapper(cube, KeywordHasher(dimension_per_group, salt=f"{salt}/{group}"))
            mapping = HypercubeMapping(cube, dolr, salt=f"{salt}/{group}")
            self.indexes.append(
                HypercubeIndex(
                    cube, dolr, mapper=mapper, mapping=mapping, namespace=f"{salt}/g{group}"
                )
            )
        self.full_keywords: dict[str, frozenset[str]] = {}

    # -- partitioning -----------------------------------------------------

    def group_of(self, keyword: str) -> int:
        """Which sub-vocabulary a keyword belongs to."""
        if self._classifier is not None:
            group = self._classifier(keyword)
            if not 0 <= group < self.groups:
                raise ValueError(
                    f"classifier returned group {group}, expected [0, {self.groups})"
                )
            return group
        return stable_hash_to_range(keyword, self.groups, salt=f"{self.salt}/partition")

    def project(self, keywords: Iterable[str]) -> dict[int, frozenset[str]]:
        """Split a keyword set into its non-empty per-group projections."""
        projections: dict[int, set[str]] = {}
        for keyword in normalize_keywords(keywords):
            projections.setdefault(self.group_of(keyword), set()).add(keyword)
        return {group: frozenset(parts) for group, parts in projections.items()}

    # -- operations ---------------------------------------------------------

    def insert(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        """Index the object in every touched group; returns the number of
        groups written (the per-object storage multiplier)."""
        normalized = normalize_keywords(keywords)
        projections = self.project(normalized)
        self.full_keywords[object_id] = normalized
        first_copy = self.dolr.insert(object_id, holder)
        if not first_copy:
            return 0
        written = 0
        for group, projection in projections.items():
            index = self.indexes[group]
            logical = index.mapper.node_for(projection)
            index.dolr.route_rpc(
                index.mapping.dht_key(logical),
                "hindex.put",
                {
                    "namespace": index.namespace,
                    "logical": logical,
                    "keywords": sorted(projection),
                    "object_id": object_id,
                },
                origin=holder,
            )
            written += 1
        return written

    def delete(self, object_id: str, holder: int) -> int:
        """Remove the object from every group it was indexed in."""
        normalized = self.full_keywords.get(object_id)
        if normalized is None:
            return 0
        last_copy = self.dolr.delete(object_id, holder)
        if not last_copy:
            return 0
        self.full_keywords.pop(object_id, None)
        removed = 0
        for group, projection in self.project(normalized).items():
            index = self.indexes[group]
            logical = index.mapper.node_for(projection)
            index.dolr.route_rpc(
                index.mapping.dht_key(logical),
                "hindex.remove",
                {
                    "namespace": index.namespace,
                    "logical": logical,
                    "keywords": sorted(projection),
                    "object_id": object_id,
                },
                origin=holder,
            )
            removed += 1
        return removed

    def superset_search(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
    ) -> DecomposedSearchResult:
        """Search the most selective group, verify against the full query."""
        query = normalize_keywords(keywords)
        projections = self.project(query)
        group = max(
            projections,
            key=lambda g: (self.indexes[g].mapper.one_count(projections[g]), -g),
        )
        projection = projections[group]
        searcher = SuperSetSearch(self.indexes[group])
        # Verification needs every candidate, so the group search cannot
        # be thresholded by the caller's t (a candidate may fail
        # verification); it streams until `threshold` *verified* objects.
        inner = searcher.run(projection, None, origin=origin, order=order)
        verified: list[FoundObject] = []
        candidates = 0
        for found in inner.objects:
            candidates += 1
            full = self.full_keywords.get(found.object_id, found.keywords)
            if query <= full:
                verified.append(FoundObject(found.object_id, full))
                if threshold is not None and len(verified) >= threshold:
                    break
        return DecomposedSearchResult(
            query=query,
            group=group,
            projection=projection,
            objects=tuple(verified),
            candidates=candidates,
            inner=inner,
        )

    # -- accounting -----------------------------------------------------------

    def storage_multiplier(self) -> float:
        """Mean number of group entries per object — the redundancy the
        decomposition trades for smaller search spaces."""
        if not self.full_keywords:
            return 0.0
        total = sum(len(self.project(k)) for k in self.full_keywords.values())
        return total / len(self.full_keywords)
