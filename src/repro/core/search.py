"""Superset search over the hypercube index (Section 3.3).

Given keyword set K and threshold t, return min(t, |O_K|) objects whose
keyword sets contain K.  By Lemma 3.1 the search space is the
subhypercube induced by ``F_h(K)``; the protocol explores its spanning
binomial tree so results arrive ordered by how many *extra* keywords
they carry (Lemma 3.2).

Three traversal orders are provided:

* ``TOP_DOWN`` — the paper's T_QUERY protocol, verbatim: the root keeps
  a FIFO queue ``U`` of ``(node, dimension)`` pairs, sends one query at
  a time, and every queried node w returns its matches (directly to the
  requester) plus its continuation list
  ``L = {(x, i) | i < d, i ∈ Zero(w)}`` — exactly the children of w in
  the induced spanning binomial tree.  General objects come back first.
* ``BOTTOM_UP`` — the variant sketched in Section 3.3: levels of the
  tree are visited deepest-first, so the most specific objects come
  back first.
* ``PARALLEL`` — Section 3.5's speed-up: all nodes of a tree level are
  queried in one round, reducing time complexity from
  ``2**(r-|One|)`` to ``r - |One|`` rounds at the same message cost.

Contact modes: ``direct`` assumes the root reaches tree nodes by their
cached physical contacts (Section 3.4 observes each hypercube message
maps to one DHT message); ``routed`` pays a full DHT lookup per contact
instead.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords
from repro.sim.network import NodeUnreachableError
from repro.hypercube.sbt import SpanningBinomialTree
from repro.util import bitops

__all__ = ["FoundObject", "NodeVisit", "SearchResult", "SuperSetSearch", "TraversalOrder"]


class TraversalOrder(enum.Enum):
    """How the spanning binomial tree is explored."""

    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class FoundObject:
    """One matching object with the keyword set it is indexed under."""

    object_id: str
    keywords: frozenset[str]

    def extra_keywords(self, query: frozenset[str]) -> frozenset[str]:
        """Keywords beyond the query — the refinement hints Section 1
        proposes returning alongside sampled objects."""
        return self.keywords - query

    def specificity(self, query: frozenset[str]) -> int:
        """Number of extra keywords (the ranking signal of Lemma 3.2)."""
        return len(self.keywords - query)


@dataclass(frozen=True)
class NodeVisit:
    """One visited tree node, in visit order."""

    order: int
    logical: int
    physical: int
    depth: int
    returned: int
    dht_hops: int


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one superset search."""

    query: frozenset[str]
    threshold: int | None
    order: TraversalOrder
    root_logical: int
    root_physical: int
    objects: tuple[FoundObject, ...]
    visits: tuple[NodeVisit, ...]
    complete: bool
    messages: int
    rounds: int
    cache_hit: bool

    @property
    def object_ids(self) -> tuple[str, ...]:
        return tuple(found.object_id for found in self.objects)

    @property
    def logical_nodes_contacted(self) -> int:
        """Distinct hypercube nodes contacted — the paper's cost metric."""
        return len({visit.logical for visit in self.visits})

    @property
    def physical_nodes_contacted(self) -> int:
        return len({visit.physical for visit in self.visits})

    def nodes_contacted_for_recall(self, fraction: float, total_matching: int) -> int:
        """Visits needed before ``fraction`` of ``total_matching`` objects
        had been returned — the x-axis/y-axis relation of Figure 8."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        needed = fraction * total_matching
        collected = 0
        for count, visit in enumerate(self.visits, start=1):
            collected += visit.returned
            if collected >= needed:
                return count
        return len(self.visits)


class SuperSetSearch:
    """Executor for superset searches against a :class:`HypercubeIndex`."""

    def __init__(
        self,
        index: HypercubeIndex,
        *,
        contact_mode: str = "direct",
        skip_unreachable: bool = False,
    ):
        if contact_mode not in ("direct", "routed"):
            raise ValueError(f"contact_mode must be 'direct' or 'routed', got {contact_mode!r}")
        self.index = index
        self.contact_mode = contact_mode
        self.skip_unreachable = skip_unreachable

    # -- public API -----------------------------------------------------

    def run(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool = False,
    ) -> SearchResult:
        """Execute one superset search and return its full trace."""
        if threshold is not None and threshold < 1:
            raise ValueError(f"threshold must be >= 1 or None, got {threshold}")
        query = normalize_keywords(keywords)
        index = self.index
        dolr = index.dolr
        origin = dolr.any_address() if origin is None else origin
        root_logical = index.mapper.node_for(query)

        with dolr.network.trace() as trace:
            route = index.mapping.route_to(root_logical, origin=origin)
            root_physical = route.owner

            if use_cache:
                cached = dolr.rpc_at(
                    origin,
                    root_physical,
                    "hindex.cache_get",
                    {
                        "namespace": index.namespace,
                        "logical": root_logical,
                        "keywords": query,
                        "threshold": threshold,
                    },
                )
                if cached["hit"]:
                    objects = tuple(
                        FoundObject(obj, keywords) for obj, keywords in cached["results"]
                    )
                    if threshold is not None:
                        objects = objects[:threshold]
                    visit = NodeVisit(0, root_logical, root_physical, 0, len(objects), route.hops)
                    return SearchResult(
                        query=query,
                        threshold=threshold,
                        order=order,
                        root_logical=root_logical,
                        root_physical=root_physical,
                        objects=objects,
                        visits=(visit,),
                        complete=bool(cached["complete"]),
                        messages=trace.message_count,
                        rounds=1,
                        cache_hit=True,
                    )

            walker = {
                TraversalOrder.TOP_DOWN: self._walk_top_down,
                TraversalOrder.BOTTOM_UP: self._walk_bottom_up,
                TraversalOrder.PARALLEL: self._walk_parallel,
            }[order]
            objects, visits, complete, rounds = walker(
                query, threshold, origin, root_logical, root_physical, route.hops
            )

            if use_cache:
                dolr.rpc_at(
                    root_physical,
                    root_physical,
                    "hindex.cache_put",
                    {
                        "namespace": index.namespace,
                        "logical": root_logical,
                        "keywords": query,
                        "results": [(f.object_id, f.keywords) for f in objects],
                        "complete": complete,
                    },
                )
            messages = trace.message_count

        return SearchResult(
            query=query,
            threshold=threshold,
            order=order,
            root_logical=root_logical,
            root_physical=root_physical,
            objects=tuple(objects),
            visits=tuple(visits),
            complete=complete,
            messages=messages,
            rounds=rounds,
            cache_hit=False,
        )

    # -- traversals -----------------------------------------------------

    def _walk_top_down(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
    ) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        """The paper's T_QUERY protocol.

        The queue ``U`` holds ``(node, d)`` pairs; popping FIFO yields a
        breadth-first walk of ``SBT_{H_r}(root)``.  The continuation
        list a visited node w would return is
        ``{(neighbour_i(w), i) | i < d, i ∈ Zero(w)}`` — computed here
        from w's identifier, which root knows (the bits are the message
        content either way).
        """
        dimension = self.index.cube.dimension
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []

        remaining = threshold
        truncated = False

        # Root examines its own table first (the initial T_QUERY).
        returned, hops = self._visit(
            query, remaining, origin, root_logical, root_physical, responder_hops=root_hops
        )
        objects.extend(returned)
        visits.append(
            NodeVisit(0, root_logical, root_physical, 0, len(returned), hops)
        )
        if remaining is not None:
            remaining -= len(returned)
            if remaining <= 0:
                return objects, visits, False, len(visits)

        queue: deque[tuple[int, int]] = deque(
            (root_logical | (1 << i), i)
            for i in self._descending_zero_dims(root_logical, dimension)
        )
        while queue:
            w, d = queue.popleft()
            returned, hops = self._visit(query, remaining, origin, w, None, via=root_physical)
            physical = self._physical_of(w)
            objects.extend(returned)
            visits.append(
                NodeVisit(
                    len(visits),
                    w,
                    physical,
                    bitops.popcount(w ^ root_logical),
                    len(returned),
                    hops,
                )
            )
            if remaining is not None:
                remaining -= len(returned)
                if remaining <= 0:
                    truncated = True
                    break  # w answers T_STOP; root drops U.
            queue.extend(
                (w | (1 << i), i)
                for i in self._descending_zero_dims(w, dimension)
                if i < d
            )
        return objects, visits, not truncated, len(visits)

    def _walk_bottom_up(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
    ) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        """Deepest level first: most specific objects returned first."""
        tree = SpanningBinomialTree.induced(self.index.cube, root_logical)
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []
        remaining = threshold
        truncated = False
        first = True
        for node, depth in tree.bfs_bottom_up():
            hops_for = root_hops if first else 0
            returned, hops = self._visit(
                query,
                remaining,
                origin,
                node,
                root_physical if node == root_logical else None,
                via=root_physical,
                responder_hops=hops_for,
            )
            first = False
            objects.extend(returned)
            visits.append(
                NodeVisit(len(visits), node, self._physical_of(node), depth, len(returned), hops)
            )
            if remaining is not None:
                remaining -= len(returned)
                if remaining <= 0:
                    truncated = True
                    break
        return objects, visits, not truncated, len(visits)

    def _walk_parallel(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
    ) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        """Level-synchronized top-down: whole tree levels are queried per
        round, so a round that crosses the threshold still pays for its
        entire level (the latency/message trade of Section 3.5)."""
        tree = SpanningBinomialTree.induced(self.index.cube, root_logical)
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []
        remaining = threshold
        truncated = False
        rounds = 0
        for depth in range(tree.height + 1):
            level_nodes = list(tree.level(depth))
            if not level_nodes:
                continue
            rounds += 1
            for node in level_nodes:
                returned, hops = self._visit(
                    query,
                    remaining,
                    origin,
                    node,
                    root_physical if node == root_logical else None,
                    via=root_physical,
                    responder_hops=root_hops if depth == 0 else 0,
                )
                objects.extend(returned)
                visits.append(
                    NodeVisit(
                        len(visits), node, self._physical_of(node), depth, len(returned), hops
                    )
                )
                if remaining is not None:
                    remaining -= len(returned)
            if remaining is not None and remaining <= 0:
                truncated = True
                break
        return objects, visits, not truncated, rounds

    # -- mechanics --------------------------------------------------------

    def _visit(
        self,
        query: frozenset[str],
        remaining: int | None,
        origin: int,
        logical: int,
        physical: int | None,
        *,
        via: int | None = None,
        responder_hops: int = 0,
    ) -> tuple[list[FoundObject], int]:
        """Deliver one T_QUERY to ``logical`` and collect its matches.

        Returns (found objects, DHT hops paid to reach the node).
        Matches are also forwarded directly to the requester, as the
        protocol specifies (one extra message when non-empty).  With
        ``skip_unreachable`` set, a dead node yields no results instead
        of aborting the search — the fault-tolerance behaviour
        Section 3.4 claims (no single failure blocks a keyword).
        """
        dolr = self.index.dolr
        hops = responder_hops
        if physical is None:
            if self.contact_mode == "routed":
                route = self.index.mapping.route_to(logical, origin=via)
                physical = route.owner
                hops += route.hops
            else:
                physical = self._physical_of(logical)
        sender = via if via is not None else origin
        try:
            found = self._scan_rpc(
                sender, physical, self.index.namespace, logical, query, remaining
            )
        except NodeUnreachableError:
            fallback = self._visit_fallback(sender, logical, query, remaining)
            if fallback is not None:
                found = fallback
            elif self.skip_unreachable:
                return [], hops
            else:
                raise
        if found and physical != origin:
            dolr.network.send(
                physical, origin, "hindex.results", {"count": len(found)}, deliver=False
            )
        return found, hops

    def _scan_rpc(
        self,
        sender: int,
        physical: int,
        namespace: str,
        logical: int,
        query: frozenset[str],
        remaining: int | None,
    ) -> list[FoundObject]:
        """One hindex.scan request/reply, decoded to FoundObjects."""
        reply = self.index.dolr.rpc_at(
            sender,
            physical,
            "hindex.scan",
            {
                "namespace": namespace,
                "logical": logical,
                "keywords": query,
                "limit": remaining,
            },
        )
        return [
            FoundObject(object_id, entry_keywords)
            for entry_keywords, object_ids in reply["matches"]
            for object_id in object_ids
        ]

    def _visit_fallback(
        self, sender: int, logical: int, query: frozenset[str], remaining: int | None
    ) -> list[FoundObject] | None:
        """Hook for replicated indexes: produce the visit's results from
        a replica when the primary node is unreachable.  The base search
        has no replicas, so there is no fallback."""
        return None

    def _physical_of(self, logical: int) -> int:
        return self.index.mapping.physical_owner(logical)

    @staticmethod
    def _descending_zero_dims(node: int, dimension: int) -> Iterator[int]:
        for i in range(dimension - 1, -1, -1):
            if not (node >> i) & 1:
                yield i
