"""Superset search over the hypercube index (Section 3.3).

Given keyword set K and threshold t, return min(t, |O_K|) objects whose
keyword sets contain K.  By Lemma 3.1 the search space is the
subhypercube induced by ``F_h(K)``; the protocol explores its spanning
binomial tree so results arrive ordered by how many *extra* keywords
they carry (Lemma 3.2).

Three traversal orders are provided:

* ``TOP_DOWN`` — the paper's T_QUERY protocol, verbatim: the root keeps
  a FIFO queue ``U`` of ``(node, dimension)`` pairs, sends one query at
  a time, and every queried node w returns its matches (directly to the
  requester) plus its continuation list
  ``L = {(x, i) | i < d, i ∈ Zero(w)}`` — exactly the children of w in
  the induced spanning binomial tree.  General objects come back first.
* ``BOTTOM_UP`` — the variant sketched in Section 3.3: levels of the
  tree are visited deepest-first, so the most specific objects come
  back first.
* ``PARALLEL`` — Section 3.5's speed-up: all nodes of a tree level are
  queried in one round, reducing time complexity from
  ``2**(r-|One|)`` to ``r - |One|`` rounds at the same message cost.
  Since PR 5 the rounds are dispatched *concurrently* through the
  transport's batch RPC API
  (:meth:`~repro.net.transport.Transport.rpc_many` via
  :meth:`~repro.sim.resilience.ResilientChannel.rpc_many`): virtual
  time advances by one round trip per level on the simulator, and over
  TCP the whole level's requests are genuinely in flight together — the
  round bound becomes a wall-clock bound.  Budget rule: every visit in
  a level shares the result budget *as it stood at level entry* (the
  level is dispatched before any of its replies can be seen), the
  collected objects are truncated to the threshold afterwards, and a
  search that overshot its threshold reports ``complete=False`` exactly
  when matches were left behind — dropped overshoot, a limit-cut scan,
  or an undescended subtree.

All three walks share one traversal core: sequential orders dispatch
through :meth:`SuperSetSearch._visit`, the parallel order through the
level-batched :meth:`SuperSetSearch._visit_level`, and both paths share
the same target resolution, failure ladder, result forwarding, and
visit/threshold bookkeeping.

Contact modes: ``direct`` assumes the root reaches tree nodes by their
cached physical contacts (Section 3.4 observes each hypercube message
maps to one DHT message); ``routed`` pays a full DHT lookup per contact
instead.

Failure handling: scans go through the index's
:class:`~repro.sim.resilience.ResilientChannel`, so a visit to a flaky
node is retried per the channel's policy.  When the channel is
resilient (or ``skip_unreachable`` is set) a visit whose retries are
exhausted *degrades* instead of aborting the search: the searcher falls
back to DHT surrogate routing (the stand-in node may hold nothing, but
the traversal continues) and the visit is reported in
:attr:`SearchResult.degraded_visits` with status ``surrogate`` or
``failed`` — the fault-tolerance behaviour Section 3.4 calls for.
"""

from __future__ import annotations

import enum
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords, normalize_prefix
from repro.net.errors import PeerUnreachableError
from repro.net.transport import RpcCall
from repro.obs.trace import QueryTrace, TraceRecorder, active_recorder, recording
from repro.sim.resilience import ResilientChannel
from repro.hypercube.sbt import SpanningBinomialTree
from repro.util import bitops

__all__ = [
    "FoundObject",
    "NodeVisit",
    "PrefixSearch",
    "PrefixSearchResult",
    "SearchResult",
    "SuperSetSearch",
    "TraversalOrder",
]


class TraversalOrder(enum.Enum):
    """How the spanning binomial tree is explored."""

    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class FoundObject:
    """One matching object with the keyword set it is indexed under."""

    object_id: str
    keywords: frozenset[str]

    def extra_keywords(self, query: frozenset[str]) -> frozenset[str]:
        """Keywords beyond the query — the refinement hints Section 1
        proposes returning alongside sampled objects."""
        return self.keywords - query

    def specificity(self, query: frozenset[str]) -> int:
        """Number of extra keywords (the ranking signal of Lemma 3.2)."""
        return len(self.keywords - query)


@dataclass(frozen=True)
class NodeVisit:
    """One visited tree node, in visit order.

    ``status`` is ``"ok"`` for a normal visit; ``"replica"`` when a
    replicated index served it from a secondary copy (full data);
    ``"surrogate"`` when the node's primary host was unreachable and the
    scan was served by the DHT surrogate (whose table may be missing the
    dead host's entries); ``"failed"`` when no host could be reached at
    all.  The last two are *degraded*: results may be incomplete.
    """

    order: int
    logical: int
    physical: int
    depth: int
    returned: int
    dht_hops: int
    status: str = "ok"

    @property
    def degraded(self) -> bool:
        return self.status in ("surrogate", "failed")


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one superset search."""

    query: frozenset[str]
    threshold: int | None
    order: TraversalOrder
    root_logical: int
    root_physical: int
    objects: tuple[FoundObject, ...]
    visits: tuple[NodeVisit, ...]
    complete: bool
    messages: int
    rounds: int
    cache_hit: bool
    # The per-query event trace, when the search ran with tracing on
    # (excluded from equality: two identical searches differ only in
    # event timestamps).
    trace: QueryTrace | None = field(default=None, compare=False, repr=False)

    @property
    def object_ids(self) -> tuple[str, ...]:
        return tuple(found.object_id for found in self.objects)

    def results(self) -> tuple[str, ...]:
        """The matching object IDs — the accessor shared by every search
        result type (:class:`SearchResult`, :class:`~repro.core.index.PinResult`,
        :class:`~repro.core.decomposed.DecomposedSearchResult`)."""
        return self.object_ids

    @property
    def degraded_visits(self) -> tuple[NodeVisit, ...]:
        """Visits that could not be served by their primary host (their
        entries may be missing from ``objects``)."""
        return tuple(visit for visit in self.visits if visit.degraded)

    @property
    def degraded(self) -> bool:
        """True when at least one visit was served degraded, i.e. the
        result is complete only with respect to the reachable index."""
        return any(visit.degraded for visit in self.visits)

    @property
    def logical_nodes_contacted(self) -> int:
        """Distinct hypercube nodes contacted — the paper's cost metric."""
        return len({visit.logical for visit in self.visits})

    @property
    def physical_nodes_contacted(self) -> int:
        return len({visit.physical for visit in self.visits})

    def nodes_contacted_for_recall(self, fraction: float, total_matching: int) -> int:
        """Visits needed before ``fraction`` of ``total_matching`` objects
        had been returned — the x-axis/y-axis relation of Figure 8."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        needed = fraction * total_matching
        if needed <= 0:
            return 0  # a recall of nothing needs no visits
        collected = 0
        for count, visit in enumerate(self.visits, start=1):
            collected += visit.returned
            if collected >= needed:
                return count
        return len(self.visits)


class _TraversalRun:
    """Shared bookkeeping of one tree walk.

    Collects the found objects and visit records, and tracks the result
    budget (``remaining``) against the caller's threshold.  The walkers
    differ in traversal order and dispatch (sequential vs level-batched)
    but every one of them records visits and consumes budget through
    this one object — the invariant the §3.5 equivalence tests lean on.
    """

    __slots__ = (
        "objects",
        "visits",
        "remaining",
        "truncated",
        "epochs",
        "track",
        "by_logical",
        "bounds",
        "coop_hits",
    )

    def __init__(self, threshold: int | None, *, track: bool = False):
        self.objects: list[FoundObject] = []
        self.visits: list[NodeVisit] = []
        self.remaining = threshold
        self.truncated = False
        # Coherence-epoch bookkeeping: the epoch each physical host
        # reported with its scan, consulted when filling caches later.
        self.epochs: dict[int, int] = {}
        # Cooperative-cache bookkeeping (``track=True``): per-logical
        # results, each visit's SBT dimension bound (which pins its
        # subtree), and which visits were answered from a path cache.
        self.track = track
        self.by_logical: dict[int, list[FoundObject]] = {}
        self.bounds: dict[int, int] = {}
        self.coop_hits: set[int] = set()

    def absorb(
        self,
        logical: int,
        physical: int,
        depth: int,
        found: list[FoundObject],
        hops: int,
        status: str,
    ) -> None:
        """Record one completed visit and keep its objects."""
        self.objects.extend(found)
        if self.track:
            self.by_logical[logical] = found
        SuperSetSearch._record_visit(
            self.visits, logical, physical, depth, len(found), hops, status
        )

    def consume(self, count: int) -> bool:
        """Charge ``count`` results against the budget.  True when the
        threshold is now met (unlimited searches never meet it)."""
        if self.remaining is None:
            return False
        self.remaining -= count
        return self.remaining <= 0

    def finish(self, rounds: int) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        return self.objects, self.visits, not self.truncated, rounds


class SuperSetSearch:
    """Executor for superset searches against a :class:`HypercubeIndex`."""

    def __init__(
        self,
        index: HypercubeIndex,
        *,
        contact_mode: str = "direct",
        skip_unreachable: bool = False,
        channel: ResilientChannel | None = None,
        cooperative: bool = False,
    ):
        if contact_mode not in ("direct", "routed"):
            raise ValueError(f"contact_mode must be 'direct' or 'routed', got {contact_mode!r}")
        self.index = index
        self.contact_mode = contact_mode
        self.skip_unreachable = skip_unreachable
        # Cooperative SBT-path caching (docs/protocol.md §16): interior
        # tree nodes cache their subtree's complete results and walkers
        # consult them before descending.  Applies to the subtree-shaped
        # walks (TOP_DOWN, PARALLEL) when the query runs with use_cache.
        self.cooperative = cooperative
        # None means "follow the DOLR network's channel" (resolved per
        # call, so a later configure_resilience() is picked up).
        self._channel = channel

    @property
    def channel(self) -> ResilientChannel:
        """The messaging channel scans go through."""
        return self._channel if self._channel is not None else self.index.dolr.channel

    @property
    def degrades(self) -> bool:
        """Whether an unreachable visit degrades instead of raising."""
        return self.skip_unreachable or self.channel.resilient

    # -- public API -----------------------------------------------------

    def run(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool = False,
        trace: bool = False,
    ) -> SearchResult:
        """Execute one superset search and return its full trace.

        With ``trace=True`` a :class:`~repro.obs.trace.TraceRecorder` is
        active for the duration of the query and the returned result
        carries a :class:`~repro.obs.trace.QueryTrace` accounting for
        every event down to individual transport messages.  Tracing
        changes no message, clock, or RNG behaviour: the result is
        byte-identical either way.
        """
        if threshold is not None and threshold < 1:
            raise ValueError(f"threshold must be >= 1 or None, got {threshold}")
        query = normalize_keywords(keywords)
        index = self.index
        dolr = index.dolr
        origin = dolr.any_address() if origin is None else origin
        root_logical = index.mapper.node_for(query)

        recorder = TraceRecorder(clock=dolr.network.now) if trace else None
        scope = recording(recorder) if recorder is not None else nullcontext()
        with scope, dolr.network.trace() as window:
            if recorder is not None:
                recorder.emit(
                    "query",
                    query=sorted(query),
                    threshold=threshold,
                    order=order.value,
                    origin=origin,
                    root_logical=root_logical,
                    use_cache=use_cache,
                )
            route = index.mapping.route_to(root_logical, origin=origin)
            root_physical = route.owner

            if use_cache:
                cached = dolr.rpc_at(
                    origin,
                    root_physical,
                    "hindex.cache_get",
                    {
                        "namespace": index.namespace,
                        "logical": root_logical,
                        "keywords": query,
                        "threshold": threshold,
                    },
                )
                if recorder is not None:
                    recorder.emit(
                        "cache_get",
                        logical=root_logical,
                        hit=bool(cached["hit"]),
                        complete=bool(cached.get("complete", False)),
                        returned=len(cached.get("results", ())),
                    )
                if cached["hit"]:
                    objects = tuple(
                        FoundObject(obj, keywords) for obj, keywords in cached["results"]
                    )
                    complete = bool(cached["complete"])
                    if threshold is not None and len(objects) > threshold:
                        # Trimming dropped matches, so the hit answers
                        # like the equivalent fresh walk: threshold met
                        # with matches left behind -> not complete.
                        objects = objects[:threshold]
                        complete = False
                    visit = NodeVisit(0, root_logical, root_physical, 0, len(objects), route.hops)
                    return self._finish(
                        recorder,
                        query=query,
                        threshold=threshold,
                        order=order,
                        origin=origin,
                        root_logical=root_logical,
                        root_physical=root_physical,
                        objects=objects,
                        visits=(visit,),
                        complete=complete,
                        messages=window.message_count,
                        rounds=1,
                        cache_hit=True,
                    )

            walker = {
                TraversalOrder.TOP_DOWN: self._walk_top_down,
                TraversalOrder.BOTTOM_UP: self._walk_bottom_up,
                TraversalOrder.PARALLEL: self._walk_parallel,
            }[order]
            coop = (
                self.cooperative
                and use_cache
                and order in (TraversalOrder.TOP_DOWN, TraversalOrder.PARALLEL)
            )
            run, rounds = walker(
                query, threshold, origin, root_logical, root_physical, route.hops, coop
            )
            objects, visits, complete, rounds = run.finish(rounds)

            if use_cache:
                # A walk with degraded visits (surrogate/failed) may be
                # missing results the dead hosts held: caching it would
                # poison the root's cache with a possibly-incomplete set
                # served as authoritative long after the hosts recover.
                degraded = any(visit.degraded for visit in visits)
                if not degraded:
                    stored = dolr.rpc_at(
                        root_physical,
                        root_physical,
                        "hindex.cache_put",
                        {
                            "namespace": index.namespace,
                            "logical": root_logical,
                            "keywords": query,
                            "results": [(f.object_id, f.keywords) for f in objects],
                            "complete": complete,
                            # Epoch from the root's own scan: a write that
                            # raced this walk bumped it, and the fill is
                            # then rejected instead of caching stale data.
                            "epoch": run.epochs.get(root_physical),
                        },
                    )
                fills = 0
                if coop and complete and not degraded:
                    fills = self._cooperative_fill(run, query, root_logical, root_physical)
                if recorder is not None:
                    recorder.emit(
                        "cache_put",
                        logical=root_logical,
                        size=len(objects),
                        complete=complete,
                        stored=bool(stored["stored"]) if not degraded else False,
                        skipped_degraded=degraded,
                        cooperative_fills=fills,
                    )
            messages = window.message_count

        return self._finish(
            recorder,
            query=query,
            threshold=threshold,
            order=order,
            origin=origin,
            root_logical=root_logical,
            root_physical=root_physical,
            objects=tuple(objects),
            visits=tuple(visits),
            complete=complete,
            messages=messages,
            rounds=rounds,
            cache_hit=False,
        )

    @staticmethod
    def _finish(
        recorder: TraceRecorder | None,
        *,
        query: frozenset[str],
        threshold: int | None,
        order: TraversalOrder,
        origin: int,
        root_logical: int,
        root_physical: int,
        objects: tuple[FoundObject, ...],
        visits: tuple[NodeVisit, ...],
        complete: bool,
        messages: int,
        rounds: int,
        cache_hit: bool,
    ) -> SearchResult:
        """Assemble the result, freezing the trace when one was kept."""
        query_trace: QueryTrace | None = None
        if recorder is not None:
            query_trace = recorder.finish(
                {
                    "query": sorted(query),
                    "threshold": threshold,
                    "order": order.value,
                    "origin": origin,
                    "root_logical": root_logical,
                    "root_physical": root_physical,
                    "results": len(objects),
                    "complete": complete,
                    "messages": messages,
                    "rounds": rounds,
                    "cache_hit": cache_hit,
                }
            )
        return SearchResult(
            query=query,
            threshold=threshold,
            order=order,
            root_logical=root_logical,
            root_physical=root_physical,
            objects=objects,
            visits=visits,
            complete=complete,
            messages=messages,
            rounds=rounds,
            cache_hit=cache_hit,
            trace=query_trace,
        )

    # -- traversals -----------------------------------------------------
    #
    # All three walks drive the same machinery: `_TraversalRun` holds the
    # collected objects / visit records / result budget, `_visit` performs
    # one sequential visit, and `_visit_level` dispatches a whole SBT
    # level concurrently through the channel's batch RPC API.  The
    # walkers differ only in *which* nodes they hand to that machinery,
    # and in what order.

    def _walk_top_down(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
        coop: bool = False,
    ) -> tuple[_TraversalRun, int]:
        """The paper's T_QUERY protocol.

        The queue ``U`` holds ``(node, d)`` pairs; popping FIFO yields a
        breadth-first walk of ``SBT_{H_r}(root)``.  The continuation
        list a visited node w would return is
        ``{(neighbour_i(w), i) | i < d, i ∈ Zero(w)}`` — computed here
        from w's identifier, which root knows (the bits are the message
        content either way).

        With ``coop`` the walk consults each interior node's path cache
        before descending: a node holding a complete cached aggregate
        for its whole subtree answers from it, and its subtree is pruned
        from the queue (docs/protocol.md §16).
        """
        dimension = self.index.cube.dimension
        run = _TraversalRun(threshold, track=coop)
        run.bounds[root_logical] = dimension

        # Root examines its own table first (the initial T_QUERY).
        returned, hops, status, scan_truncated, _ = self._visit(
            query,
            run.remaining,
            origin,
            root_logical,
            root_physical,
            responder_hops=root_hops,
            run=run,
        )
        run.absorb(root_logical, root_physical, 0, returned, hops, status)

        queue: deque[tuple[int, int]] = deque(
            (root_logical | (1 << i), i)
            for i in self._descending_zero_dims(root_logical, dimension)
        )
        if run.consume(len(returned)):
            # The root alone satisfied the threshold.  The search is
            # still *complete* when nothing was left unexplored: no
            # SBT children to descend into and the root's own scan
            # was not cut short by the limit.
            run.truncated = bool(queue) or scan_truncated
            return run, len(run.visits)

        while queue:
            w, d = queue.popleft()
            run.bounds[w] = d
            returned, hops, status, scan_truncated, coop_hit = self._visit(
                query, run.remaining, origin, w, None, via=root_physical, run=run, consult=coop
            )
            run.absorb(
                w, self._physical_of(w), bitops.popcount(w ^ root_logical), returned, hops, status
            )
            if coop_hit:
                # The node answered for its entire subtree from its path
                # cache: nothing below it is left to explore.
                run.coop_hits.add(w)
                continuation = []
            else:
                continuation = [
                    (w | (1 << i), i)
                    for i in self._descending_zero_dims(w, dimension)
                    if i < d
                ]
            if run.consume(len(returned)):
                # w answers T_STOP; root drops U.  Unexplored work —
                # queued pairs, w's own children, or a limit-cut
                # scan — is what makes the result incomplete.
                run.truncated = bool(queue) or bool(continuation) or scan_truncated
                break
            queue.extend(continuation)
        return run, len(run.visits)

    def _walk_bottom_up(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
        coop: bool = False,
    ) -> tuple[_TraversalRun, int]:
        """Deepest level first: most specific objects returned first.

        ``coop`` is accepted for walker-signature uniformity but never
        consults path caches: a bottom-up walk visits leaves before their
        ancestors, so a subtree aggregate would double-count the leaves
        already scanned.  ``run()`` never enables it for this order.
        """
        del coop
        tree = SpanningBinomialTree.induced(self.index.cube, root_logical)
        run = _TraversalRun(threshold)
        first = True
        for node, depth in tree.bfs_bottom_up():
            hops_for = root_hops if first else 0
            returned, hops, status, _, _ = self._visit(
                query,
                run.remaining,
                origin,
                node,
                root_physical if node == root_logical else None,
                via=root_physical,
                responder_hops=hops_for,
                run=run,
            )
            first = False
            run.absorb(node, self._physical_of(node), depth, returned, hops, status)
            if run.consume(len(returned)):
                run.truncated = True
                break
        return run, len(run.visits)

    def _walk_parallel(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
        coop: bool = False,
    ) -> tuple[_TraversalRun, int]:
        """Level-synchronized top-down: whole tree levels are dispatched
        concurrently, one batch RPC round per level, so a round that
        crosses the threshold still pays for its entire level (the
        latency/message trade of Section 3.5).

        This is the top-down walk with its child dispatch pipelined:
        each round's frontier is exactly the continuation lists of the
        previous round's visits (the queue ``U`` drained a whole level
        at a time), so the node set and per-level membership match the
        sequential protocol exactly, while the visits of one level are
        in flight together.

        Budget rule (deterministic under concurrency): every visit of a
        level carries the result budget *as it stood at level entry* —
        a level's scans cannot see each other's replies, on any
        transport.  The collected objects are truncated to the threshold
        afterwards, so the caller-visible contract (at most ``t``
        results) is order-independent; dropped overshoot marks the
        result incomplete, since matches existed that were not returned.
        """
        dimension = self.index.cube.dimension
        run = _TraversalRun(threshold, track=coop)
        frontier: list[tuple[int, int]] = [(root_logical, dimension)]
        rounds = 0
        depth = 0
        while frontier:
            rounds += 1
            entries = [
                (
                    node,
                    root_physical if node == root_logical else None,
                    root_hops if depth == 0 else 0,
                )
                for node, _ in frontier
            ]
            level = self._visit_level(
                query,
                run.remaining,
                origin,
                root_physical,
                entries,
                run=run,
                consult=coop and depth > 0,
            )
            next_frontier: list[tuple[int, int]] = []
            level_returned = 0
            scan_cut = False
            for (node, d), (found, physical, hops, status, scan_truncated, coop_hit) in zip(
                frontier, level
            ):
                run.bounds[node] = d
                run.absorb(node, physical, depth, found, hops, status)
                level_returned += len(found)
                scan_cut = scan_cut or scan_truncated
                if coop_hit:
                    # Path-cache answer covers the node's entire subtree:
                    # prune it from the next frontier.
                    run.coop_hits.add(node)
                    continue
                next_frontier.extend(
                    (node | (1 << i), i)
                    for i in self._descending_zero_dims(node, dimension)
                    if i < d
                )
            if run.consume(level_returned):
                # The whole level shared the entry budget, so the level
                # may have overshot the threshold; trim to the promised
                # min(t, |O_K|) — in visit order, deterministically.
                overshoot = threshold is not None and len(run.objects) > threshold
                if overshoot:
                    del run.objects[threshold:]
                run.truncated = bool(next_frontier) or scan_cut or overshoot
                break
            frontier = next_frontier
            depth += 1
        return run, rounds

    # -- mechanics --------------------------------------------------------

    @staticmethod
    def _record_visit(
        visits: list[NodeVisit],
        logical: int,
        physical: int,
        depth: int,
        returned: int,
        hops: int,
        status: str,
    ) -> NodeVisit:
        """Append one visit record and mirror it onto the active trace.

        The trace side is a bare append of the NodeVisit itself — the
        recorder materializes the event lazily (see repro.obs.trace).
        """
        visit = NodeVisit(len(visits), logical, physical, depth, returned, hops, status)
        visits.append(visit)
        recorder = active_recorder()
        if recorder is not None:
            recorder.raw.append(visit)
        return visit

    def _visit(
        self,
        query: frozenset[str],
        remaining: int | None,
        origin: int,
        logical: int,
        physical: int | None,
        *,
        via: int | None = None,
        responder_hops: int = 0,
        run: _TraversalRun | None = None,
        consult: bool = False,
    ) -> tuple[list[FoundObject], int, str, bool, bool]:
        """Deliver one T_QUERY to ``logical`` and collect its matches.

        Returns (found objects, DHT hops paid, visit status, whether the
        scan was cut short by the result limit — i.e. the node holds
        more matches than it returned, and whether the node answered
        from its cooperative path cache).  Matches are also forwarded
        directly to the requester, as the protocol specifies (one extra
        message when non-empty).

        Failure ladder, once the channel's retries are exhausted:
        replica fallback (:meth:`_visit_fallback`, for replicated
        indexes), then — when :attr:`degrades` — a re-resolution through
        DHT surrogate routing, then a ``failed`` (empty) visit.  Only a
        non-degrading searcher propagates the error, the legacy
        behaviour of ``skip_unreachable=False`` over a plain channel.
        """
        hops = responder_hops
        status = "ok"
        scan_truncated = False
        coop_hit = False
        sender = via if via is not None else origin
        physical, extra_hops, decided = self._resolve_target(
            query, remaining, origin, logical, physical, via
        )
        hops += extra_hops
        if decided is not None:
            found, status = decided
            return found, hops, status, False, False
        try:
            found, scan_truncated, coop_hit = self._scan_rpc(
                sender,
                physical,
                self.index.namespace,
                logical,
                query,
                remaining,
                run=run,
                consult=consult,
            )
        except PeerUnreachableError as error:
            found, status, new_physical, extra_hops = self._failure_ladder(
                sender, logical, query, remaining, error
            )
            if new_physical is not None:
                physical = new_physical
            hops += extra_hops
        self._notify_requester(physical, origin, found)
        return found, hops, status, scan_truncated, coop_hit

    def _resolve_target(
        self,
        query: frozenset[str],
        remaining: int | None,
        origin: int,
        logical: int,
        physical: int | None,
        via: int | None,
    ) -> tuple[int | None, int, tuple[list[FoundObject], str] | None]:
        """Pick the physical destination for a visit to ``logical``.

        Returns ``(physical, hops_paid, decided)``.  ``decided`` is
        normally ``None``; when not, the visit is already settled
        without a scan — ``(found, status)`` — and the resolver has done
        any result forwarding itself (the routed-mode dead-route path
        here; the dead-primary replica path in
        :class:`~repro.core.replication.ReplicatedSuperSetSearch`).
        Shared by the sequential and the level-batched dispatch paths.
        """
        del query, remaining  # used by overrides that scan replicas
        if physical is not None:
            return physical, 0, None
        if self.contact_mode == "routed":
            try:
                route = self.index.mapping.route_to(logical, origin=via)
            except (PeerUnreachableError, RuntimeError):
                if not self.degrades:
                    raise
                self.index.dolr.network.metrics.increment("search.degraded_visits")
                return None, 0, ([], "failed")
            return route.owner, route.hops, None
        return self._physical_of(logical), 0, None

    def _failure_ladder(
        self,
        sender: int,
        logical: int,
        query: frozenset[str],
        remaining: int | None,
        error: PeerUnreachableError,
    ) -> tuple[list[FoundObject], str, int | None, int]:
        """The degradation ladder for a scan whose retries are exhausted:
        replica fallback, then DHT surrogate re-resolution, then a
        ``failed`` (empty) visit.  Returns ``(found, status,
        physical_override, extra_hops)``; re-raises ``error`` when this
        searcher does not degrade."""
        metrics = self.index.dolr.network.metrics
        fallback = self._visit_fallback(sender, logical, query, remaining)
        if fallback is not None:
            return fallback, "replica", None, 0
        if not self.degrades:
            raise error
        found, surrogate, extra_hops = self._surrogate_visit(sender, logical, query, remaining)
        if surrogate is None:
            metrics.increment("search.degraded_visits")
            return [], "failed", None, 0
        metrics.increment("search.surrogate_visits")
        metrics.increment("search.degraded_visits")
        return found, "surrogate", surrogate, extra_hops

    def _notify_requester(self, physical: int | None, origin: int, found: list[FoundObject]) -> None:
        """Forward a visit's matches directly to the requester, as the
        protocol specifies (one extra message when non-empty)."""
        if found and physical is not None and physical != origin:
            self.index.dolr.network.send(
                physical, origin, "hindex.results", {"count": len(found)}, deliver=False
            )

    def _visit_level(
        self,
        query: frozenset[str],
        budget: int | None,
        origin: int,
        root_physical: int,
        entries: list[tuple[int, int | None, int]],
        *,
        run: _TraversalRun | None = None,
        consult: bool = False,
    ) -> list[tuple[list[FoundObject], int, int, str, bool, bool]]:
        """Deliver one whole SBT level of T_QUERYs concurrently.

        ``entries`` lists ``(logical, physical_or_None, responder_hops)``
        per visit; every scan is issued in one
        :meth:`~repro.sim.resilience.ResilientChannel.rpc_many` batch
        carrying the shared level-entry ``budget`` as its limit.
        Returns ``(found, physical, hops, status, scan_truncated,
        coop_hit)`` per entry, in entry order — message accounting,
        failure ladder, and result forwarding identical to
        ``len(entries)`` sequential :meth:`_visit` calls, only
        overlapped in time.  ``consult`` marks every scan of the level
        as a cooperative path-cache consult (never set for the root
        level).
        """
        sender = root_physical  # level dispatch always goes through the root
        prepared: list[tuple[int, int | None, int, tuple[list[FoundObject], str] | None]] = []
        for logical, physical, responder_hops in entries:
            target, extra_hops, decided = self._resolve_target(
                query, budget, origin, logical, physical, root_physical
            )
            prepared.append((logical, target, responder_hops + extra_hops, decided))
        calls: list[RpcCall] = []
        slots: list[int] = []
        for slot, (logical, target, _, decided) in enumerate(prepared):
            if decided is not None:
                continue
            payload = {
                "namespace": self.index.namespace,
                "logical": logical,
                "keywords": query,
                "limit": budget,
            }
            if consult:
                payload["consult"] = True
            calls.append(RpcCall(sender, target, "hindex.scan", payload))
            slots.append(slot)
        outcomes = dict(zip(slots, self.channel.rpc_many(calls))) if calls else {}
        level: list[tuple[list[FoundObject], int, int, str, bool, bool]] = []
        for slot, (logical, target, hops, decided) in enumerate(prepared):
            physical = target if target is not None else self._physical_of(logical)
            if decided is not None:
                found, status = decided
                level.append((found, physical, hops, status, False, False))
                continue
            outcome = outcomes[slot]
            scan_truncated = False
            coop_hit = False
            status = "ok"
            if outcome.ok:
                reply = outcome.value
                if run is not None and "epoch" in reply:
                    run.epochs[physical] = reply["epoch"]
                if reply.get("cache_hit"):
                    found = [
                        FoundObject(object_id, entry_keywords)
                        for object_id, entry_keywords in reply["results"]
                    ]
                    coop_hit = True
                else:
                    found, scan_truncated = self._decode_scan(reply)
            elif isinstance(outcome.error, PeerUnreachableError):
                found, status, new_physical, extra_hops = self._failure_ladder(
                    sender, logical, query, budget, outcome.error
                )
                if new_physical is not None:
                    physical = new_physical
                hops += extra_hops
            else:
                raise outcome.error
            self._notify_requester(physical, origin, found)
            level.append((found, physical, hops, status, scan_truncated, coop_hit))
        return level

    def _cooperative_fill(
        self, run: _TraversalRun, query: frozenset[str], root_logical: int, root_physical: int
    ) -> int:
        """Offer each interior node of a completed walk the aggregate
        results of its own subtree, in one batched ``hindex.cache_put``
        round (docs/protocol.md §16).

        Only sound after a *complete, non-degraded* walk: completeness
        means no scan was limit-cut and no subtree was left undescended,
        so the per-node aggregates really are each subtree's full answer.
        Only the root's *direct children* are filled: their subtrees
        partition the walk below the root, so a later walk whose root
        entry was evicted re-covers the whole answer in 1 + (number of
        children) visits — while adding only O(r) entries per query to
        the cluster's caches.  Filling every interior node was measured
        to thrash the shared per-physical caches (each walk would add
        O(2^z) entries, evicting the root entries that carry the hit
        rate).  Also skipped per target: nodes that answered from their
        own path cache (they already hold the aggregate), degraded /
        replica visits (the fill would land on a host that did not
        serve the scan), single-node subtrees (caching a node's own
        scan saves nothing the root cache does not), and hosts that
        reported no coherence epoch.  Each fill carries the epoch its
        host reported with its scan, so a write racing the walk
        invalidates first and the stale fill is rejected (see
        :meth:`~repro.core.index.IndexShard.cache_put`).  Best-effort:
        failed RPCs are ignored.  Returns the number of fills
        dispatched.
        """
        calls: list[RpcCall] = []
        for visit in run.visits:
            w = visit.logical
            if (
                w == root_logical
                or visit.depth != 1
                or w in run.coop_hits
                or visit.status != "ok"
            ):
                continue
            d = run.bounds.get(w)
            if d is None:
                continue
            if not any(True for i in self._descending_zero_dims(w, d)):
                continue  # leaf subtree: just w itself
            epoch = run.epochs.get(visit.physical)
            if epoch is None:
                continue
            # Subtree of w under bound d: supersets of w whose extra
            # bits all lie below d — exactly the nodes the walk reached
            # (or pruned via a path-cache hit) beneath w.
            subtree = [
                inner
                for inner in run.visits
                if inner.logical & w == w and (inner.logical & ~w) >> d == 0
            ]
            aggregated = [
                found
                for inner in subtree
                for found in run.by_logical.get(inner.logical, ())
            ]
            calls.append(
                RpcCall(
                    root_physical,
                    visit.physical,
                    "hindex.cache_put",
                    {
                        "namespace": self.index.namespace,
                        "logical": w,
                        "keywords": query,
                        "results": [(f.object_id, f.keywords) for f in aggregated],
                        "complete": True,
                        "epoch": epoch,
                        # Admission-controlled: never displaces a demand
                        # entry at the receiving node.
                        "speculative": True,
                    },
                )
            )
        if calls:
            self.channel.rpc_many(calls)  # best-effort; outcomes unchecked
        return len(calls)

    def _surrogate_visit(
        self, sender: int, logical: int, query: frozenset[str], remaining: int | None
    ) -> tuple[list[FoundObject], int | None, int]:
        """Last-resort fallback: re-resolve the logical node through DHT
        surrogate routing and scan whichever live node stands in for it.
        The surrogate's table may lack the dead host's entries — the
        visit completes, possibly with fewer results.  Returns
        (found, surrogate address or None, extra hops paid)."""
        try:
            # refresh=True: never answer from the placement cache here —
            # the cached owner is the node that just failed to answer.
            route = self.index.mapping.route_to(logical, origin=sender, refresh=True)
            found, _, _ = self._scan_rpc(
                sender, route.owner, self.index.namespace, logical, query, remaining
            )
        except (PeerUnreachableError, RuntimeError):
            return [], None, 0
        return found, route.owner, route.hops

    def _scan_rpc(
        self,
        sender: int,
        physical: int,
        namespace: str,
        logical: int,
        query: frozenset[str],
        remaining: int | None,
        *,
        run: _TraversalRun | None = None,
        consult: bool = False,
    ) -> tuple[list[FoundObject], bool, bool]:
        """One hindex.scan request/reply (retried per the channel's
        policy), decoded to (FoundObjects, limit-truncated flag,
        answered-from-path-cache flag).

        ``consult`` asks the scanned node to answer from its cooperative
        path cache when it holds a complete subtree aggregate that fits
        the limit.  ``run`` records the coherence epoch the host reports,
        for the epoch-guarded cache fills issued after the walk.
        """
        payload = {
            "namespace": namespace,
            "logical": logical,
            "keywords": query,
            "limit": remaining,
        }
        if consult:
            payload["consult"] = True
        reply = self.channel.rpc(sender, physical, "hindex.scan", payload)
        if run is not None and "epoch" in reply:
            run.epochs[physical] = reply["epoch"]
        if reply.get("cache_hit"):
            found = [
                FoundObject(object_id, entry_keywords)
                for object_id, entry_keywords in reply["results"]
            ]
            return found, False, True
        found, truncated = self._decode_scan(reply)
        return found, truncated, False

    @staticmethod
    def _decode_scan(reply: dict) -> tuple[list[FoundObject], bool]:
        """Decode one hindex.scan reply to (FoundObjects, truncated).

        ``matches`` arrives as a
        :class:`~repro.net.codec.PostingList` of ``(frozenset[str],
        tuple[str, ...])`` rows whatever the medium: in-process it is
        the shard's own list, over sockets the binary codec ships it in
        its flat posting-set form and reconstitutes the same rows — so
        this decode (and the level-batched ``rpc_many`` walk that
        funnels through it) is medium-agnostic.
        """
        found = [
            FoundObject(object_id, entry_keywords)
            for entry_keywords, object_ids in reply["matches"]
            for object_id in object_ids
        ]
        return found, bool(reply.get("truncated", False))

    def _visit_fallback(
        self, sender: int, logical: int, query: frozenset[str], remaining: int | None
    ) -> list[FoundObject] | None:
        """Hook for replicated indexes: produce the visit's results from
        a replica when the primary node is unreachable.  The base search
        has no replicas, so there is no fallback."""
        return None

    def _physical_of(self, logical: int) -> int:
        return self.index.mapping.physical_owner(logical)

    @staticmethod
    def _descending_zero_dims(node: int, dimension: int) -> Iterator[int]:
        for i in range(dimension - 1, -1, -1):
            if not (node >> i) & 1:
                yield i


@dataclass(frozen=True)
class PrefixSearchResult:
    """Outcome of one prefix query (docs/protocol.md §17).

    A prefix query is a directory resolution followed by one superset
    expansion per matched keyword.  ``matched_keywords`` are the full
    keywords the directory enumerated for the prefix;
    ``expanded_keywords`` the subset actually expanded before the
    result budget ran out.  ``objects`` are deduplicated across
    expansions and ranked general-first by extra-keyword count — the
    same Lemma 3.2 ordering single-keyword search uses.

    ``directory_messages`` counts only the ``pfx.node`` fetches of the
    resolution (the quantity that must scale with matches, not
    vocabulary); ``messages`` counts every transport message the whole
    query sent.  ``complete`` is True iff the resolution enumerated
    every match and every expansion finished unclipped.
    """

    prefix: str
    threshold: int | None
    matched_keywords: tuple[str, ...]
    expanded_keywords: tuple[str, ...]
    objects: tuple[FoundObject, ...]
    complete: bool
    directory_messages: int
    messages: int
    rounds: int
    cache_hits: int
    trace: QueryTrace | None = field(default=None, compare=False, repr=False)

    @property
    def object_ids(self) -> tuple[str, ...]:
        return tuple(found.object_id for found in self.objects)

    def results(self) -> tuple[str, ...]:
        """The matching object IDs (shared search-result accessor)."""
        return self.object_ids


class PrefixSearch:
    """Expansion-bounded prefix query planner.

    Resolves a prefix against a :class:`~repro.prefix.directory.KeywordDirectory`,
    then expands each matched keyword through the ordinary superset
    machinery (so replication, caching, admission control, and
    degradation all apply per expansion).  The caller's ``threshold``
    is one shared budget: each expansion asks only for what earlier
    expansions have not already produced, and expansion stops once the
    budget is spent.  ``max_expansions`` bounds how many keywords the
    directory enumerates in the first place — the guard against a
    one-letter prefix fanning out over the whole vocabulary.
    """

    def __init__(self, directory, searcher: SuperSetSearch):
        self.directory = directory
        self.searcher = searcher

    def run(
        self,
        prefix: str,
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool = False,
        trace: bool = False,
        max_expansions: int | None = None,
    ) -> PrefixSearchResult:
        if threshold is not None and threshold < 1:
            raise ValueError(f"threshold must be >= 1 or None, got {threshold}")
        if max_expansions is not None and max_expansions < 1:
            raise ValueError(
                f"max_expansions must be >= 1 or None, got {max_expansions}"
            )
        canonical = normalize_prefix(prefix)
        dolr = self.searcher.index.dolr
        origin = dolr.any_address() if origin is None else origin

        recorder = TraceRecorder(clock=dolr.network.now) if trace else None
        scope = recording(recorder) if recorder is not None else nullcontext()
        with scope, dolr.network.trace() as window:
            resolution = self.directory.resolve(
                canonical, origin=origin, limit=max_expansions
            )
            if recorder is not None:
                recorder.emit(
                    "prefix_resolve",
                    prefix=canonical,
                    matched=sorted(resolution.keywords),
                    directory_messages=resolution.messages,
                    nodes_visited=resolution.nodes_visited,
                    truncated=resolution.truncated,
                    degraded=resolution.degraded,
                )
            matched = tuple(sorted(resolution.keywords))
            complete = resolution.complete
            # objects found so far: object_id -> (specificity, arrival, found)
            merged: dict[str, tuple[int, int, FoundObject]] = {}
            expanded: list[str] = []
            remaining = threshold
            rounds = 1
            cache_hits = 0
            for keyword in matched:
                if remaining is not None and remaining <= 0:
                    # Budget spent with matches left unexpanded.
                    complete = False
                    break
                sub = self.searcher.run(
                    [keyword],
                    remaining,
                    origin=origin,
                    order=order,
                    use_cache=use_cache,
                    trace=False,
                )
                expanded.append(keyword)
                rounds += sub.rounds
                cache_hits += 1 if sub.cache_hit else 0
                complete = complete and sub.complete
                if recorder is not None:
                    recorder.emit(
                        "prefix_expand",
                        keyword=keyword,
                        returned=len(sub.objects),
                        complete=sub.complete,
                        cache_hit=sub.cache_hit,
                        messages=sub.messages,
                    )
                query = frozenset({keyword})
                new = 0
                for found in sub.objects:
                    specificity = found.specificity(query)
                    previous = merged.get(found.object_id)
                    if previous is None:
                        merged[found.object_id] = (specificity, len(merged), found)
                        new += 1
                    elif specificity < previous[0]:
                        # The object also matches a keyword it is less
                        # specific against — rank by its best match.
                        merged[found.object_id] = (specificity, previous[1], found)
                if remaining is not None:
                    remaining -= new
            ranked = sorted(merged.values(), key=lambda entry: (entry[0], entry[1]))
            objects = tuple(entry[2] for entry in ranked)
            if threshold is not None and len(objects) > threshold:
                objects = objects[:threshold]
                complete = False
            messages = window.message_count

        query_trace: QueryTrace | None = None
        if recorder is not None:
            query_trace = recorder.finish(
                {
                    "prefix": canonical,
                    "threshold": threshold,
                    "order": order.value,
                    "origin": origin,
                    "matched_keywords": list(matched),
                    "results": len(objects),
                    "complete": complete,
                    "directory_messages": resolution.messages,
                    "messages": messages,
                    "rounds": rounds,
                }
            )
        return PrefixSearchResult(
            prefix=canonical,
            threshold=threshold,
            matched_keywords=matched,
            expanded_keywords=tuple(expanded),
            objects=objects,
            complete=complete,
            directory_messages=resolution.messages,
            messages=messages,
            rounds=rounds,
            cache_hits=cache_hits,
            trace=query_trace,
        )
