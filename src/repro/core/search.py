"""Superset search over the hypercube index (Section 3.3).

Given keyword set K and threshold t, return min(t, |O_K|) objects whose
keyword sets contain K.  By Lemma 3.1 the search space is the
subhypercube induced by ``F_h(K)``; the protocol explores its spanning
binomial tree so results arrive ordered by how many *extra* keywords
they carry (Lemma 3.2).

Three traversal orders are provided:

* ``TOP_DOWN`` — the paper's T_QUERY protocol, verbatim: the root keeps
  a FIFO queue ``U`` of ``(node, dimension)`` pairs, sends one query at
  a time, and every queried node w returns its matches (directly to the
  requester) plus its continuation list
  ``L = {(x, i) | i < d, i ∈ Zero(w)}`` — exactly the children of w in
  the induced spanning binomial tree.  General objects come back first.
* ``BOTTOM_UP`` — the variant sketched in Section 3.3: levels of the
  tree are visited deepest-first, so the most specific objects come
  back first.
* ``PARALLEL`` — Section 3.5's speed-up: all nodes of a tree level are
  queried in one round, reducing time complexity from
  ``2**(r-|One|)`` to ``r - |One|`` rounds at the same message cost.

Contact modes: ``direct`` assumes the root reaches tree nodes by their
cached physical contacts (Section 3.4 observes each hypercube message
maps to one DHT message); ``routed`` pays a full DHT lookup per contact
instead.

Failure handling: scans go through the index's
:class:`~repro.sim.resilience.ResilientChannel`, so a visit to a flaky
node is retried per the channel's policy.  When the channel is
resilient (or ``skip_unreachable`` is set) a visit whose retries are
exhausted *degrades* instead of aborting the search: the searcher falls
back to DHT surrogate routing (the stand-in node may hold nothing, but
the traversal continues) and the visit is reported in
:attr:`SearchResult.degraded_visits` with status ``surrogate`` or
``failed`` — the fault-tolerance behaviour Section 3.4 calls for.
"""

from __future__ import annotations

import enum
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords
from repro.net.errors import PeerUnreachableError
from repro.obs.trace import QueryTrace, TraceRecorder, active_recorder, recording
from repro.sim.resilience import ResilientChannel
from repro.hypercube.sbt import SpanningBinomialTree
from repro.util import bitops

__all__ = ["FoundObject", "NodeVisit", "SearchResult", "SuperSetSearch", "TraversalOrder"]


class TraversalOrder(enum.Enum):
    """How the spanning binomial tree is explored."""

    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class FoundObject:
    """One matching object with the keyword set it is indexed under."""

    object_id: str
    keywords: frozenset[str]

    def extra_keywords(self, query: frozenset[str]) -> frozenset[str]:
        """Keywords beyond the query — the refinement hints Section 1
        proposes returning alongside sampled objects."""
        return self.keywords - query

    def specificity(self, query: frozenset[str]) -> int:
        """Number of extra keywords (the ranking signal of Lemma 3.2)."""
        return len(self.keywords - query)


@dataclass(frozen=True)
class NodeVisit:
    """One visited tree node, in visit order.

    ``status`` is ``"ok"`` for a normal visit; ``"replica"`` when a
    replicated index served it from a secondary copy (full data);
    ``"surrogate"`` when the node's primary host was unreachable and the
    scan was served by the DHT surrogate (whose table may be missing the
    dead host's entries); ``"failed"`` when no host could be reached at
    all.  The last two are *degraded*: results may be incomplete.
    """

    order: int
    logical: int
    physical: int
    depth: int
    returned: int
    dht_hops: int
    status: str = "ok"

    @property
    def degraded(self) -> bool:
        return self.status in ("surrogate", "failed")


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one superset search."""

    query: frozenset[str]
    threshold: int | None
    order: TraversalOrder
    root_logical: int
    root_physical: int
    objects: tuple[FoundObject, ...]
    visits: tuple[NodeVisit, ...]
    complete: bool
    messages: int
    rounds: int
    cache_hit: bool
    # The per-query event trace, when the search ran with tracing on
    # (excluded from equality: two identical searches differ only in
    # event timestamps).
    trace: QueryTrace | None = field(default=None, compare=False, repr=False)

    @property
    def object_ids(self) -> tuple[str, ...]:
        return tuple(found.object_id for found in self.objects)

    def results(self) -> tuple[str, ...]:
        """The matching object IDs — the accessor shared by every search
        result type (:class:`SearchResult`, :class:`~repro.core.index.PinResult`,
        :class:`~repro.core.decomposed.DecomposedSearchResult`)."""
        return self.object_ids

    @property
    def degraded_visits(self) -> tuple[NodeVisit, ...]:
        """Visits that could not be served by their primary host (their
        entries may be missing from ``objects``)."""
        return tuple(visit for visit in self.visits if visit.degraded)

    @property
    def degraded(self) -> bool:
        """True when at least one visit was served degraded, i.e. the
        result is complete only with respect to the reachable index."""
        return any(visit.degraded for visit in self.visits)

    @property
    def logical_nodes_contacted(self) -> int:
        """Distinct hypercube nodes contacted — the paper's cost metric."""
        return len({visit.logical for visit in self.visits})

    @property
    def physical_nodes_contacted(self) -> int:
        return len({visit.physical for visit in self.visits})

    def nodes_contacted_for_recall(self, fraction: float, total_matching: int) -> int:
        """Visits needed before ``fraction`` of ``total_matching`` objects
        had been returned — the x-axis/y-axis relation of Figure 8."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        needed = fraction * total_matching
        if needed <= 0:
            return 0  # a recall of nothing needs no visits
        collected = 0
        for count, visit in enumerate(self.visits, start=1):
            collected += visit.returned
            if collected >= needed:
                return count
        return len(self.visits)


class SuperSetSearch:
    """Executor for superset searches against a :class:`HypercubeIndex`."""

    def __init__(
        self,
        index: HypercubeIndex,
        *,
        contact_mode: str = "direct",
        skip_unreachable: bool = False,
        channel: ResilientChannel | None = None,
    ):
        if contact_mode not in ("direct", "routed"):
            raise ValueError(f"contact_mode must be 'direct' or 'routed', got {contact_mode!r}")
        self.index = index
        self.contact_mode = contact_mode
        self.skip_unreachable = skip_unreachable
        # None means "follow the DOLR network's channel" (resolved per
        # call, so a later configure_resilience() is picked up).
        self._channel = channel

    @property
    def channel(self) -> ResilientChannel:
        """The messaging channel scans go through."""
        return self._channel if self._channel is not None else self.index.dolr.channel

    @property
    def degrades(self) -> bool:
        """Whether an unreachable visit degrades instead of raising."""
        return self.skip_unreachable or self.channel.resilient

    # -- public API -----------------------------------------------------

    def run(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
        use_cache: bool = False,
        trace: bool = False,
    ) -> SearchResult:
        """Execute one superset search and return its full trace.

        With ``trace=True`` a :class:`~repro.obs.trace.TraceRecorder` is
        active for the duration of the query and the returned result
        carries a :class:`~repro.obs.trace.QueryTrace` accounting for
        every event down to individual transport messages.  Tracing
        changes no message, clock, or RNG behaviour: the result is
        byte-identical either way.
        """
        if threshold is not None and threshold < 1:
            raise ValueError(f"threshold must be >= 1 or None, got {threshold}")
        query = normalize_keywords(keywords)
        index = self.index
        dolr = index.dolr
        origin = dolr.any_address() if origin is None else origin
        root_logical = index.mapper.node_for(query)

        recorder = TraceRecorder(clock=dolr.network.now) if trace else None
        scope = recording(recorder) if recorder is not None else nullcontext()
        with scope, dolr.network.trace() as window:
            if recorder is not None:
                recorder.emit(
                    "query",
                    query=sorted(query),
                    threshold=threshold,
                    order=order.value,
                    origin=origin,
                    root_logical=root_logical,
                    use_cache=use_cache,
                )
            route = index.mapping.route_to(root_logical, origin=origin)
            root_physical = route.owner

            if use_cache:
                cached = dolr.rpc_at(
                    origin,
                    root_physical,
                    "hindex.cache_get",
                    {
                        "namespace": index.namespace,
                        "logical": root_logical,
                        "keywords": query,
                        "threshold": threshold,
                    },
                )
                if recorder is not None:
                    recorder.emit(
                        "cache_get",
                        logical=root_logical,
                        hit=bool(cached["hit"]),
                        complete=bool(cached.get("complete", False)),
                        returned=len(cached.get("results", ())),
                    )
                if cached["hit"]:
                    objects = tuple(
                        FoundObject(obj, keywords) for obj, keywords in cached["results"]
                    )
                    if threshold is not None:
                        objects = objects[:threshold]
                    visit = NodeVisit(0, root_logical, root_physical, 0, len(objects), route.hops)
                    return self._finish(
                        recorder,
                        query=query,
                        threshold=threshold,
                        order=order,
                        origin=origin,
                        root_logical=root_logical,
                        root_physical=root_physical,
                        objects=objects,
                        visits=(visit,),
                        complete=bool(cached["complete"]),
                        messages=window.message_count,
                        rounds=1,
                        cache_hit=True,
                    )

            walker = {
                TraversalOrder.TOP_DOWN: self._walk_top_down,
                TraversalOrder.BOTTOM_UP: self._walk_bottom_up,
                TraversalOrder.PARALLEL: self._walk_parallel,
            }[order]
            objects, visits, complete, rounds = walker(
                query, threshold, origin, root_logical, root_physical, route.hops
            )

            if use_cache:
                # A walk with degraded visits (surrogate/failed) may be
                # missing results the dead hosts held: caching it would
                # poison the root's cache with a possibly-incomplete set
                # served as authoritative long after the hosts recover.
                degraded = any(visit.degraded for visit in visits)
                if not degraded:
                    stored = dolr.rpc_at(
                        root_physical,
                        root_physical,
                        "hindex.cache_put",
                        {
                            "namespace": index.namespace,
                            "logical": root_logical,
                            "keywords": query,
                            "results": [(f.object_id, f.keywords) for f in objects],
                            "complete": complete,
                        },
                    )
                if recorder is not None:
                    recorder.emit(
                        "cache_put",
                        logical=root_logical,
                        size=len(objects),
                        complete=complete,
                        stored=bool(stored["stored"]) if not degraded else False,
                        skipped_degraded=degraded,
                    )
            messages = window.message_count

        return self._finish(
            recorder,
            query=query,
            threshold=threshold,
            order=order,
            origin=origin,
            root_logical=root_logical,
            root_physical=root_physical,
            objects=tuple(objects),
            visits=tuple(visits),
            complete=complete,
            messages=messages,
            rounds=rounds,
            cache_hit=False,
        )

    @staticmethod
    def _finish(
        recorder: TraceRecorder | None,
        *,
        query: frozenset[str],
        threshold: int | None,
        order: TraversalOrder,
        origin: int,
        root_logical: int,
        root_physical: int,
        objects: tuple[FoundObject, ...],
        visits: tuple[NodeVisit, ...],
        complete: bool,
        messages: int,
        rounds: int,
        cache_hit: bool,
    ) -> SearchResult:
        """Assemble the result, freezing the trace when one was kept."""
        query_trace: QueryTrace | None = None
        if recorder is not None:
            query_trace = recorder.finish(
                {
                    "query": sorted(query),
                    "threshold": threshold,
                    "order": order.value,
                    "origin": origin,
                    "root_logical": root_logical,
                    "root_physical": root_physical,
                    "results": len(objects),
                    "complete": complete,
                    "messages": messages,
                    "rounds": rounds,
                    "cache_hit": cache_hit,
                }
            )
        return SearchResult(
            query=query,
            threshold=threshold,
            order=order,
            root_logical=root_logical,
            root_physical=root_physical,
            objects=objects,
            visits=visits,
            complete=complete,
            messages=messages,
            rounds=rounds,
            cache_hit=cache_hit,
            trace=query_trace,
        )

    # -- traversals -----------------------------------------------------

    def _walk_top_down(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
    ) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        """The paper's T_QUERY protocol.

        The queue ``U`` holds ``(node, d)`` pairs; popping FIFO yields a
        breadth-first walk of ``SBT_{H_r}(root)``.  The continuation
        list a visited node w would return is
        ``{(neighbour_i(w), i) | i < d, i ∈ Zero(w)}`` — computed here
        from w's identifier, which root knows (the bits are the message
        content either way).
        """
        dimension = self.index.cube.dimension
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []

        remaining = threshold
        truncated = False

        # Root examines its own table first (the initial T_QUERY).
        returned, hops, status, scan_truncated = self._visit(
            query, remaining, origin, root_logical, root_physical, responder_hops=root_hops
        )
        objects.extend(returned)
        self._record_visit(visits, root_logical, root_physical, 0, len(returned), hops, status)

        queue: deque[tuple[int, int]] = deque(
            (root_logical | (1 << i), i)
            for i in self._descending_zero_dims(root_logical, dimension)
        )
        if remaining is not None:
            remaining -= len(returned)
            if remaining <= 0:
                # The root alone satisfied the threshold.  The search is
                # still *complete* when nothing was left unexplored: no
                # SBT children to descend into and the root's own scan
                # was not cut short by the limit.
                return objects, visits, not queue and not scan_truncated, len(visits)

        while queue:
            w, d = queue.popleft()
            returned, hops, status, scan_truncated = self._visit(
                query, remaining, origin, w, None, via=root_physical
            )
            physical = self._physical_of(w)
            objects.extend(returned)
            self._record_visit(
                visits, w, physical, bitops.popcount(w ^ root_logical), len(returned), hops, status
            )
            continuation = [
                (w | (1 << i), i)
                for i in self._descending_zero_dims(w, dimension)
                if i < d
            ]
            if remaining is not None:
                remaining -= len(returned)
                if remaining <= 0:
                    # w answers T_STOP; root drops U.  Unexplored work —
                    # queued pairs, w's own children, or a limit-cut
                    # scan — is what makes the result incomplete.
                    truncated = bool(queue) or bool(continuation) or scan_truncated
                    break
            queue.extend(continuation)
        return objects, visits, not truncated, len(visits)

    def _walk_bottom_up(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
    ) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        """Deepest level first: most specific objects returned first."""
        tree = SpanningBinomialTree.induced(self.index.cube, root_logical)
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []
        remaining = threshold
        truncated = False
        first = True
        for node, depth in tree.bfs_bottom_up():
            hops_for = root_hops if first else 0
            returned, hops, status, _ = self._visit(
                query,
                remaining,
                origin,
                node,
                root_physical if node == root_logical else None,
                via=root_physical,
                responder_hops=hops_for,
            )
            first = False
            objects.extend(returned)
            self._record_visit(
                visits, node, self._physical_of(node), depth, len(returned), hops, status
            )
            if remaining is not None:
                remaining -= len(returned)
                if remaining <= 0:
                    truncated = True
                    break
        return objects, visits, not truncated, len(visits)

    def _walk_parallel(
        self,
        query: frozenset[str],
        threshold: int | None,
        origin: int,
        root_logical: int,
        root_physical: int,
        root_hops: int,
    ) -> tuple[list[FoundObject], list[NodeVisit], bool, int]:
        """Level-synchronized top-down: whole tree levels are queried per
        round, so a round that crosses the threshold still pays for its
        entire level (the latency/message trade of Section 3.5)."""
        tree = SpanningBinomialTree.induced(self.index.cube, root_logical)
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []
        remaining = threshold
        truncated = False
        rounds = 0
        for depth in range(tree.height + 1):
            level_nodes = list(tree.level(depth))
            if not level_nodes:
                continue
            rounds += 1
            for node in level_nodes:
                returned, hops, status, _ = self._visit(
                    query,
                    remaining,
                    origin,
                    node,
                    root_physical if node == root_logical else None,
                    via=root_physical,
                    responder_hops=root_hops if depth == 0 else 0,
                )
                objects.extend(returned)
                self._record_visit(
                    visits, node, self._physical_of(node), depth, len(returned), hops, status
                )
                if remaining is not None:
                    remaining -= len(returned)
            if remaining is not None and remaining <= 0:
                truncated = True
                break
        return objects, visits, not truncated, rounds

    # -- mechanics --------------------------------------------------------

    @staticmethod
    def _record_visit(
        visits: list[NodeVisit],
        logical: int,
        physical: int,
        depth: int,
        returned: int,
        hops: int,
        status: str,
    ) -> NodeVisit:
        """Append one visit record and mirror it onto the active trace.

        The trace side is a bare append of the NodeVisit itself — the
        recorder materializes the event lazily (see repro.obs.trace).
        """
        visit = NodeVisit(len(visits), logical, physical, depth, returned, hops, status)
        visits.append(visit)
        recorder = active_recorder()
        if recorder is not None:
            recorder.raw.append(visit)
        return visit

    def _visit(
        self,
        query: frozenset[str],
        remaining: int | None,
        origin: int,
        logical: int,
        physical: int | None,
        *,
        via: int | None = None,
        responder_hops: int = 0,
    ) -> tuple[list[FoundObject], int, str, bool]:
        """Deliver one T_QUERY to ``logical`` and collect its matches.

        Returns (found objects, DHT hops paid, visit status, whether the
        scan was cut short by the result limit — i.e. the node holds
        more matches than it returned).  Matches are also forwarded
        directly to the requester, as the protocol specifies (one extra
        message when non-empty).

        Failure ladder, once the channel's retries are exhausted:
        replica fallback (:meth:`_visit_fallback`, for replicated
        indexes), then — when :attr:`degrades` — a re-resolution through
        DHT surrogate routing, then a ``failed`` (empty) visit.  Only a
        non-degrading searcher propagates the error, the legacy
        behaviour of ``skip_unreachable=False`` over a plain channel.
        """
        dolr = self.index.dolr
        metrics = dolr.network.metrics
        hops = responder_hops
        status = "ok"
        scan_truncated = False
        sender = via if via is not None else origin
        if physical is None:
            if self.contact_mode == "routed":
                try:
                    route = self.index.mapping.route_to(logical, origin=via)
                except (PeerUnreachableError, RuntimeError):
                    if not self.degrades:
                        raise
                    metrics.increment("search.degraded_visits")
                    return [], hops, "failed", False
                physical = route.owner
                hops += route.hops
            else:
                physical = self._physical_of(logical)
        try:
            found, scan_truncated = self._scan_rpc(
                sender, physical, self.index.namespace, logical, query, remaining
            )
        except PeerUnreachableError:
            fallback = self._visit_fallback(sender, logical, query, remaining)
            if fallback is not None:
                found = fallback
                status = "replica"
            elif self.degrades:
                found, surrogate, extra_hops = self._surrogate_visit(
                    sender, logical, query, remaining
                )
                if surrogate is None:
                    status = "failed"
                else:
                    status = "surrogate"
                    physical = surrogate
                    hops += extra_hops
                    metrics.increment("search.surrogate_visits")
                metrics.increment("search.degraded_visits")
            else:
                raise
        if found and physical != origin:
            dolr.network.send(
                physical, origin, "hindex.results", {"count": len(found)}, deliver=False
            )
        return found, hops, status, scan_truncated

    def _surrogate_visit(
        self, sender: int, logical: int, query: frozenset[str], remaining: int | None
    ) -> tuple[list[FoundObject], int | None, int]:
        """Last-resort fallback: re-resolve the logical node through DHT
        surrogate routing and scan whichever live node stands in for it.
        The surrogate's table may lack the dead host's entries — the
        visit completes, possibly with fewer results.  Returns
        (found, surrogate address or None, extra hops paid)."""
        try:
            # refresh=True: never answer from the placement cache here —
            # the cached owner is the node that just failed to answer.
            route = self.index.mapping.route_to(logical, origin=sender, refresh=True)
            found, _ = self._scan_rpc(
                sender, route.owner, self.index.namespace, logical, query, remaining
            )
        except (PeerUnreachableError, RuntimeError):
            return [], None, 0
        return found, route.owner, route.hops

    def _scan_rpc(
        self,
        sender: int,
        physical: int,
        namespace: str,
        logical: int,
        query: frozenset[str],
        remaining: int | None,
    ) -> tuple[list[FoundObject], bool]:
        """One hindex.scan request/reply (retried per the channel's
        policy), decoded to (FoundObjects, limit-truncated flag)."""
        reply = self.channel.rpc(
            sender,
            physical,
            "hindex.scan",
            {
                "namespace": namespace,
                "logical": logical,
                "keywords": query,
                "limit": remaining,
            },
        )
        found = [
            FoundObject(object_id, entry_keywords)
            for entry_keywords, object_ids in reply["matches"]
            for object_id in object_ids
        ]
        return found, bool(reply.get("truncated", False))

    def _visit_fallback(
        self, sender: int, logical: int, query: frozenset[str], remaining: int | None
    ) -> list[FoundObject] | None:
        """Hook for replicated indexes: produce the visit's results from
        a replica when the primary node is unreachable.  The base search
        has no replicas, so there is no fallback."""
        return None

    def _physical_of(self, logical: int) -> int:
        return self.index.mapping.physical_owner(logical)

    @staticmethod
    def _descending_zero_dims(node: int, dimension: int) -> Iterator[int]:
        for i in range(dimension - 1, -1, -1):
            if not (node >> i) & 1:
                yield i
