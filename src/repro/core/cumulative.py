"""Cumulative superset search (Sections 2.2 and 3.3).

"Superset search can be designated as *cumulative*, where the results
returned by consecutive searches with the same keyword set must be
different" — the browse-through-pages behaviour of large information
systems.  The paper implements it by letting the root node keep the
frontier queue ``U`` between queries; a session object plays that role
here: each :meth:`next_batch` resumes the T_QUERY walk exactly where the
previous one stopped, including mid-node (a node whose scan was
truncated is re-scanned and its already-served prefix skipped).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.index import HypercubeIndex
from repro.core.keywords import normalize_keywords
from repro.core.search import FoundObject, NodeVisit
from repro.util import bitops

__all__ = ["CumulativeBatch", "CumulativeSearchSession"]


@dataclass(frozen=True)
class CumulativeBatch:
    """One page of results from a cumulative session."""

    objects: tuple[FoundObject, ...]
    visits: tuple[NodeVisit, ...]
    exhausted: bool


class CumulativeSearchSession:
    """A stateful superset search rooted at ``F_h(K)``.

    State kept across batches (conceptually at the root node): the FIFO
    queue ``U``, the node currently being drained, and how many of its
    objects have been served.
    """

    def __init__(
        self,
        index: HypercubeIndex,
        keywords: Iterable[str],
        *,
        origin: int | None = None,
    ):
        self.index = index
        self.query = normalize_keywords(keywords)
        self.origin = index.dolr.any_address() if origin is None else origin
        self.root_logical = index.mapper.node_for(self.query)
        route = index.mapping.route_to(self.root_logical, origin=self.origin)
        self.root_physical = route.owner
        dimension = index.cube.dimension
        self._queue: deque[tuple[int, int]] = deque([(self.root_logical, dimension)])
        self._current: tuple[int, int] | None = None
        self._served_of_current = 0
        self._exhausted = False
        self._visit_counter = 0
        self._total_served = 0

    @property
    def exhausted(self) -> bool:
        """True once the whole subhypercube has been drained."""
        return self._exhausted

    @property
    def total_served(self) -> int:
        return self._total_served

    def next_batch(self, count: int) -> CumulativeBatch:
        """Serve the next ``count`` objects (fewer iff exhausted)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        objects: list[FoundObject] = []
        visits: list[NodeVisit] = []
        while len(objects) < count and not self._exhausted:
            if self._current is None:
                if not self._queue:
                    self._exhausted = True
                    break
                self._current = self._queue.popleft()
                self._served_of_current = 0
            node, d = self._current
            need = count - len(objects)
            found, drained = self._scan_node(node, self._served_of_current, need)
            objects.extend(found)
            self._served_of_current += len(found)
            self._total_served += len(found)
            visits.append(
                NodeVisit(
                    self._visit_counter,
                    node,
                    self.index.mapping.physical_owner(node),
                    bitops.popcount(node ^ self.root_logical),
                    len(found),
                    0,
                )
            )
            self._visit_counter += 1
            if drained:
                self._enqueue_children(node, d)
                self._current = None
        if not self._queue and self._current is None:
            self._exhausted = True
        return CumulativeBatch(tuple(objects), tuple(visits), self._exhausted)

    def drain(self, batch_size: int = 64) -> list[FoundObject]:
        """Serve everything remaining, for tests and small cubes."""
        everything: list[FoundObject] = []
        while not self._exhausted:
            batch = self.next_batch(batch_size)
            everything.extend(batch.objects)
            if not batch.objects and batch.exhausted:
                break
        return everything

    # -- internals ------------------------------------------------------

    def _scan_node(
        self, logical: int, skip: int, need: int
    ) -> tuple[list[FoundObject], bool]:
        """Scan one node, skipping the ``skip`` objects served earlier.

        Returns (newly served objects, node fully drained?).  The skip
        re-reads previously returned IDs — the price of keeping only a
        cursor at the root, as the paper's design implies.
        """
        dolr = self.index.dolr
        physical = self.index.mapping.physical_owner(logical)
        sender = self.root_physical
        reply = dolr.rpc_at(
            sender,
            physical,
            "hindex.scan",
            {
                "namespace": self.index.namespace,
                "logical": logical,
                "keywords": self.query,
                "limit": skip + need,
            },
        )
        flat = [
            FoundObject(object_id, entry_keywords)
            for entry_keywords, object_ids in reply["matches"]
            for object_id in object_ids
        ]
        fresh = flat[skip:]
        drained = not reply["truncated"] and len(flat) <= skip + need
        if fresh and physical != self.origin:
            dolr.network.send(
                physical, self.origin, "hindex.results", {"count": len(fresh)}, deliver=False
            )
        return fresh, drained

    def _enqueue_children(self, node: int, d: int) -> None:
        dimension = self.index.cube.dimension
        for i in range(dimension - 1, -1, -1):
            if i < d and not (node >> i) & 1:
                self._queue.append((node | (1 << i), i))
