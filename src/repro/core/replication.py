"""Index replication through secondary hypercubes (Section 3.4).

"If one wishes, (index) replication can be done in two ways.  One is to
deal with it directly in the index layer, for example, by building a
secondary hypercube."  This module implements exactly that: ``k``
replicas of the index, all sharing the same hypercube geometry and the
same ``F_h`` (so logical placement is identical), but each mapped onto
the DHT through an independently salted ``g_i`` — replica i of logical
node u lives on a different physical peer than replica j, except for
hash coincidences.

Writes (insert/delete) go to every replica.  Reads prefer replica 0
and fail over *per logical node*: when a visited node's primary host
is dead, the same logical node is scanned on the next replica, so one
failure costs nothing — the behaviour the fault-tolerance experiment
quantifies against the unreplicated index.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.index import HypercubeIndex, PinResult
from repro.core.keywords import KeywordSetMapper, normalize_keywords
from repro.core.mapping import HypercubeMapping
from repro.core.search import FoundObject, SearchResult, SuperSetSearch, TraversalOrder
from repro.dht.dolr import DolrNetwork
from repro.hypercube.hypercube import Hypercube
from repro.net.errors import PeerUnreachableError

__all__ = ["ReplicatedHypercubeIndex", "ReplicatedSuperSetSearch"]


class ReplicatedHypercubeIndex:
    """k-way replicated hypercube index over one DOLR network."""

    def __init__(
        self,
        cube: Hypercube,
        dolr: DolrNetwork,
        *,
        replicas: int = 2,
        salt: str = "repl",
        cache_capacity: int = 0,
        cache_factory=None,
        stores=None,
    ):
        """``cache_capacity`` / ``cache_factory`` / ``stores`` are
        forwarded to the underlying :class:`HypercubeIndex` instances —
        all replicas share one :class:`~repro.core.index.IndexShard`
        per physical node (the first construction installs it), so the
        durable backends and caches configured here serve every
        replica's tables."""
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.cube = cube
        self.dolr = dolr
        self.replicas = replicas
        mapper = KeywordSetMapper(cube)
        extra = {}
        if cache_factory is not None:
            extra["cache_factory"] = cache_factory
        self.indexes: list[HypercubeIndex] = [
            HypercubeIndex(
                cube,
                dolr,
                mapper=mapper,
                mapping=HypercubeMapping(cube, dolr, salt=f"{salt}/g{i}"),
                namespace=f"{salt}/r{i}",
                cache_capacity=cache_capacity,
                stores=stores,
                **extra,
            )
            for i in range(replicas)
        ]

    @property
    def primary(self) -> HypercubeIndex:
        return self.indexes[0]

    def invalidate_placement_caches(self) -> None:
        """Drop every replica mapping's memoized ownership — call after
        any membership change, exactly like the single-index case."""
        for index in self.indexes:
            index.mapping.invalidate_placement_cache()

    @property
    def mapper(self) -> KeywordSetMapper:
        return self.primary.mapper

    # -- writes go everywhere ---------------------------------------------

    def insert(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        """Publish and index on every replica.  Returns the number of
        replica writes (0 when a copy already existed)."""
        normalized = normalize_keywords(keywords)
        first_copy = self.dolr.insert(object_id, holder)
        if not first_copy:
            return 0
        logical = self.mapper.node_for(normalized)
        written = 0
        for index in self.indexes:
            self.dolr.route_rpc(
                index.mapping.dht_key(logical),
                "hindex.put",
                {
                    "namespace": index.namespace,
                    "logical": logical,
                    "keywords": sorted(normalized),
                    "object_id": object_id,
                },
                origin=holder,
            )
            index.invalidate_caches(normalized, object_id, "insert", origin=holder)
            written += 1
        return written

    def delete(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        """Withdraw a replica of the object; with the last copy, remove
        the entry from every index replica."""
        normalized = normalize_keywords(keywords)
        last_copy = self.dolr.delete(object_id, holder)
        if not last_copy:
            return 0
        logical = self.mapper.node_for(normalized)
        removed = 0
        for index in self.indexes:
            self.dolr.route_rpc(
                index.mapping.dht_key(logical),
                "hindex.remove",
                {
                    "namespace": index.namespace,
                    "logical": logical,
                    "keywords": sorted(normalized),
                    "object_id": object_id,
                },
                origin=holder,
            )
            index.invalidate_caches(normalized, object_id, "remove", origin=holder)
            removed += 1
        return removed

    def bulk_load(self, items: Iterable[tuple[str, Iterable[str]]]) -> int:
        """Out-of-band bootstrap of all replicas (see
        :meth:`HypercubeIndex.bulk_load`)."""
        materialized = [(oid, normalize_keywords(kw)) for oid, kw in items]
        count = 0
        for index in self.indexes:
            count = index.bulk_load(materialized)
        return count

    # -- reads fail over -----------------------------------------------------

    def pin_search(self, keywords: Iterable[str], *, origin: int | None = None) -> PinResult:
        """Pin search on the first replica whose responsible node is
        reachable."""
        last_error: PeerUnreachableError | None = None
        for index in self.indexes:
            try:
                return index.pin_search(keywords, origin=origin)
            except PeerUnreachableError as error:
                last_error = error
        assert last_error is not None
        raise last_error

    def searcher(self, **kwargs) -> "ReplicatedSuperSetSearch":
        return ReplicatedSuperSetSearch(self, **kwargs)

    def superset_search(
        self,
        keywords: Iterable[str],
        threshold: int | None = None,
        *,
        origin: int | None = None,
        order: TraversalOrder = TraversalOrder.TOP_DOWN,
    ) -> SearchResult:
        return self.searcher().run(keywords, threshold, origin=origin, order=order)


class ReplicatedSuperSetSearch(SuperSetSearch):
    """Superset search with per-logical-node replica failover."""

    def __init__(self, replicated: ReplicatedHypercubeIndex, **kwargs):
        kwargs.setdefault("skip_unreachable", True)
        super().__init__(replicated.primary, **kwargs)
        self.replicated = replicated

    def _resolve_target(
        self,
        query: frozenset[str],
        remaining: int | None,
        origin: int,
        logical: int,
        physical: int | None,
        via: int | None,
    ) -> tuple[int | None, int, tuple[list[FoundObject], str] | None]:
        """Target the primary's true placement owner; when that node is
        dead, settle the visit straight from the replicas.

        This also covers the root visit, where DHT surrogate routing
        would otherwise deliver the query to an empty stand-in node and
        the primary's data loss would go unnoticed.  Because this hook
        is shared by the sequential and the level-batched dispatch
        paths, the replica failover applies identically to PARALLEL
        searches.
        """
        owner = self.index.mapping.physical_owner(logical)
        network = self.index.dolr.network
        if not network.is_alive(owner):
            sender = via if via is not None else origin
            fallback = self._visit_fallback(sender, logical, query, remaining)
            found = fallback or []
            if found and sender != origin:
                network.send(
                    sender, origin, "hindex.results", {"count": len(found)}, deliver=False
                )
            status = "replica" if fallback is not None else "failed"
            if status == "failed":
                network.metrics.increment("search.degraded_visits")
            return None, 0, (found, status)
        return owner, 0, None

    def _visit_fallback(
        self, sender: int, logical: int, query: frozenset[str], remaining: int | None
    ) -> list[FoundObject] | None:
        """Scan the same logical node on the next live replica."""
        for index in self.replicated.indexes[1:]:
            physical = index.mapping.physical_owner(logical)
            try:
                found, _, _ = self._scan_rpc(
                    sender, physical, index.namespace, logical, query, remaining
                )
                return found
            except PeerUnreachableError:
                continue
        return None
