"""Seeded random number generation.

Every stochastic component in the package (corpus generation, query
logs, simulated latency, churn) takes an explicit seed or an explicit
``random.Random`` instance, so experiments are reproducible bit-for-bit.
This module centralizes the conventions.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or None.

    Passing an existing RNG returns it unchanged (shared stream);
    passing ``None`` returns an OS-seeded RNG (non-reproducible, for
    exploratory use only — experiments should always pass a seed).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child RNG from ``parent``, keyed by ``label``.

    Two children with different labels produce independent streams even
    though they share a parent; the parent's own stream is advanced by
    exactly one call, so adding a new child does not perturb siblings
    created before it.
    """
    return random.Random(f"{parent.getrandbits(64)}/{label}")
