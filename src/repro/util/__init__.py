"""Shared low-level utilities: bit operations, stable hashing, RNG, Zipf."""

from repro.util.bitops import (
    bit_string,
    contains,
    hamming_distance,
    highest_set_bit,
    lowest_set_bit,
    one_positions,
    popcount,
    zero_positions,
)
from repro.util.hashing import stable_hash, stable_hash_to_range
from repro.util.rng import make_rng
from repro.util.zipf import ZipfDistribution

__all__ = [
    "ZipfDistribution",
    "bit_string",
    "contains",
    "hamming_distance",
    "highest_set_bit",
    "lowest_set_bit",
    "make_rng",
    "one_positions",
    "popcount",
    "stable_hash",
    "stable_hash_to_range",
    "zero_positions",
]
