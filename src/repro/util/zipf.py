"""Finite Zipf (zeta) distributions.

The paper's motivation rests on keyword frequency following Zipf's law,
and its cache experiment rests on *query* frequency being similarly
skewed (the ten most popular queries account for >60% of daily volume).
This module provides an exact finite Zipf sampler with O(log n) sampling
via inverse-CDF binary search, plus helpers to calibrate the exponent to
a target head mass (e.g. "top 10 items cover 60%").
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from collections.abc import Sequence

from repro.util.rng import make_rng

__all__ = ["ZipfDistribution", "calibrate_exponent_for_head_share"]


class ZipfDistribution:
    """Zipf(-Mandelbrot) distribution over ranks ``1..n``.

    ``P(rank = k) ∝ 1 / (k + q)**s``.  Rank 1 is the most popular item;
    the Mandelbrot offset ``q`` flattens the head (q = 0 recovers plain
    Zipf).  Real keyword fields are Zipfian in the tail but far less
    head-heavy than token streams, so corpus generation uses q > 0.

    >>> z = ZipfDistribution(n=100, s=1.0)
    >>> 0 < z.pmf(1) < 1
    True
    >>> z.sample(random.Random(1)) in range(1, 101)
    True
    """

    def __init__(self, n: int, s: float, *, q: float = 0.0):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if s < 0:
            raise ValueError(f"exponent must be non-negative, got {s}")
        if q < 0:
            raise ValueError(f"offset must be non-negative, got {q}")
        self.n = n
        self.s = s
        self.q = q
        weights = [1.0 / ((k + q) ** s) for k in range(1, n + 1)]
        total = math.fsum(weights)
        self._pmf = [w / total for w in weights]
        self._cdf = list(itertools.accumulate(self._pmf))
        # Guard against floating point drift at the tail.
        self._cdf[-1] = 1.0

    def pmf(self, rank: int) -> float:
        """Return P(rank)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in [1, {self.n}], got {rank}")
        return self._pmf[rank - 1]

    def cdf(self, rank: int) -> float:
        """Return P(X <= rank)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in [1, {self.n}], got {rank}")
        return self._cdf[rank - 1]

    def head_share(self, top: int) -> float:
        """Return the probability mass of the ``top`` most popular ranks."""
        if top <= 0:
            return 0.0
        return self.cdf(min(top, self.n))

    def sample(self, rng: int | random.Random | None = None) -> int:
        """Draw one rank in ``1..n``."""
        rng = make_rng(rng)
        return bisect.bisect_left(self._cdf, rng.random()) + 1

    def sample_many(self, count: int, rng: int | random.Random | None = None) -> list[int]:
        """Draw ``count`` i.i.d. ranks."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = make_rng(rng)
        cdf = self._cdf
        return [bisect.bisect_left(cdf, rng.random()) + 1 for _ in range(count)]

    def expected_counts(self, total: int) -> list[float]:
        """Return the expected number of occurrences of each rank in
        ``total`` draws (rank 1 first)."""
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        return [p * total for p in self._pmf]


def calibrate_exponent_for_head_share(
    n: int,
    top: int,
    target_share: float,
    *,
    tolerance: float = 1e-4,
    max_iterations: int = 200,
) -> float:
    """Find the Zipf exponent ``s`` whose top-``top`` ranks carry
    ``target_share`` of the mass, by bisection.

    Used to calibrate the synthetic query log to the paper's footnote 1:
    the ten most popular queries account for more than 60% of the total
    queries per day.

    >>> s = calibrate_exponent_for_head_share(n=1000, top=10, target_share=0.6)
    >>> abs(ZipfDistribution(1000, s).head_share(10) - 0.6) < 1e-3
    True
    """
    if not 0 < target_share < 1:
        raise ValueError(f"target_share must be in (0, 1), got {target_share}")
    if not 0 < top < n:
        raise ValueError(f"top must be in (0, n), got top={top}, n={n}")

    low, high = 0.0, 1.0
    # Grow the bracket until the head share at `high` exceeds the target.
    while ZipfDistribution(n, high).head_share(top) < target_share:
        high *= 2
        if high > 64:
            raise ValueError(
                f"target head share {target_share} unreachable with n={n}, top={top}"
            )
    for _ in range(max_iterations):
        mid = (low + high) / 2
        share = ZipfDistribution(n, mid).head_share(top)
        if abs(share - target_share) < tolerance:
            return mid
        if share < target_share:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def empirical_head_share(samples: Sequence[int], top: int) -> float:
    """Return the fraction of ``samples`` covered by the ``top`` most
    frequent values — used by tests to validate calibrated streams."""
    if not samples:
        return 0.0
    counts: dict[int, int] = {}
    for value in samples:
        counts[value] = counts.get(value, 0) + 1
    heaviest = sorted(counts.values(), reverse=True)[:top]
    return sum(heaviest) / len(samples)
