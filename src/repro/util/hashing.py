"""Stable, deterministic hashing.

Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so the
index scheme cannot rely on it: the node responsible for a keyword set
must be the same on every peer and across runs.  All hashing in the
package therefore goes through SHA-1 (as in Chord's original design),
optionally domain-separated by a salt so independent hash functions can
be derived from one primitive (the paper needs at least two: ``h`` for
keywords→dimension and ``g`` for hypercube→DHT node).
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_hash", "stable_hash_to_range", "derive_hash_family"]

_MAX_DIGEST_BITS = 160


def stable_hash(data: str | bytes, *, salt: str = "", bits: int = 64) -> int:
    """Hash ``data`` to a ``bits``-bit integer, deterministically.

    ``salt`` domain-separates independent hash functions derived from the
    same SHA-1 primitive.

    >>> stable_hash("chord") == stable_hash("chord")
    True
    >>> stable_hash("chord", salt="a") != stable_hash("chord", salt="b")
    True
    """
    if not 1 <= bits <= _MAX_DIGEST_BITS:
        raise ValueError(f"bits must be in [1, {_MAX_DIGEST_BITS}], got {bits}")
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.sha1(salt.encode("utf-8") + b"\x00" + data).digest()
    return int.from_bytes(digest, "big") >> (_MAX_DIGEST_BITS - bits)


def stable_hash_to_range(data: str | bytes, modulus: int, *, salt: str = "") -> int:
    """Hash ``data`` uniformly into ``{0, ..., modulus - 1}``.

    Uses the full 160-bit digest before reduction, so modulo bias is
    negligible for any practical modulus.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.sha1(salt.encode("utf-8") + b"\x00" + data).digest()
    return int.from_bytes(digest, "big") % modulus


def derive_hash_family(base_salt: str, count: int) -> list[str]:
    """Return ``count`` salts deriving independent hash functions.

    Useful for experiments that average over several random hash
    functions ``h`` (the paper's load results depend on ``h`` only
    through uniformity, so averaging over a family tightens estimates).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [f"{base_salt}/{index}" for index in range(count)]
