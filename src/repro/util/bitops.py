"""Bit-level operations on r-bit node identifiers.

The hypercube index scheme of the paper manipulates node identifiers as
r-bit binary strings.  Following Section 3.1, for a node ``u``:

* ``One(u)``  — the positions at which ``u`` has bit one,
* ``Zero(u)`` — the positions at which ``u`` has bit zero,
* ``v`` *contains* ``u``  iff  ``One(u) ⊆ One(v)``.

Identifiers are plain Python integers; positions count from the right,
position 0 being the least-significant bit, exactly as in the paper
("u[i] denotes the i-th bit of u, counting from the right").
"""

from __future__ import annotations

__all__ = [
    "bit_string",
    "contains",
    "flip_bit",
    "get_bit",
    "hamming_distance",
    "highest_set_bit",
    "lowest_set_bit",
    "mask_of",
    "one_positions",
    "popcount",
    "set_bit",
    "clear_bit",
    "zero_positions",
]


def popcount(value: int) -> int:
    """Return the number of one bits in ``value``.

    >>> popcount(0b010100)
    2
    """
    if value < 0:
        raise ValueError(f"popcount requires a non-negative integer, got {value}")
    return value.bit_count()


def get_bit(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` (0 or 1), counting from the right."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def set_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` set to one."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return value | (1 << position)


def clear_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` cleared to zero."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return value & ~(1 << position)


def flip_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` inverted.

    In hypercube terms this moves to the neighbour across dimension
    ``position``.
    """
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return value ^ (1 << position)


def one_positions(value: int, width: int) -> tuple[int, ...]:
    """Return ``One(value)`` — ascending positions of one bits within ``width``.

    >>> one_positions(0b010100, 6)
    (2, 4)
    """
    _check_width(value, width)
    return tuple(i for i in range(width) if (value >> i) & 1)


def zero_positions(value: int, width: int) -> tuple[int, ...]:
    """Return ``Zero(value)`` — ascending positions of zero bits within ``width``.

    >>> zero_positions(0b010100, 6)
    (0, 1, 3, 5)
    """
    _check_width(value, width)
    return tuple(i for i in range(width) if not (value >> i) & 1)


def contains(container: int, contained: int) -> bool:
    """Return True iff ``container`` contains ``contained``.

    Per Definition in Section 3.1: ``v`` contains ``u`` iff
    ``One(u) ⊆ One(v)``, i.e. every one bit of ``u`` is also set in ``v``.

    >>> contains(0b0110, 0b0100)
    True
    >>> contains(0b0110, 0b1000)
    False
    """
    return (container & contained) == contained


def hamming_distance(u: int, v: int) -> int:
    """Return the Hamming distance between two identifiers.

    >>> hamming_distance(0b1010, 0b0110)
    2
    """
    return (u ^ v).bit_count()


def mask_of(width: int) -> int:
    """Return the all-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def lowest_set_bit(value: int) -> int:
    """Return the position of the least-significant one bit, or -1 if zero."""
    if value == 0:
        return -1
    return (value & -value).bit_length() - 1


def highest_set_bit(value: int) -> int:
    """Return the position of the most-significant one bit, or -1 if zero."""
    if value == 0:
        return -1
    return value.bit_length() - 1


def bit_string(value: int, width: int) -> str:
    """Render ``value`` as a ``width``-bit binary string (MSB first).

    >>> bit_string(0b0100, 4)
    '0100'
    """
    _check_width(value, width)
    return format(value, f"0{width}b")


def _check_width(value: int, width: int) -> None:
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ValueError(f"identifier must be non-negative, got {value}")
    if value >> width:
        raise ValueError(f"identifier {value:#x} does not fit in {width} bits")
