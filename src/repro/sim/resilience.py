"""Resilient messaging: deadlines, retries, backoff, circuit breaking.

The paper's access operations (Sections 3.3–3.5) all reduce to DOLR
messages, and Section 3.4 observes that a real deployment must add
fault tolerance on top of them.  This module supplies the generic
machinery, expressed against the :class:`~repro.net.transport.Transport`
contract so the same channel works over the deterministic simulator
*and* over real sockets (:class:`~repro.net.aio.AsyncioTransport`):

* :class:`RetryPolicy` — bounded attempts with exponential backoff.
  Backoff sleeps go through the transport's clock
  (:meth:`~repro.net.transport.Transport.sleep`): they advance the
  *virtual* clock on the simulator — so two runs of the same experiment
  retry at identical virtual times — and actually sleep on a real
  transport.  An optional per-operation deadline (in transport time
  units) caps how long an operation may keep retrying, and bounds each
  attempt's reply wait on transports that support timeouts.
* :class:`CircuitBreaker` — a per-destination closed / open / half-open
  state machine.  After ``failure_threshold`` consecutive failures the
  breaker opens and calls fail fast (no message is sent); once
  ``reset_timeout`` of transport time has passed a single probe is let
  through (half-open) and its outcome re-closes or re-opens the breaker.
* :class:`ResilientChannel` — the façade protocol code talks to: an
  ``rpc``/``send`` pair mirroring the transport's
  that applies the retry policy and one breaker per destination, and
  accounts everything in :class:`~repro.sim.metrics.MetricsRegistry`
  (``rpc.retries``, ``rpc.deadline_exceeded``, ``breaker.open`` …) plus
  an ``rpc.attempt_latency`` histogram of per-attempt time costs.

The channel retries exactly the transport-generic
:class:`~repro.net.errors.PeerUnreachableError` family — the
simulator's :class:`~repro.sim.network.NodeUnreachableError`, a real
transport's connection failures and
:class:`~repro.net.errors.RpcTimeoutError` — so retries and breakers
behave identically whichever medium carries the messages.

A channel built with the default policies is a pass-through: one
attempt, no breaker, byte-identical message accounting to calling the
network directly.  That keeps the paper-faithful experiments exact
while letting the serving-oriented layers opt in.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any

from repro.net.errors import NodeBusyError, PeerUnreachableError
from repro.net.qos import current_qos
from repro.net.transport import RpcCall, RpcOutcome, Transport, sequential_rpc_many
from repro.obs.trace import active_recorder
from repro.sim.network import NetworkError, NodeUnreachableError
from repro.util.rng import make_rng

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ResilientChannel",
    "RetryPolicy",
]


class DeadlineExceededError(NodeUnreachableError):
    """The operation's virtual-time deadline expired before it could
    succeed.  Subclasses :class:`NodeUnreachableError` so degradation
    paths written against the base error handle deadlines uniformly."""

    def __init__(self, address: int, deadline: float):
        NetworkError.__init__(
            self, f"deadline {deadline:g} expired while contacting node {address}"
        )
        self.address = address
        self.deadline = deadline


class CircuitOpenError(NodeUnreachableError):
    """The destination's circuit breaker is open: the call fails fast
    without sending a message."""

    def __init__(self, address: int):
        NetworkError.__init__(self, f"circuit breaker open for node {address}")
        self.address = address


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on one logical operation.

    ``backoff_delay`` for failure number ``n`` (1-based) is
    ``min(max_delay, base_delay * multiplier**(n-1))``, shrunk by up to
    ``jitter`` (a fraction in [0, 1]) drawn from the channel's seeded
    RNG — "equal jitter" style, so delays stay bounded and reproducible.
    ``deadline`` caps the whole operation (first attempt to last retry)
    in virtual-time units; ``None`` means no deadline.
    """

    max_attempts: int = 3
    base_delay: float = 4.0
    multiplier: float = 2.0
    max_delay: float = 64.0
    jitter: float = 0.5
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single attempt, no backoff — the pass-through policy."""
        return cls(max_attempts=1, base_delay=0.0, jitter=0.0)

    @classmethod
    def default(cls) -> "RetryPolicy":
        """The serving default: three attempts, 4/8 unit backoff."""
        return cls()

    @property
    def resilient(self) -> bool:
        """Whether this policy differs from plain single-shot delivery."""
        return self.max_attempts > 1 or self.deadline is not None

    def backoff_delay(self, failure: int, rng: random.Random | None = None) -> float:
        """Virtual-time sleep after failure number ``failure`` (1-based)."""
        if failure < 1:
            raise ValueError(f"failure number must be >= 1, got {failure}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (failure - 1))
        if self.jitter and rng is not None:
            raw -= raw * self.jitter * rng.random()
        return raw

    def schedule(self, rng: random.Random | None = None) -> list[float]:
        """The full backoff schedule (one delay per possible retry) —
        mainly for tests and documentation."""
        return [
            self.backoff_delay(failure, rng)
            for failure in range(1, self.max_attempts)
        ]


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs of one :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    reset_timeout: float = 256.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {self.reset_timeout}")
        if self.half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {self.half_open_successes}"
            )


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-destination failure isolation on the virtual clock.

    The breaker never reads the wall clock: ``clock`` is a callable
    returning virtual time (the scheduler's ``now``), so breaker
    behaviour is as deterministic as the simulation driving it.
    """

    def __init__(self, policy: BreakerPolicy, clock) -> None:
        self.policy = policy
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.half_open_successes = 0
        self.opened_at = 0.0
        self.times_opened = 0

    def allow(self) -> bool:
        """Whether a call may proceed now.  An open breaker transitions
        to half-open (and admits one probe) once ``reset_timeout`` of
        virtual time has elapsed."""
        if self.state is BreakerState.OPEN:
            if self.clock() - self.opened_at >= self.policy.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                self.half_open_successes = 0
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.half_open_successes += 1
            if self.half_open_successes >= self.policy.half_open_successes:
                self.state = BreakerState.CLOSED
        elif self.state is BreakerState.OPEN:
            # A success observed while nominally open (e.g. a probe sent
            # through another channel): treat it as a healed destination.
            self.state = BreakerState.CLOSED

    def record_failure(self) -> bool:
        """Record one failure.  Returns True when this failure tripped
        the breaker open (closed -> open or half-open -> open)."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._open()
            return True
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._open()
            return True
        return False

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = self.clock()
        self.half_open_successes = 0
        self.times_opened += 1


class ResilientChannel:
    """Retry/deadline/breaker wrapper over one :class:`~repro.net.transport.Transport`.

    All metrics land in the network's :class:`MetricsRegistry` under
    ``metrics_prefix`` (default ``rpc``) and ``breaker``:

    ========================  ====================================================
    ``rpc.attempts``          requests handed to the network (first tries + retries)
    ``rpc.retries``           re-sends after a failed attempt
    ``rpc.failures``          attempts that raised (destination unreachable / dropped)
    ``rpc.busy``              attempts shed by the destination (T_BUSY) — retried
                              with backoff like failures, but counted apart and
                              *never* fed to circuit breakers: a busy node is
                              healthy, just saturated
    ``rpc.exhausted``         operations that failed after the final attempt
    ``rpc.deadline_exceeded`` operations abandoned because the deadline expired
    ``rpc.attempt_latency``   histogram of per-attempt virtual-time cost
    ``breaker.open``          transitions to the open state
    ``breaker.rejected``      calls refused while a breaker was open
    ``breaker.closed``        recoveries (half-open probe succeeded)
    ========================  ====================================================

    Deadlines compose with the ambient QoS context
    (:func:`~repro.net.qos.current_qos`): the effective deadline of an
    operation is the stricter of the policy's relative deadline and the
    context's absolute ``deadline_at``, so a caller-supplied
    :class:`~repro.core.config.SearchOptions` deadline bounds every
    retry budget along the operation without per-call plumbing.  A busy
    destination's ``retry_after`` hint raises that attempt's backoff
    floor.
    """

    def __init__(
        self,
        network: Transport,
        policy: RetryPolicy | None = None,
        *,
        breaker: BreakerPolicy | None = None,
        rng: int | random.Random | None = 0,
        metrics_prefix: str = "rpc",
    ) -> None:
        self.network = network
        self.policy = policy if policy is not None else RetryPolicy.none()
        self.breaker_policy = breaker
        self.rng = make_rng(rng)
        self.metrics_prefix = metrics_prefix
        self._breakers: dict[int, CircuitBreaker] = {}

    # -- introspection -------------------------------------------------

    @property
    def resilient(self) -> bool:
        """True when this channel does anything beyond plain delivery —
        the signal upper layers use to degrade instead of raising."""
        return self.policy.resilient or self.breaker_policy is not None

    def breaker_for(self, address: int) -> CircuitBreaker | None:
        """The destination's breaker (created lazily; None if disabled)."""
        if self.breaker_policy is None:
            return None
        breaker = self._breakers.get(address)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_policy, self.network.now)
            self._breakers[address] = breaker
        return breaker

    def breaker_states(self) -> dict[int, BreakerState]:
        """Current state of every instantiated breaker."""
        return {address: breaker.state for address, breaker in self._breakers.items()}

    def _effective_deadline(self) -> float | None:
        """The stricter of the policy deadline and the ambient QoS
        deadline, as an absolute time (None: unbounded)."""
        deadline = (
            None
            if self.policy.deadline is None
            else self.network.now() + self.policy.deadline
        )
        qos_deadline = current_qos().deadline_at
        if qos_deadline is None:
            return deadline
        return qos_deadline if deadline is None else min(deadline, qos_deadline)

    # -- communication -------------------------------------------------

    def rpc(self, src: int, dst: int, kind: str, payload: dict[str, Any] | None = None) -> Any:
        """Request/reply with retries, one deadline, and breaker checks.

        Raises :class:`CircuitOpenError` without sending when the
        destination's breaker is open, :class:`DeadlineExceededError`
        when the policy's deadline expires between attempts — or has
        already expired *before* an attempt, in which case nothing is
        sent (a zero-budget request would be an accounted,
        guaranteed-to-fail socket wait on a real transport) — and the
        last :class:`~repro.net.errors.PeerUnreachableError` when
        attempts are exhausted.  When the policy has a deadline, the
        remaining budget also bounds each attempt's reply wait (real
        transports map it to a socket timeout; the simulator ignores
        it — a virtual reply cannot dawdle).
        """
        policy = self.policy
        network = self.network
        metrics = network.metrics
        breaker = self.breaker_for(dst)
        deadline = self._effective_deadline()

        last_error: PeerUnreachableError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if deadline is not None and network.now() >= deadline:
                metrics.increment(f"{self.metrics_prefix}.deadline_exceeded")
                raise DeadlineExceededError(dst, deadline) from last_error
            if breaker is not None and not breaker.allow():
                metrics.increment("breaker.rejected")
                recorder = active_recorder()
                if recorder is not None:
                    recorder.emit("breaker", dst=dst, state="rejected")
                raise CircuitOpenError(dst)
            started = network.now()
            metrics.increment(f"{self.metrics_prefix}.attempts")
            timeout = None if deadline is None else deadline - started
            try:
                result = network.rpc(src, dst, kind, payload, timeout=timeout)
            except PeerUnreachableError as error:
                metrics.record(f"{self.metrics_prefix}.attempt_latency", network.now() - started)
                is_busy = isinstance(error, NodeBusyError)
                if is_busy:
                    # Shed, not failed: the node is healthy but
                    # saturated.  Counted apart and kept away from the
                    # breaker — tripping it would amplify the overload
                    # into an outage.
                    metrics.increment(f"{self.metrics_prefix}.busy")
                else:
                    metrics.increment(f"{self.metrics_prefix}.failures")
                if breaker is not None and not is_busy:
                    was_half_open = breaker.state is BreakerState.HALF_OPEN
                    if breaker.record_failure():
                        metrics.increment("breaker.open")
                        if was_half_open:
                            metrics.increment("breaker.reopened")
                        recorder = active_recorder()
                        if recorder is not None:
                            recorder.emit("breaker", dst=dst, state="open")
                last_error = error
                if attempt >= policy.max_attempts:
                    metrics.increment(f"{self.metrics_prefix}.exhausted")
                    raise
                delay = policy.backoff_delay(attempt, self.rng)
                if is_busy and error.retry_after > delay:
                    delay = error.retry_after
                if deadline is not None and network.now() + delay > deadline:
                    metrics.increment(f"{self.metrics_prefix}.deadline_exceeded")
                    raise DeadlineExceededError(dst, deadline) from error
                network.sleep(delay)
                metrics.increment(f"{self.metrics_prefix}.retries")
                recorder = active_recorder()
                if recorder is not None:
                    recorder.emit(
                        "retry",
                        dst=dst,
                        attempt=attempt,
                        delay=delay,
                        error=type(error).__name__,
                    )
                continue
            metrics.record(f"{self.metrics_prefix}.attempt_latency", network.now() - started)
            if breaker is not None:
                was_recovering = breaker.state is not BreakerState.CLOSED
                breaker.record_success()
                if was_recovering and breaker.state is BreakerState.CLOSED:
                    metrics.increment("breaker.closed")
                    recorder = active_recorder()
                    if recorder is not None:
                        recorder.emit("breaker", dst=dst, state="closed")
            return result
        raise last_error if last_error is not None else NodeUnreachableError(dst)

    def rpc_many(self, calls: list[RpcCall] | tuple[RpcCall, ...]) -> list[RpcOutcome]:
        """Concurrent batch with *per-call* retry, deadline, and breaker
        state — the batch-shaped mirror of :meth:`rpc`.

        The batch proceeds in attempt rounds.  In each round every
        still-unresolved call is checked against its own deadline and
        its destination's breaker, and the survivors are issued together
        through the transport's
        :meth:`~repro.net.transport.Transport.rpc_many` (or, for
        transports predating the batch API, the sequential reference
        implementation).  Each call's failures feed its own attempt
        counter, its destination's breaker, and the same metrics and
        trace events sequential :meth:`rpc` emits (``rpc.attempts`` /
        ``rpc.retries`` / ``rpc.failures`` / ``rpc.exhausted``, one
        ``retry`` trace event per re-send) — so observability stays 1:1
        with messages under interleaving.

        Backoff is concurrent *and per-call*: each failed call draws its
        own delay (per-call jitter, same metrics as the sequential path)
        and becomes ready at its own instant; the channel sleeps only
        until the *earliest* pending call is ready and reissues that
        cohort, while later cohorts keep waiting.  One slow peer's long
        backoff therefore never stalls its batch mates' retries — the
        batch's total backoff wall time is the longest single delay, and
        fast calls turn around at their own cadence.  A call whose
        deadline cannot survive its own backoff is abandoned with
        :class:`DeadlineExceededError` before anything is re-sent,
        exactly as in :meth:`rpc`.

        Outcomes arrive in call order.  Errors are *returned*, never
        raised: an exhausted call yields its final
        :class:`~repro.net.errors.PeerUnreachableError`, a rejected one
        :class:`CircuitOpenError`, an expired one
        :class:`DeadlineExceededError`; non-retryable errors (e.g.
        :class:`~repro.net.errors.RemoteHandlerError`) pass through
        untouched on the first attempt.
        """
        policy = self.policy
        network = self.network
        metrics = network.metrics
        network_rpc_many = getattr(network, "rpc_many", None)
        outcomes: list[RpcOutcome | None] = [None] * len(calls)
        shared_deadline = self._effective_deadline()
        deadlines = [shared_deadline for _ in calls]
        attempts = [0] * len(calls)
        # ready_at[index]: the instant a backing-off call may be
        # reissued.  Unset means ready now (first attempt).
        ready_at: dict[int, float] = {}
        pending = list(range(len(calls)))
        while pending:
            now = network.now()
            ready = [i for i in pending if ready_at.get(i, now) <= now]
            if not ready:
                # Every pending call is still backing off.  Sleep only
                # until the *earliest* becomes ready — per-call-cohort
                # backoff, so one slow peer's long delay never holds up
                # its batch mates' retries.
                network.sleep(min(ready_at[i] for i in pending) - now)
                now = network.now()
                ready = [i for i in pending if ready_at.get(i, now) <= now]
            round_calls: list[RpcCall] = []
            round_members: list[int] = []
            for index in ready:
                call = calls[index]
                deadline = deadlines[index]
                if deadline is not None and network.now() >= deadline:
                    metrics.increment(f"{self.metrics_prefix}.deadline_exceeded")
                    outcomes[index] = RpcOutcome.failure(
                        DeadlineExceededError(call.dst, deadline)
                    )
                    continue
                breaker = self.breaker_for(call.dst)
                if breaker is not None and not breaker.allow():
                    metrics.increment("breaker.rejected")
                    recorder = active_recorder()
                    if recorder is not None:
                        recorder.emit("breaker", dst=call.dst, state="rejected")
                    outcomes[index] = RpcOutcome.failure(CircuitOpenError(call.dst))
                    continue
                timeout = None if deadline is None else deadline - network.now()
                round_calls.append(
                    RpcCall(call.src, call.dst, call.kind, call.payload, timeout=timeout)
                )
                round_members.append(index)
            if round_calls:
                started = network.now()
                for _ in round_members:
                    metrics.increment(f"{self.metrics_prefix}.attempts")
                if network_rpc_many is not None:
                    results = network_rpc_many(round_calls)
                else:
                    results = sequential_rpc_many(network, round_calls)
                elapsed = network.now() - started
                for index, result in zip(round_members, results):
                    call = calls[index]
                    attempts[index] += 1
                    metrics.record(f"{self.metrics_prefix}.attempt_latency", elapsed)
                    breaker = self.breaker_for(call.dst)
                    if result.ok:
                        if breaker is not None:
                            was_recovering = breaker.state is not BreakerState.CLOSED
                            breaker.record_success()
                            if was_recovering and breaker.state is BreakerState.CLOSED:
                                metrics.increment("breaker.closed")
                                recorder = active_recorder()
                                if recorder is not None:
                                    recorder.emit("breaker", dst=call.dst, state="closed")
                        outcomes[index] = result
                        continue
                    error = result.error
                    if not isinstance(error, PeerUnreachableError):
                        # Not a delivery failure (e.g. a remote handler
                        # raised): not retryable, pass straight through.
                        outcomes[index] = result
                        continue
                    is_busy = isinstance(error, NodeBusyError)
                    if is_busy:
                        # Shed, not failed — see rpc().
                        metrics.increment(f"{self.metrics_prefix}.busy")
                    else:
                        metrics.increment(f"{self.metrics_prefix}.failures")
                    if breaker is not None and not is_busy:
                        was_half_open = breaker.state is BreakerState.HALF_OPEN
                        if breaker.record_failure():
                            metrics.increment("breaker.open")
                            if was_half_open:
                                metrics.increment("breaker.reopened")
                            recorder = active_recorder()
                            if recorder is not None:
                                recorder.emit("breaker", dst=call.dst, state="open")
                    if attempts[index] >= policy.max_attempts:
                        metrics.increment(f"{self.metrics_prefix}.exhausted")
                        outcomes[index] = result
                        continue
                    delay = policy.backoff_delay(attempts[index], self.rng)
                    if is_busy and error.retry_after > delay:
                        delay = error.retry_after
                    deadline = deadlines[index]
                    if deadline is not None and network.now() + delay > deadline:
                        metrics.increment(f"{self.metrics_prefix}.deadline_exceeded")
                        outcomes[index] = RpcOutcome.failure(
                            DeadlineExceededError(call.dst, deadline)
                        )
                        continue
                    ready_at[index] = network.now() + delay
                    metrics.increment(f"{self.metrics_prefix}.retries")
                    recorder = active_recorder()
                    if recorder is not None:
                        recorder.emit(
                            "retry",
                            dst=call.dst,
                            attempt=attempts[index],
                            delay=delay,
                            error=type(error).__name__,
                        )
            pending = [index for index in pending if outcomes[index] is None]
        return [
            outcome
            if outcome is not None
            else RpcOutcome.failure(NodeUnreachableError(calls[position].dst))
            for position, outcome in enumerate(outcomes)
        ]

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        deliver: bool = True,
    ) -> bool:
        """One-way message through the breaker (no retries: datagrams
        carry no failure signal to retry on).  Returns False when the
        breaker swallowed the message."""
        breaker = self.breaker_for(dst)
        if breaker is not None and not breaker.allow():
            self.network.metrics.increment("breaker.rejected")
            return False
        self.network.send(src, dst, kind, payload, deliver=deliver)
        return True
