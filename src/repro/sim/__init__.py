"""Deterministic discrete-event simulation kernel.

The paper evaluates its scheme by simulation; this package provides the
substrate: a heap-based event scheduler with a virtual clock
(:mod:`repro.sim.events`), pluggable link-latency models
(:mod:`repro.sim.latency`), a message-passing network with synchronous
RPC, one-way sends, failure injection and full message/hop accounting
(:mod:`repro.sim.network`), and a metrics registry
(:mod:`repro.sim.metrics`).
"""

from repro.sim.events import EventScheduler, ScheduledEvent
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Message, NetworkError, NodeUnreachableError, SimulatedNetwork

__all__ = [
    "ConstantLatency",
    "EventScheduler",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MetricsRegistry",
    "NetworkError",
    "NodeUnreachableError",
    "ScheduledEvent",
    "SimulatedNetwork",
    "UniformLatency",
]
