"""Deterministic discrete-event simulation kernel.

The paper evaluates its scheme by simulation; this package provides the
substrate: a heap-based event scheduler with a virtual clock
(:mod:`repro.sim.events`), pluggable link-latency models
(:mod:`repro.sim.latency`), a message-passing network with synchronous
RPC, one-way sends, failure injection and full message/hop accounting
(:mod:`repro.sim.network`), a metrics registry
(:mod:`repro.sim.metrics`), and the resilience layer — retry policies,
deadlines and circuit breakers over that network
(:mod:`repro.sim.resilience`).
"""

from repro.sim.events import EventScheduler, ScheduledEvent
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Message, NetworkError, NodeUnreachableError, SimulatedNetwork
from repro.sim.resilience import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    ResilientChannel,
    RetryPolicy,
)

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "ConstantLatency",
    "DeadlineExceededError",
    "EventScheduler",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MetricsRegistry",
    "NetworkError",
    "NodeUnreachableError",
    "ResilientChannel",
    "RetryPolicy",
    "ScheduledEvent",
    "SimulatedNetwork",
    "UniformLatency",
]
