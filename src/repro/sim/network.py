"""A simulated message-passing network with accounting.

``SimulatedNetwork`` is the reference implementation of the
:class:`~repro.net.transport.Transport` contract (the other is
:class:`~repro.net.aio.AsyncioTransport`, which crosses real sockets).
Endpoints register a handler keyed by an integer address (the DHT node
identifier).  Two communication styles are offered:

* :meth:`SimulatedNetwork.rpc` — a synchronous request/reply pair.  The
  virtual clock advances by two one-way latencies, two messages are
  accounted, and the destination handler's return value is delivered to
  the caller.  Protocol code written against ``rpc`` reads like the
  paper's pseudo-code while still paying for every message.
* :meth:`SimulatedNetwork.send` — a one-way message delivered through
  the event scheduler after one latency.  Used for gossip-style traffic
  (e.g. Chord stabilization) where no reply is awaited.

Failure injection (:meth:`fail` / :meth:`recover`) makes a node drop all
traffic, which the DHT layer's surrogate routing and the fault-tolerance
experiment build on.  :meth:`set_loss_rate` adds *transient* faults: each
request independently fails with a seeded probability, modelling the
message loss / momentary unreachability that retry policies recover
from (a fail-stop node, by contrast, defeats any number of retries).  A :meth:`trace` context manager captures the
messages sent within a window — experiments use it to count messages and
distinct nodes contacted per query, the paper's cost metrics.
"""

from __future__ import annotations

import random
from collections import Counter
from contextlib import contextmanager
from typing import Any, Iterator

from repro.net.codec import codec_by_name
from repro.net.errors import NodeBusyError, PeerUnreachableError, TransportError
from repro.net.transport import Handler, Message, MessageTrace, RpcCall, RpcOutcome
from repro.net.wire import Frame, FrameType, encode_frame
from repro.obs.trace import active_recorder
from repro.sim.events import EventScheduler
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.metrics import MetricsRegistry

__all__ = [
    "Message",
    "MessageTrace",
    "NetworkError",
    "NodeUnreachableError",
    "SimulatedNetwork",
]


_UNMEASURED = object()  # sentinel: "size the accounting Message's own payload"


class NetworkError(TransportError):
    """Base class for simulated-network failures.

    Rebased onto :class:`~repro.net.errors.TransportError` so code
    written against the generic transport hierarchy handles simulator
    failures too.
    """


class NodeUnreachableError(NetworkError, PeerUnreachableError):
    """The destination is failed or was never registered.

    Subclasses both the simulator's historical :class:`NetworkError`
    and the transport-generic
    :class:`~repro.net.errors.PeerUnreachableError`, so either catch
    site works.
    """

    def __init__(self, address: int):
        TransportError.__init__(self, f"node {address} is unreachable")
        self.address = address


class SimulatedNetwork:
    """The shared medium connecting every simulated node."""

    def __init__(
        self,
        scheduler: EventScheduler | None = None,
        latency: LatencyModel | None = None,
        metrics: MetricsRegistry | None = None,
        *,
        measure_bytes: bool = False,
        codec: str = "binary",
    ):
        """``measure_bytes=True`` additionally encodes every message
        through the wire codec (``codec``, ``"binary"`` or ``"json"``)
        and accumulates the frame sizes into ``net.bytes_sent`` — the
        same counter :class:`~repro.net.aio.AsyncioTransport`
        maintains — so simulator bandwidth rows in the benchmarks are
        codec-true and comparable across media.  Off by default: the
        encoding pass costs real time per message and the experiments'
        published numbers count messages, not bytes."""
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.measure_bytes = measure_bytes
        wire_codec = codec_by_name(codec)
        self.codec = wire_codec.name
        self._codec_id = wire_codec.id
        self._handlers: dict[int, Handler] = {}
        self._failed: set[int] = set()
        self._loss_rate: float = 0.0
        self._loss_rng: random.Random = random.Random(0)
        self._busy_budget: Counter[int] = Counter()
        self._traces: list[MessageTrace] = []
        self.kind_counts: Counter[str] = Counter()
        self.received_counts: Counter[int] = Counter()

    # -- membership ---------------------------------------------------

    def register(self, address: int, handler: Handler) -> None:
        """Attach ``handler`` at ``address``.  Re-registration replaces."""
        self._handlers[address] = handler
        self._failed.discard(address)

    def unregister(self, address: int) -> None:
        """Detach the endpoint at ``address`` (node leaves the network)."""
        self._handlers.pop(address, None)
        self._failed.discard(address)

    def is_registered(self, address: int) -> bool:
        return address in self._handlers

    def addresses(self) -> frozenset[int]:
        """All registered addresses (failed ones included)."""
        return frozenset(self._handlers)

    # -- clock --------------------------------------------------------

    def now(self) -> float:
        """Current virtual time (the scheduler's clock)."""
        return self.scheduler.now

    def sleep(self, delay: float) -> None:
        """Advance the virtual clock by ``delay`` units."""
        self.scheduler.advance(delay)

    # -- failure injection --------------------------------------------

    def fail(self, address: int) -> None:
        """Make ``address`` drop all traffic until :meth:`recover`."""
        if address not in self._handlers:
            raise NetworkError(f"cannot fail unknown node {address}")
        self._failed.add(address)

    def recover(self, address: int) -> None:
        """Undo :meth:`fail`."""
        self._failed.discard(address)

    def is_alive(self, address: int) -> bool:
        return address in self._handlers and address not in self._failed

    @property
    def failed_addresses(self) -> frozenset[int]:
        return frozenset(self._failed)

    def set_loss_rate(self, rate: float, rng: int | random.Random | None = 0) -> None:
        """Drop each non-local request with probability ``rate``.

        A dropped request is accounted (the bytes were sent) and raises
        :class:`NodeUnreachableError` at the caller, exactly like a
        fail-stop destination — but the *next* attempt may succeed,
        which is the failure mode retries exist for.  ``rate=0``
        disables the model.  The loss draw comes from its own seeded
        RNG so enabling loss does not perturb other random streams.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self._loss_rate = rate
        self._loss_rng = rng if isinstance(rng, random.Random) else random.Random(rng)

    @property
    def loss_rate(self) -> float:
        return self._loss_rate

    def inject_busy(self, address: int, count: int = 1) -> None:
        """Make the next ``count`` non-local requests to ``address`` be
        *shed*: accounted as one sent request (the bytes crossed the
        wire) and answered with
        :class:`~repro.net.errors.NodeBusyError`, never reaching the
        handler — the simulator twin of a TCP node's admission
        controller replying T_BUSY.  The busy refusal is not accounted
        as a reply, matching
        :class:`~repro.net.aio.AsyncioTransport`, so a shed request
        contributes exactly one message either way.
        """
        if address not in self._handlers:
            raise NetworkError(f"cannot mark unknown node {address} busy")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._busy_budget[address] += count

    def _shed_if_busy(self, request: Message) -> None:
        """Consume one injected-busy token, raising the shed error."""
        if self._busy_budget.get(request.dst, 0) > 0:
            self._busy_budget[request.dst] -= 1
            self._account(request)  # sent, then refused before dispatch
            self.metrics.increment("net.shed_requests")
            raise NodeBusyError(request.dst, queue_depth=1)

    # -- communication ------------------------------------------------

    def rpc(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Synchronous request/reply.  Returns the handler's return value.

        Accounts one request and one reply message and advances the
        clock by two one-way latencies.  A local call (``src == dst``)
        is free: no messages, no delay — as in the paper, where a node
        consulting its own index table costs nothing on the network.
        ``timeout`` is accepted for :class:`~repro.net.transport.Transport`
        compatibility and ignored: a simulated reply either arrives
        after the modelled latency or the failure surfaces immediately,
        so there is no open-ended wait to bound.
        """
        request = Message(src, dst, kind, payload or {})
        if src == dst:
            return self._dispatch_local(request)
        if not self.is_alive(dst):
            self._account(request)  # the request is sent, then times out
            raise NodeUnreachableError(dst)
        if self._loss_rate and self._loss_rng.random() < self._loss_rate:
            self._account(request)  # sent, then lost in flight
            self.metrics.increment("network.dropped")
            raise NodeUnreachableError(dst)
        self._shed_if_busy(request)
        self._account(request)
        self.scheduler.advance(self.latency.delay(src, dst))
        result = self._handlers[dst](request)
        reply = Message(dst, src, kind, {}, is_reply=True)
        self._account(reply, payload=result)
        self.scheduler.advance(self.latency.delay(dst, src))
        return result

    def rpc_many(self, calls: list[RpcCall] | tuple[RpcCall, ...]) -> list[RpcOutcome]:
        """Concurrent request/reply batch in virtual time.

        Every call is dispatched at the *same* departure instant and the
        clock then advances by the slowest call's round trip — the
        virtual-time picture of requests in flight simultaneously —
        instead of the sum of round trips :meth:`rpc` would pay one by
        one.  Everything else is identical to the sequential path:

        * **Accounting** — one request and one reply per delivered call
          (request only when the destination is dead or the loss model
          drops it; nothing for a local ``src == dst`` call), in call
          order, into the same counters and trace windows.
        * **Determinism** — handlers run in call order, and the loss
          model draws in call order, so a batch is exactly as
          reproducible as the equivalent sequential loop.
        * **Failures** — a dead / lossy destination yields a
          :class:`NodeUnreachableError` *outcome* for that call alone
          (it would have raised from :meth:`rpc`); a failed call pays no
          round-trip time, matching the sequential path where the error
          surfaces immediately after the request is accounted.

        Handler-raised exceptions are ferried into the call's outcome as
        well, so one poisoned call cannot lose its batch mates' replies.
        """
        departure = self.scheduler.now
        outcomes: list[RpcOutcome] = []
        slowest = 0.0
        for call in calls:
            request = Message(call.src, call.dst, call.kind, call.payload or {})
            try:
                if call.src == call.dst:
                    outcomes.append(RpcOutcome.success(self._dispatch_local(request)))
                    continue
                if not self.is_alive(call.dst):
                    self._account(request)  # the request is sent, then times out
                    raise NodeUnreachableError(call.dst)
                if self._loss_rate and self._loss_rng.random() < self._loss_rate:
                    self._account(request)  # sent, then lost in flight
                    self.metrics.increment("network.dropped")
                    raise NodeUnreachableError(call.dst)
                self._shed_if_busy(request)
                self._account(request)
                result = self._handlers[call.dst](request)
                self._account(
                    Message(call.dst, call.src, call.kind, {}, is_reply=True),
                    payload=result,
                )
                round_trip = self.latency.delay(call.src, call.dst) + self.latency.delay(
                    call.dst, call.src
                )
                slowest = max(slowest, round_trip)
                outcomes.append(RpcOutcome.success(result))
            except Exception as error:  # noqa: BLE001 - per-call outcome, never lost
                outcomes.append(RpcOutcome.failure(error))
        # All calls were in flight together: elapse the slowest round
        # trip once (handlers that advanced the clock themselves, e.g.
        # via nested RPCs, already pushed `now` past the departure time
        # and only the remainder, if any, is added).
        already_elapsed = self.scheduler.now - departure
        if slowest > already_elapsed:
            self.scheduler.advance(slowest - already_elapsed)
        return outcomes

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        deliver: bool = True,
    ) -> None:
        """One-way message, delivered via the event scheduler.

        Silently dropped if the destination is dead *at delivery time*.
        ``deliver=False`` accounts the message without scheduling its
        delivery — for datagrams whose receipt is a no-op (e.g. the
        direct result notifications of the search protocol), so bulk
        experiments do not accumulate millions of pending events.
        """
        message = Message(src, dst, kind, payload or {})
        self._account(message, frame_type=FrameType.DATAGRAM)
        if not deliver:
            return
        if src == dst:
            self._handlers[dst](message)
            return

        def deliver_later() -> None:
            if self.is_alive(dst):
                self._handlers[dst](message)

        self.scheduler.schedule(self.latency.delay(src, dst), deliver_later)

    # -- tracing ------------------------------------------------------

    @contextmanager
    def trace(self) -> Iterator[MessageTrace]:
        """Capture every message sent inside the ``with`` block."""
        window = MessageTrace()
        self._traces.append(window)
        try:
            yield window
        finally:
            self._traces.remove(window)

    # -- internals ----------------------------------------------------

    def _dispatch_local(self, request: Message) -> Any:
        handler = self._handlers.get(request.dst)
        if handler is None or request.dst in self._failed:
            raise NodeUnreachableError(request.dst)
        return handler(request)

    def _account(
        self,
        message: Message,
        *,
        frame_type: FrameType | None = None,
        payload: Any = _UNMEASURED,
    ) -> None:
        self.metrics.increment("network.messages")
        self.kind_counts[message.kind] += 1
        if not message.is_reply:
            self.received_counts[message.dst] += 1
        for window in self._traces:
            window.messages.append(message)
        recorder = active_recorder()
        if recorder is not None:
            recorder.raw.append(message)
        if self.measure_bytes:
            # Codec-true sizing: build the frame the TCP transport would
            # put on the wire for this message — reply frames carry the
            # handler's actual result (`payload`), not the empty dict the
            # accounting Message holds — and charge its encoded length.
            if frame_type is None:
                frame_type = FrameType.REPLY if message.is_reply else FrameType.REQUEST
            body = message.payload if payload is _UNMEASURED else payload
            frame = Frame(frame_type, message.kind, message.src, message.dst, 0, body)
            self.metrics.increment(
                "net.bytes_sent", len(encode_frame(frame, codec=self._codec_id))
            )
