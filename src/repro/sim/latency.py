"""Link-latency models for the simulated network.

Latencies are in milliseconds of virtual time.  Models are deterministic
functions of the endpoint pair plus an explicit seed, so the same
(src, dst) link always has the same base delay within a run — as in a
real overlay, where the underlying path is stable on short timescales.
"""

from __future__ import annotations

import abc
import random

from repro.util.hashing import stable_hash

__all__ = ["ConstantLatency", "LatencyModel", "LogNormalLatency", "UniformLatency"]


class LatencyModel(abc.ABC):
    """Maps a (source, destination) pair to a one-way delay."""

    @abc.abstractmethod
    def delay(self, src: int, dst: int) -> float:
        """Return the one-way latency from ``src`` to ``dst`` in ms."""

    def _link_rng(self, src: int, dst: int, seed: int) -> random.Random:
        """A per-link RNG, symmetric in the endpoints."""
        low, high = (src, dst) if src <= dst else (dst, src)
        return random.Random(stable_hash(f"link:{low}:{high}:{seed}"))


class ConstantLatency(LatencyModel):
    """Every link has the same delay.  The default for experiments, where
    only message/hop *counts* matter (as in the paper)."""

    def __init__(self, delay_ms: float = 1.0):
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ms}")
        self._delay = delay_ms

    def delay(self, src: int, dst: int) -> float:
        return self._delay


class UniformLatency(LatencyModel):
    """Per-link delay drawn once, uniformly from [low, high]."""

    def __init__(self, low_ms: float = 10.0, high_ms: float = 100.0, *, seed: int = 0):
        if not 0 <= low_ms <= high_ms:
            raise ValueError(f"need 0 <= low <= high, got [{low_ms}, {high_ms}]")
        self._low = low_ms
        self._high = high_ms
        self._seed = seed

    def delay(self, src: int, dst: int) -> float:
        return self._link_rng(src, dst, self._seed).uniform(self._low, self._high)


class LogNormalLatency(LatencyModel):
    """Per-link delay drawn once from a log-normal — the classic
    heavy-tailed shape of wide-area round-trip times."""

    def __init__(self, median_ms: float = 50.0, sigma: float = 0.5, *, seed: int = 0):
        if median_ms <= 0:
            raise ValueError(f"median must be positive, got {median_ms}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self._median = median_ms
        self._sigma = sigma
        self._seed = seed

    def delay(self, src: int, dst: int) -> float:
        import math

        rng = self._link_rng(src, dst, self._seed)
        return self._median * math.exp(rng.gauss(0.0, self._sigma))
