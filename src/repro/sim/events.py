"""Heap-based discrete-event scheduler with a virtual clock.

Events are ordered by (time, sequence number), so simultaneous events
fire in scheduling order and runs are fully deterministic.  The clock is
a float in abstract time units; the package convention is milliseconds.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["EventScheduler", "ScheduledEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class ScheduledEvent:
    """An event in the scheduler queue.

    Ordering uses only ``(time, sequence)``; the callback never
    participates in comparisons.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True


class EventScheduler:
    """A deterministic discrete-event loop.

    >>> sched = EventScheduler()
    >>> fired = []
    >>> _ = sched.schedule(5.0, lambda: fired.append("late"))
    >>> _ = sched.schedule(1.0, lambda: fired.append("early"))
    >>> sched.run()
    >>> fired
    ['early', 'late']
    >>> sched.now
    5.0
    """

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """How many events have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback)

    def advance(self, delay: float) -> None:
        """Advance the clock without processing events.

        Used by synchronous RPC simulation, where a request/reply pair
        consumes virtual time outside the event queue.  Queued events
        whose time is overtaken still fire at their scheduled timestamps
        on the next :meth:`run_until` — their order is preserved.
        """
        if delay < 0:
            raise SimulationError(f"cannot advance backwards (delay={delay})")
        self._now += delay

    def step(self) -> bool:
        """Fire the next event.  Return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, *, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` fire)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def run_until(self, time: float) -> None:
        """Fire all events scheduled at or before ``time``, then set the
        clock to ``time``."""
        while self._queue:
            head = self._next_live_event()
            if head is None or head.time > time:
                break
            self.step()
        self._now = max(self._now, time)

    def _next_live_event(self) -> ScheduledEvent | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
