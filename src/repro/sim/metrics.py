"""Counters and histograms for simulation accounting.

Experiments in the paper report message counts, nodes contacted, and
load distributions.  ``MetricsRegistry`` is the single collection point:
protocol code increments named counters and records samples; experiment
runners read them out.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

__all__ = ["HistogramSummary", "MetricsRegistry"]


@dataclass(frozen=True)
class HistogramSummary:
    """Summary statistics of a recorded sample series."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @staticmethod
    def empty() -> "HistogramSummary":
        return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


class MetricsRegistry:
    """Named counters and sample series.

    >>> metrics = MetricsRegistry()
    >>> metrics.increment("messages.sent")
    >>> metrics.increment("messages.sent", 2)
    >>> metrics.counter("messages.sent")
    3
    >>> metrics.record("lookup.hops", 4.0)
    >>> metrics.summary("lookup.hops").mean
    4.0
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = defaultdict(int)
        self._series: dict[str, list[float]] = defaultdict(list)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] += amount

    def counter(self, name: str) -> int:
        """Read counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """A snapshot of all counters."""
        return dict(self._counters)

    def record(self, name: str, value: float) -> None:
        """Append a sample to series ``name``."""
        self._series[name].append(value)

    def series_names(self) -> list[str]:
        """Names of every recorded sample series, sorted."""
        return sorted(self._series)

    def snapshot(self):
        """A plain-data :class:`~repro.obs.export.MetricsSnapshot` of
        all counters and series summaries — the unit of export (JSON,
        Prometheus text) and of windowed deltas."""
        from repro.obs.export import MetricsSnapshot  # lazy: obs builds on sim

        return MetricsSnapshot.capture(self)

    def samples(self, name: str) -> list[float]:
        """The raw samples of series ``name`` (copy)."""
        return list(self._series.get(name, ()))

    def summary(self, name: str) -> HistogramSummary:
        """Summary statistics of series ``name``."""
        values = self._series.get(name)
        if not values:
            return HistogramSummary.empty()
        ordered = sorted(values)
        total = math.fsum(ordered)
        return HistogramSummary(
            count=len(ordered),
            total=total,
            mean=total / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )

    def reset(self, prefix: str = "") -> None:
        """Clear counters and series whose names start with ``prefix``
        (everything, when the prefix is empty)."""
        for name in [n for n in self._counters if n.startswith(prefix)]:
            del self._counters[name]
        for name in [n for n in self._series if n.startswith(prefix)]:
            del self._series[name]

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A view that prepends ``prefix.`` to every metric name."""
        return ScopedMetrics(self, prefix)


class ScopedMetrics:
    """Thin prefixing wrapper so subsystems don't collide on names."""

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix

    def increment(self, name: str, amount: int = 1) -> None:
        self._registry.increment(f"{self._prefix}.{name}", amount)

    def counter(self, name: str) -> int:
        return self._registry.counter(f"{self._prefix}.{name}")

    def record(self, name: str, value: float) -> None:
        self._registry.record(f"{self._prefix}.{name}", value)

    def summary(self, name: str) -> HistogramSummary:
        return self._registry.summary(f"{self._prefix}.{name}")
