"""repro — reproduction of "Keyword Search in DHT-based Peer-to-Peer Networks".

This package implements, from scratch, the hypercube keyword index and
search scheme of Joung, Fang and Yang (ICDCS 2005), together with every
substrate the paper depends on:

* a deterministic discrete-event simulation kernel (:mod:`repro.sim`),
* Chord, Kademlia and Pastry DHTs behind a generalized DOLR interface,
  plus a native HyperCuP-style hypercube overlay (:mod:`repro.dht`),
* r-dimensional hypercube machinery — subhypercubes and spanning
  binomial trees (:mod:`repro.hypercube`),
* the keyword index scheme itself: pin search, top-down / bottom-up /
  parallel superset search, cumulative search, per-node FIFO/LRU
  caches, replication, decomposition, sampling, ranking, expansion and
  churn migration (:mod:`repro.core`),
* baseline schemes the paper compares against — distributed inverted
  index, keyword-set search, direct DHT hashing (:mod:`repro.baselines`),
* synthetic PCHome-like corpus and query-log generators
  (:mod:`repro.workload`),
* the paper's analytical balls-in-bins model, load metrics, cardinality
  estimation and latency analysis (:mod:`repro.analysis`),
* a runner per table/figure of the evaluation (:mod:`repro.experiments`)
  and a CLI (``python -m repro``).

Quickstart
----------

>>> from repro import KeywordSearchService, ServiceConfig
>>> service = KeywordSearchService.create(
...     ServiceConfig(dimension=8, num_dht_nodes=64, seed=7)
... )
>>> record = service.publish("song.mp3", {"mp3", "jazz", "piano"})
>>> service.pin_search({"mp3", "jazz", "piano"}).results()
('song.mp3',)
"""

from repro.core.config import (
    CachePolicy,
    ContactMode,
    DhtKind,
    SearchOptions,
    ServiceConfig,
)
from repro.core.keywords import KeywordHasher, KeywordSetMapper
from repro.core.index import HypercubeIndex, IndexEntry
from repro.core.search import SearchResult, SuperSetSearch, TraversalOrder
from repro.core.service import KeywordSearchService
from repro.hypercube.hypercube import Hypercube
from repro.hypercube.sbt import SpanningBinomialTree
from repro.sim.resilience import BreakerPolicy, ResilientChannel, RetryPolicy

__version__ = "1.1.0"

__all__ = [
    "BreakerPolicy",
    "CachePolicy",
    "ContactMode",
    "DhtKind",
    "Hypercube",
    "HypercubeIndex",
    "IndexEntry",
    "KeywordHasher",
    "KeywordSearchService",
    "KeywordSetMapper",
    "ResilientChannel",
    "RetryPolicy",
    "SearchOptions",
    "SearchResult",
    "ServiceConfig",
    "SpanningBinomialTree",
    "SuperSetSearch",
    "TraversalOrder",
    "__version__",
]
