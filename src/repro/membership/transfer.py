"""Appliers: turn a membership fact into local structural + data moves.

A :class:`~repro.membership.book.PeerRecord` says *what* changed; this
module says what a node that learns of it must *do*.  Every applier is
idempotent and purely local-plus-RPC — it mutates this process's view
(DHT ring wiring, transport peer table, mapping caches) and pushes or
pulls index tables over the existing ``hindex.transfer`` /
``hindex.snapshot`` streams.  Gossip delivers the same record to every
node eventually; because each node applies the same deterministic
procedure against the same converged address set, everyone agrees on
ownership without any coordination round.

Three situations, three appliers:

``apply_alive``
    A node joined (or we finally learned its endpoint).  Admit it into
    the ring structurally, then push every table *we* serve that now
    belongs to it (ownership is recomputed from the new address set, so
    only the genuinely misplaced tables move).

``apply_gone``
    A node left gracefully (status ``left``) or was declared dead.
    Expel it from the ring.  For a graceful leave the data already
    moved — the leaver ran :meth:`HypercubeIndex.evacuate` before
    announcing ``left``.  For a death, the primary copies on the dead
    node are gone; when the index is replicated (Section 3.4's
    secondary hypercubes), :func:`repair_lost` re-replicates them from
    the surviving replicas onto the new owners.

``apply_book``
    The batch form a client (or a freshly booted daemon) uses to fold a
    whole fetched book into its local view.  With an empty ``served``
    set this is pure bookkeeping — no data moves, which is exactly what
    a serve-nothing client transport wants.
"""

from __future__ import annotations

from repro.membership.book import PeerBook, PeerRecord

__all__ = ["apply_alive", "apply_book", "apply_gone", "repair_lost"]


def _invalidate_mappings(service) -> None:
    for index in service.indexes:
        index.mapping.invalidate_placement_cache()


def apply_alive(service, transport, record: PeerRecord, served: set[int]) -> int:
    """Admit ``record.address`` and hand over the tables it now owns.

    Returns the number of object references pushed from nodes in
    ``served`` (0 when the address was already in the ring, or when we
    serve nothing that moved).
    """
    address = record.address
    dolr = service.dolr
    if address not in served and record.endpoint is not None:
        transport.peers[address] = (record.endpoint[0], record.endpoint[1])
    already = address in dolr.nodes
    admit = getattr(dolr, "admit", None)
    if admit is None:
        raise NotImplementedError(
            f"{type(dolr).__name__} does not support dynamic admission; "
            "dynamic membership currently requires the chord DHT"
        )
    admit(address)
    _invalidate_mappings(service)
    if already:
        return 0
    moved = 0
    for index in service.indexes:
        for local in sorted(served):
            moved += index._push_misplaced_tables(local)
    directory = getattr(service, "directory", None)
    if directory is not None:
        # The keyword directory shards on the same ring: trie rows the
        # joiner now owns move over the same hindex.transfer stream.
        for local in sorted(served):
            moved += directory.push_misplaced(local)
    return moved


def apply_gone(
    service, transport, record: PeerRecord, served: set[int], *, repair: bool
) -> int:
    """Expel ``record.address``; re-replicate its tables when ``repair``.

    ``repair=False`` is the graceful-leave path (the leaver evacuated
    before announcing); ``repair=True`` is the death path.  Returns the
    number of object references restored by repair (0 otherwise, and
    always 0 without index replication — a dead node's primary tables
    have no surviving copy to restore from).
    """
    address = record.address
    dolr = service.dolr
    if address not in dolr.nodes:
        transport.peers.pop(address, None)
        _invalidate_mappings(service)
        return 0
    lost: dict = {}
    if repair and len(service.indexes) > 1:
        # Which logical nodes did the dead peer host, per replica?
        # Computed against the pre-expulsion ring: ownership *after*
        # expel can no longer tell us what lived there.
        lost = {index: index.mapping.logical_nodes_of(address) for index in service.indexes}
    directory = getattr(service, "directory", None)
    directory_plans: list = []
    if repair and directory is not None:
        # Same pre-expulsion constraint for the keyword directory: find
        # the trie rows the dead node owned that our served replicas can
        # re-seed (a trie row is byte-identical across replicas).
        directory_plans = directory.plan_repair(address, served)
    expel = getattr(dolr, "expel", None)
    if expel is None:
        raise NotImplementedError(
            f"{type(dolr).__name__} does not support dynamic expulsion; "
            "dynamic membership currently requires the chord DHT"
        )
    expel(address)
    transport.peers.pop(address, None)
    _invalidate_mappings(service)
    restored = 0
    if directory_plans:
        restored += directory.apply_repair(directory_plans)
    if lost:
        restored += repair_lost(service, lost, served)
    return restored


def repair_lost(service, lost: dict, served: set[int]) -> int:
    """Restore a dead node's tables from surviving replicas.

    ``lost`` maps each index replica to the logical nodes the dead peer
    hosted for it.  For every such logical node whose *new* owner is one
    of our ``served`` addresses, pull the table from another replica —
    locally when we also serve the donor's owner, else over a read-only
    ``hindex.snapshot`` RPC — and fold it durably into the new owner's
    shard.  Only the new owner repairs, so the cluster-wide work is
    partitioned without coordination.  Returns object references
    restored by this node.
    """
    restored = 0
    for index, logicals in lost.items():
        donors = [candidate for candidate in service.indexes if candidate is not index]
        for logical in logicals:
            owner = index.mapping.physical_owner(logical)
            if owner not in served:
                continue
            rows = None
            for donor in donors:
                donor_owner = donor.mapping.physical_owner(logical)
                key = (donor.namespace, logical)
                try:
                    if donor_owner in served:
                        rows = donor.shard_at(donor_owner).snapshot_records(key)
                    else:
                        reply = service.dolr.channel.rpc(
                            owner,
                            donor_owner,
                            "hindex.snapshot",
                            {"namespace": donor.namespace, "logical": logical},
                        )
                        rows = reply["table"]
                except Exception:  # noqa: BLE001 - donor down; try the next replica
                    continue
                break
            if not rows:
                continue
            shard = index.shard_at(owner)
            for keywords, object_ids in rows:
                for object_id in object_ids:
                    shard.put((index.namespace, logical), frozenset(keywords), object_id)
                    restored += 1
            # Re-publication is a write like any other: caches covering
            # this table (here and at superset roots) are now stale.
            index.invalidate_coverage(logical, origin=owner)
    return restored


def apply_book(service, transport, book: PeerBook, served: set[int] | None = None) -> int:
    """Fold a whole peer book into the local view (see module docstring).

    Records are applied in ``(epoch, address)`` order so later facts
    win.  Returns the number of object references moved or restored.
    """
    served = set() if served is None else served
    moved = 0
    ordered = sorted(book.records.values(), key=lambda record: (record.epoch, record.address))
    for record in ordered:
        if record.member:
            moved += apply_alive(service, transport, record, served)
        elif record.status == "dead":
            moved += apply_gone(service, transport, record, served, repair=True)
        else:
            apply_gone(service, transport, record, served, repair=False)
    return moved
