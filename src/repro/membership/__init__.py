"""Dynamic membership: live join/leave/crash for running deployments.

The static stack derives its address set from ``(seed, config)`` at
build time; this package makes that set a runtime quantity.  It is
three layers, one module each:

- :mod:`repro.membership.book` — the convergent, epoch-versioned peer
  book every process keeps (the *what*);
- :mod:`repro.membership.transfer` — deterministic appliers that turn
  a membership fact into ring rewiring and index-table movement (the
  *how*);
- :mod:`repro.membership.agent` — the per-process agent running
  anti-entropy gossip, breaker-fed failure detection, and the
  ``memb.*`` management RPCs (the *when*).

Wire format: one new frame type, ``gos`` (docs/protocol.md §15),
carrying ``{"digest": [epoch, hash], "delta": [record-rows]}``.
Everything is off unless a cluster or daemon is built with
``membership=True`` — the default stack stays byte-identical.
"""

from repro.membership.agent import MembershipAgent, MembershipApplication, MembershipPolicy
from repro.membership.book import PeerBook, PeerRecord
from repro.membership.transfer import apply_alive, apply_book, apply_gone, repair_lost

__all__ = [
    "MembershipAgent",
    "MembershipApplication",
    "MembershipPolicy",
    "PeerBook",
    "PeerRecord",
    "apply_alive",
    "apply_book",
    "apply_gone",
    "repair_lost",
]
