"""The membership agent: gossip, failure detection, and churn driving.

One :class:`MembershipAgent` runs per process — per daemon in a
multi-process deployment, one for the whole :class:`~repro.net.cluster.
LocalCluster`.  It owns the process's :class:`~repro.membership.book.
PeerBook` and three activities:

**Anti-entropy gossip.**  A background thread periodically picks
``fanout`` random remote members and sends each a one-way ``gos`` frame
(see :meth:`~repro.net.aio.AsyncioTransport.gossip`) carrying the
book's digest plus the delta since what that peer is believed to know.
A receiver merges the delta (LWW, see the book), reconciles any applied
records into structural/data moves (see :mod:`.transfer`), and pushes
back its own delta when the digests still disagree — so books converge
in O(log n) rounds whatever the churn order.

**Failure detection.**  Gossip doubles as the heartbeat: a
:class:`~repro.net.errors.PeerUnreachableError` from a gossip push is a
miss, and so is an OPEN circuit breaker on the resilient channel — the
agent *reads* the breaker state that protocol traffic already maintains
(:meth:`~repro.sim.resilience.ResilientChannel.breaker_states`) instead
of running a second prober.  ``suspicion_threshold`` consecutive missed
ticks declare the peer dead: a ``dead`` record enters the book at a
fresh epoch, gossip spreads it, and every node's reconcile expels the
peer and (when the index is replicated) re-replicates its tables from
the surviving replicas — each new owner repairs its own share, so the
work partitions without coordination.

**Churn driving.**  :meth:`join` and :meth:`leave` are the graceful
entry points the cluster/daemon layers call; :meth:`crashed` is the
operator's "I know it's gone" shortcut past the suspicion window.

Remote management runs through :class:`MembershipApplication`
(``memb.*`` RPCs installed on every node): ``memb.book`` hands a
client the current book, ``memb.join`` lets a new daemon announce
itself to any seed, ``memb.leave`` asks a daemon to evacuate and shut
down.

Everything the agent observes is surfaced: ``memb.*`` counters on the
transport metrics registry (exported via ``/metrics``) and one
``membership`` trace event per applied record when a recorder is
active.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.membership.book import PeerBook, PeerRecord
from repro.membership.transfer import apply_alive, apply_gone
from repro.net.errors import PeerUnreachableError
from repro.obs.trace import active_recorder
from repro.sim.resilience import BreakerState
from repro.util.rng import make_rng

__all__ = ["MembershipAgent", "MembershipApplication", "MembershipPolicy"]


@dataclass(frozen=True)
class MembershipPolicy:
    """Tuning knobs of the gossip/failure-detection loop.

    ``gossip_interval`` is in wall-clock seconds (the agent thread runs
    on real time, independent of the transport's ``time_scale``);
    ``fanout`` is how many random remote members each tick addresses;
    ``suspicion_threshold`` is how many consecutive missed ticks turn
    suspicion into a death declaration.
    """

    gossip_interval: float = 0.25
    fanout: int = 2
    suspicion_threshold: int = 3

    def __post_init__(self) -> None:
        if self.gossip_interval <= 0:
            raise ValueError(f"gossip_interval must be positive, got {self.gossip_interval}")
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.suspicion_threshold < 1:
            raise ValueError(
                f"suspicion_threshold must be >= 1, got {self.suspicion_threshold}"
            )


class MembershipAgent:
    """Per-process membership authority (see module docstring).

    ``served`` is the set of addresses whose state lives in this
    process; it defaults to every address the transport serves.  All
    book access is serialized through one re-entrant lock — gossip
    handlers run on the transport's executor threads.
    """

    def __init__(
        self,
        service,
        transport,
        *,
        policy: MembershipPolicy | None = None,
        served: set[int] | None = None,
        seed: int = 0,
        on_change=None,
        on_leave=None,
    ):
        self.service = service
        self.transport = transport
        self.policy = policy or MembershipPolicy()
        if served is None:
            served = {a for a in service.dolr.addresses() if transport._serves(a)}
        self.served: set[int] = set(served)
        self.on_change = on_change
        self.on_leave = on_leave
        self._rng = make_rng(seed)
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # What each remote peer is believed to already hold (book epoch),
        # so gossip ships deltas, not whole books.
        self._believed: dict[int, int] = {}
        # Consecutive missed heartbeats per suspect.
        self._misses: dict[int, int] = {}
        # Push-back rate limit: wall-clock instant of the last reactive
        # gossip per destination.
        self._pushed_back: dict[int, float] = {}

        self.book = PeerBook()
        for address in service.dolr.addresses():
            endpoint = transport.endpoints.get(address) or transport.peers.get(address)
            self.book.apply(PeerRecord(address, "alive", 0, endpoint))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "MembershipAgent":
        """Attach the gossip handler and start the gossip/detector loop."""
        self.transport.set_gossip_handler(self._on_gossip)
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="membership-agent", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None
        self.transport.set_gossip_handler(None)

    def __enter__(self) -> "MembershipAgent":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the loop ------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.policy.gossip_interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - the loop must survive anything
                self.transport.metrics.increment("memb.tick_errors")

    def tick(self) -> None:
        """One gossip/failure-detection round (public for tests)."""
        with self._lock:
            if not self.served:
                return
            self._feed_breaker_evidence()
            targets = [a for a in self.book.members() if a not in self.served]
            if not targets:
                return
            sample = self._rng.sample(targets, min(self.policy.fanout, len(targets)))
            for dst in sample:
                self._gossip_to(dst)

    def _gossip_to(self, dst: int) -> None:
        """Push our delta to ``dst``; an unreachable peer is a miss."""
        payload = {
            "digest": list(self.book.digest()),
            "delta": [r.to_payload() for r in self.book.delta_since(self._believed.get(dst, -1))],
        }
        try:
            self.transport.gossip(min(self.served), dst, payload)
        except PeerUnreachableError:
            self._miss(dst)
            return
        self._believed[dst] = self.book.epoch
        self._misses.pop(dst, None)

    def _feed_breaker_evidence(self) -> None:
        """Read the resilient channel's breakers as heartbeat evidence:
        an OPEN breaker means protocol traffic to that peer is failing
        right now, which counts exactly like a missed gossip push."""
        channel = getattr(self.service.dolr, "channel", None)
        if channel is None:
            return
        try:
            states = channel.breaker_states()
        except AttributeError:
            return
        for address, state in states.items():
            if state is not BreakerState.OPEN or address in self.served:
                continue
            record = self.book.get(address)
            if record is not None and record.member:
                self._miss(address)

    def _miss(self, address: int) -> None:
        record = self.book.get(address)
        if record is not None and record.endpoint is None and address not in self.served:
            # Never knew how to reach it — a missing endpoint (e.g. a
            # deployment still booting) is not evidence of death.
            return
        self.transport.metrics.increment("memb.heartbeat_misses")
        count = self._misses.get(address, 0) + 1
        self._misses[address] = count
        if count >= self.policy.suspicion_threshold:
            self.declare_dead(address)

    # -- gossip receive ------------------------------------------------

    def _on_gossip(self, src: int, payload: dict) -> None:
        records = [PeerRecord.from_payload(row) for row in payload.get("delta", [])]
        with self._lock:
            applied = self.book.merge(records)
            if applied:
                self.transport.metrics.increment("memb.records_applied", len(applied))
                self._reconcile(applied)
                self._persist()
            digest = payload.get("digest")
            their_epoch = int(digest[0]) if digest else 0
            self._believed[src] = max(self._believed.get(src, -1), their_epoch)
            if not self.served or digest is None:
                return
            if tuple(digest) == self.book.digest() or self.book.epoch <= their_epoch:
                return
            # Anti-entropy push-back: we hold records the sender lacks.
            # Rate-limited per peer so two disagreeing books exchange
            # one delta per interval, not a storm.
            now = time.monotonic()
            if now - self._pushed_back.get(src, -1e18) < self.policy.gossip_interval:
                return
            self._pushed_back[src] = now
            self._gossip_to(src)

    # -- reconciliation ------------------------------------------------

    def _reconcile(self, applied: list[PeerRecord]) -> int:
        """Turn newly-applied records into structural + data moves.
        Returns object references moved or restored by this process."""
        metrics = self.transport.metrics
        moved = 0
        for record in applied:
            present = record.address in self.service.dolr.nodes
            if record.address in self.served and not record.member:
                # Someone declared a node gone that lives in *this*
                # process.  For "dead" we are the living counter-
                # evidence: outrank the record instead of expelling
                # ourselves (a graceful leave never takes this path —
                # it drives apply_gone directly).
                if record.status == "dead":
                    metrics.increment("memb.false_deaths_refuted")
                    self.assert_alive(record.address)
                continue
            try:
                if record.status == "alive":
                    refs = apply_alive(self.service, self.transport, record, self.served)
                    if not present:
                        metrics.increment("memb.joins_applied")
                        metrics.increment("memb.transferred_refs", refs)
                        moved += refs
                elif record.status == "leaving":
                    pass  # still serving; the "left" record does the work
                elif record.status == "left":
                    apply_gone(self.service, self.transport, record, self.served, repair=False)
                    if present:
                        metrics.increment("memb.leaves_applied")
                else:  # dead
                    refs = apply_gone(
                        self.service, self.transport, record, self.served, repair=True
                    )
                    if present:
                        metrics.increment("memb.deaths_applied")
                        metrics.increment("memb.repaired_refs", refs)
                        moved += refs
                if record.member:
                    self._misses.pop(record.address, None)
                self._emit(record, moved=moved)
            except Exception:  # noqa: BLE001 - reconcile must not poison the merge
                metrics.increment("memb.reconcile_errors")
        return moved

    def _emit(self, record: PeerRecord, *, moved: int) -> None:
        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                "membership",
                address=record.address,
                status=record.status,
                epoch=record.epoch,
                refs=moved,
            )

    def _persist(self) -> None:
        if self.on_change is None:
            return
        try:
            self.on_change(self.book)
        except Exception:  # noqa: BLE001 - persistence is advisory
            self.transport.metrics.increment("memb.persist_errors")

    def _burst(self) -> None:
        """Eagerly gossip a local change to every remote member (the
        periodic loop would spread it anyway; this cuts the latency)."""
        if not self.served:
            return
        for dst in self.book.members():
            if dst not in self.served:
                self._gossip_to(dst)

    # -- churn entry points --------------------------------------------

    def join(self, address: int) -> int:
        """Bring ``address`` into the ring as a locally-served node.

        Admits it structurally (which registers it on the transport —
        on a serving transport this binds its TCP server), hands over
        the tables it now owns from every locally-served node, records
        it in the book, and gossips the news.  Returns the number of
        object references pushed to it from this process.
        """
        with self._lock:
            self.served.add(address)
            epoch = self.book.next_epoch()
            moved = apply_alive(
                self.service, self.transport, PeerRecord(address, "alive", epoch), self.served
            )
            endpoint = self.transport.endpoints.get(address)
            record = PeerRecord(address, "alive", epoch, endpoint)
            self.book.apply(record)
            self.transport.metrics.increment("memb.joins_applied")
            self.transport.metrics.increment("memb.transferred_refs", moved)
            self._emit(record, moved=moved)
            self._persist()
            self._burst()
        return moved

    def leave(self, address: int, *, expel_locally: bool = True) -> int:
        """Gracefully retire a locally-served node.

        Announces ``leaving``, evacuates every index replica's tables to
        their as-if-gone owners, announces ``left``, and (when
        ``expel_locally``) expels the node from this process's ring
        view.  A daemon leaving *itself* passes ``expel_locally=False``:
        its whole process is about to exit, and expelling would tear
        down the very server that still owes the caller a reply — the
        survivors expel it when the ``left`` record reaches them.
        Returns the number of object references evacuated.
        """
        with self._lock:
            if address not in self.served:
                raise ValueError(f"node {address} is not served by this process")
            prior = self.book.get(address)
            endpoint = prior.endpoint if prior is not None else None
            leaving = PeerRecord(address, "leaving", self.book.next_epoch(), endpoint)
            self.book.apply(leaving)
            self._emit(leaving, moved=0)
            self._burst()
            moved = sum(index.evacuate(address) for index in self.service.indexes)
            directory = getattr(self.service, "directory", None)
            if directory is not None:
                moved += directory.evacuate(address)
            left = PeerRecord(address, "left", self.book.next_epoch(), endpoint)
            self.book.apply(left)
            self._emit(left, moved=moved)
            self._burst()
            if expel_locally:
                apply_gone(self.service, self.transport, left, self.served, repair=False)
            self.served.discard(address)
            self.transport.metrics.increment("memb.leaves_applied")
            self._persist()
        return moved

    def declare_dead(self, address: int) -> int:
        """Record ``address`` as dead, repair, and spread the news.
        Returns object references this process restored from replicas.
        Idempotent: re-declaring a non-member is a no-op."""
        with self._lock:
            record = self.book.get(address)
            if record is None or not record.member:
                self._misses.pop(address, None)
                return 0
            dead = PeerRecord(address, "dead", self.book.next_epoch(), record.endpoint)
            self.book.apply(dead)
            self.transport.metrics.increment("memb.deaths_declared")
            restored = self._reconcile([dead])
            self._misses.pop(address, None)
            self._persist()
            self._burst()
        return restored

    def crashed(self, address: int) -> int:
        """Operator shortcut: skip the suspicion window for a peer known
        to be gone (e.g. the cluster just killed it on purpose)."""
        return self.declare_dead(address)

    def assert_alive(self, address: int) -> PeerRecord:
        """Stamp a fresh ``alive`` record for a locally-served address.

        A (re)booting daemon calls this so its record outranks any stale
        ``dead`` a failure detector declared while it was down — the
        fresh epoch wins the merge everywhere gossip carries it.
        """
        with self._lock:
            record = PeerRecord(
                address,
                "alive",
                self.book.next_epoch(),
                self.transport.endpoints.get(address),
            )
            self.book.apply(record)
            self._persist()
            return record

    def announce(self, address: int, seed: int) -> int:
        """Introduce locally-served ``address`` to the deployment via
        ``seed``'s ``memb.join`` RPC, and fold the returned book (which
        carries the endpoints and epochs this agent lacks).  Returns the
        number of records the reply taught us."""
        with self._lock:
            record = self.book.get(address)
            if record is None or not record.member:
                raise ValueError(f"node {address} holds no alive record to announce")
            row = record.to_payload()
        reply = self.transport.rpc(address, seed, "memb.join", {"record": row})
        book = PeerBook.from_payload(reply["book"])
        with self._lock:
            applied = self.book.merge(book.records.values())
            if applied:
                self.transport.metrics.increment("memb.records_applied", len(applied))
                self._reconcile(applied)
                self._persist()
            return len(applied)


class MembershipApplication:
    """The ``memb.*`` RPC surface, installed on every DOLR node.

    All nodes share the one per-process agent, so any address a client
    can reach answers for the whole process.
    """

    prefix = "memb"

    def __init__(self, agent: MembershipAgent):
        self.agent = agent

    def handle(self, node, message):
        payload = message.payload
        if message.kind == "memb.book":
            with self.agent._lock:
                return {"book": self.agent.book.to_payload()}
        if message.kind == "memb.join":
            record = PeerRecord.from_payload(payload["record"])
            with self.agent._lock:
                applied = self.agent.book.merge([record])
                if applied:
                    self.agent.transport.metrics.increment(
                        "memb.records_applied", len(applied)
                    )
                    self.agent._reconcile(applied)
                    self.agent._persist()
                    self.agent._burst()
                return {"book": self.agent.book.to_payload()}
        if message.kind == "memb.leave":
            moved = self.agent.leave(node.address, expel_locally=False)
            if self.agent.on_leave is not None:
                self.agent.on_leave(node.address)
            return {"moved": moved}
        raise LookupError(f"unknown membership message kind {message.kind!r}")
