"""The versioned peer book: who is in the deployment, per this node.

Static deployments derive their address list from ``(seed, config)``
and never revisit it.  Dynamic membership replaces that assumption with
a *peer book*: a map ``address -> PeerRecord`` where each record is
stamped with the **epoch** (a per-book Lamport counter) at which it was
last changed.  Books merge by last-writer-wins on ``(epoch, status
precedence)``, which makes the merge commutative, associative and
idempotent — any gossip schedule converges every book to the same
state, whatever order the deltas arrive in.

Record life cycle (the transfer state machine of docs/protocol.md §15)::

    alive ──(graceful leave starts)──> leaving ──(evacuated)──> left
      │
      └─────(failure detector)──> dead

``leaving`` nodes still serve (they are mid-evacuation); ``left`` and
``dead`` are terminal.  The difference between the two terminals is
what the *appliers* do: ``left`` means the data was handed off by the
leaver, ``dead`` means survivors must re-replicate it from the
secondary hypercube (see :mod:`repro.membership.transfer`).

The book serializes to plain JSON-able rows, both for the gossip wire
payload and for ``<data-dir>/membership.json`` — the local state a
restarted daemon rejoins from without being re-passed the full peer
list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["PeerBook", "PeerRecord", "STATUSES"]

STATUSES = ("alive", "leaving", "left", "dead")

# Merge tie-break at equal epochs: a more terminal status wins, so a
# death/leave is never resurrected by a stale "alive" carrying the same
# epoch.  ``left`` and ``dead`` share a rank — both are terminal, and a
# record never moves between them (the first to be recorded sticks).
_PRECEDENCE = {"alive": 0, "leaving": 1, "left": 2, "dead": 2}


@dataclass(frozen=True)
class PeerRecord:
    """One peer's membership fact: status, stamped with the epoch of
    its last change, plus the TCP endpoint it serves (when known)."""

    address: int
    status: str
    epoch: int
    endpoint: tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"status must be one of {STATUSES}, got {self.status!r}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if self.endpoint is not None:
            object.__setattr__(self, "endpoint", (str(self.endpoint[0]), int(self.endpoint[1])))

    @property
    def member(self) -> bool:
        """Whether this peer currently participates in the ring
        (``leaving`` nodes still serve until their evacuation lands)."""
        return self.status in ("alive", "leaving")

    def to_payload(self) -> list:
        """JSON-able row, shared by the gossip wire format and the
        on-disk book."""
        endpoint = None if self.endpoint is None else [self.endpoint[0], self.endpoint[1]]
        return [self.address, self.status, self.epoch, endpoint]

    @classmethod
    def from_payload(cls, row) -> "PeerRecord":
        address, status, epoch, endpoint = row
        return cls(
            int(address),
            str(status),
            int(epoch),
            None if endpoint is None else (endpoint[0], endpoint[1]),
        )


def _wins(challenger: PeerRecord, incumbent: PeerRecord) -> bool:
    """Last-writer-wins order: higher epoch, then more terminal status.

    At a full tie the incumbent stays, except that a challenger carrying
    an endpoint beats an endpoint-less incumbent — discovery may learn
    an address before its endpoint, and the endpoint is pure metadata.
    """
    if challenger.epoch != incumbent.epoch:
        return challenger.epoch > incumbent.epoch
    if _PRECEDENCE[challenger.status] != _PRECEDENCE[incumbent.status]:
        return _PRECEDENCE[challenger.status] > _PRECEDENCE[incumbent.status]
    return incumbent.endpoint is None and challenger.endpoint is not None


class PeerBook:
    """A convergent map of peer records (see module docstring)."""

    def __init__(self, records: dict[int, PeerRecord] | None = None):
        self.records: dict[int, PeerRecord] = dict(records or {})

    # -- versioning ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """The book's version: the highest record epoch seen."""
        return max((record.epoch for record in self.records.values()), default=0)

    def next_epoch(self) -> int:
        """The epoch to stamp on a locally-originated change."""
        return self.epoch + 1

    def digest(self) -> tuple[int, int]:
        """``(epoch, content hash)`` — equal digests mean equal books.

        The hash is FNV-1a over the sorted ``(address, status, epoch)``
        triples, so it is stable across processes and Python runs
        (unlike ``hash()``).
        """
        accumulator = 0xCBF29CE484222325
        for address in sorted(self.records):
            record = self.records[address]
            for part in (record.address, _PRECEDENCE[record.status], record.status, record.epoch):
                for byte in str(part).encode():
                    accumulator ^= byte
                    accumulator = (accumulator * 0x100000001B3) % (1 << 64)
        return (self.epoch, accumulator)

    # -- queries ------------------------------------------------------

    def get(self, address: int) -> PeerRecord | None:
        return self.records.get(address)

    def members(self) -> list[int]:
        """Addresses currently in the ring, ascending."""
        return sorted(a for a, r in self.records.items() if r.member)

    def endpoints(self) -> dict[int, tuple[str, int]]:
        """Known endpoints of current members."""
        return {
            address: record.endpoint
            for address, record in self.records.items()
            if record.member and record.endpoint is not None
        }

    # -- merge --------------------------------------------------------

    def apply(self, record: PeerRecord) -> bool:
        """Adopt ``record`` if it wins over what the book holds.
        Returns True when the book changed."""
        incumbent = self.records.get(record.address)
        if incumbent is not None and not _wins(record, incumbent):
            return False
        if incumbent is not None and record.endpoint is None and incumbent.endpoint is not None:
            # Keep known metadata across status changes.
            record = PeerRecord(record.address, record.status, record.epoch, incumbent.endpoint)
        self.records[record.address] = record
        return True

    def merge(self, records) -> list[PeerRecord]:
        """Apply a delta; returns the records that changed this book,
        in deterministic ``(epoch, address)`` order."""
        applied = [record for record in records if self.apply(record)]
        applied.sort(key=lambda record: (record.epoch, record.address))
        return applied

    def delta_since(self, epoch: int) -> list[PeerRecord]:
        """Records changed after ``epoch`` — the gossip payload.  An
        ``epoch`` below 0 returns the whole book."""
        return sorted(
            (record for record in self.records.values() if record.epoch > epoch),
            key=lambda record: (record.epoch, record.address),
        )

    # -- (de)serialization --------------------------------------------

    def to_payload(self) -> list[list]:
        return [self.records[address].to_payload() for address in sorted(self.records)]

    @classmethod
    def from_payload(cls, rows) -> "PeerBook":
        book = cls()
        for row in rows:
            book.apply(PeerRecord.from_payload(row))
        return book

    def save(self, path: str | Path, *, extra: dict | None = None) -> None:
        """Write the book (plus deployment metadata) as JSON — the
        rejoin state a daemon persists under its ``--data-dir``."""
        payload = {"version": 1, "records": self.to_payload()}
        if extra:
            payload.update(extra)
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        temporary = target.with_suffix(target.suffix + ".tmp")
        temporary.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        temporary.replace(target)

    @classmethod
    def load(cls, path: str | Path) -> tuple["PeerBook", dict]:
        """Read a saved book; returns ``(book, metadata)`` where the
        metadata dict holds whatever ``extra`` keys were saved."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        book = cls.from_payload(payload.get("records", []))
        metadata = {k: v for k, v in payload.items() if k not in ("version", "records")}
        return book, metadata
