"""Direct object-to-node hashing — the "DHT-r" reference of Figure 6.

A typical DHT hashes objects by name to determine their handling nodes;
Figure 6 uses the resulting ranked load curve as the balance guideline
the hypercube scheme should approach.  This baseline has no search
capability at all — it exists purely as the load-distribution yardstick.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.util.hashing import stable_hash_to_range

__all__ = ["DirectHashPlacement"]


class DirectHashPlacement:
    """Uniform placement of objects onto ``2**r`` nodes by hashing IDs."""

    def __init__(self, dimension: int, *, salt: str = "direct"):
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self.num_nodes = 1 << dimension
        self.salt = salt

    def node_for(self, object_id: str) -> int:
        """The node handling ``object_id``."""
        return stable_hash_to_range(object_id, self.num_nodes, salt=f"direct/{self.salt}")

    def load_by_node(self, object_ids: Iterable[str]) -> dict[int, int]:
        """Objects handled per node, zero-load nodes included."""
        loads = dict.fromkeys(range(self.num_nodes), 0)
        for object_id in object_ids:
            loads[self.node_for(object_id)] += 1
        return loads
