"""Distributed inverted index — the "DII-r" baseline of Figure 6.

The straightforward decentralization of an inverted index (Section 1,
and [8, 14] of the paper): each keyword is hashed to a single node,
which stores references to *every* object containing that keyword.
Consequences the paper criticizes, all reproduced here:

* load follows keyword popularity — Zipfian, hence severely unbalanced
  (:class:`DiiPlacement` quantifies it for Figure 6);
* an object with k keywords costs k routed messages to insert or
  delete (:meth:`DistributedInvertedIndex.insert`);
* a multi-keyword query contacts one node per keyword and intersects
  posting lists at the requester, shipping the full lists;
* each keyword is handled by exactly one node, so a single failure
  blocks every query involving that keyword (the fault-tolerance
  experiment exercises this).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.keywords import normalize_keyword, normalize_keywords
from repro.dht.dolr import DolrNetwork, DolrNode
from repro.sim.network import Message
from repro.util.hashing import stable_hash_to_range

__all__ = ["DiiApplication", "DiiPlacement", "DiiQueryResult", "DistributedInvertedIndex"]


class DiiPlacement:
    """Static keyword-to-node placement over ``2**r`` nodes, for the
    load-distribution comparison (no network involved)."""

    def __init__(self, dimension: int, *, salt: str = "dii"):
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self.num_nodes = 1 << dimension
        self.salt = salt

    def node_for(self, keyword: str) -> int:
        return stable_hash_to_range(
            normalize_keyword(keyword), self.num_nodes, salt=f"dii/{self.salt}"
        )

    def load_by_node(self, keyword_sets: Iterable[Iterable[str]]) -> dict[int, int]:
        """Object references stored per node when every object is posted
        under each of its keywords — the paper's DII-r curve."""
        loads = dict.fromkeys(range(self.num_nodes), 0)
        for keywords in keyword_sets:
            for keyword in normalize_keywords(keywords):
                loads[self.node_for(keyword)] += 1
        return loads

    def storage_per_object(self, keyword_sets: Iterable[Iterable[str]]) -> float:
        """Mean index entries per object (= mean keyword-set size) — the
        redundancy factor versus the hypercube scheme's constant 1."""
        sizes = [len(normalize_keywords(k)) for k in keyword_sets]
        return sum(sizes) / len(sizes) if sizes else 0.0


@dataclass(frozen=True)
class DiiQueryResult:
    """Outcome of a DII multi-keyword query."""

    query: frozenset[str]
    object_ids: tuple[str, ...]
    nodes_contacted: int
    postings_shipped: int


class DiiApplication:
    """Per-node posting lists (message prefix ``dii``)."""

    prefix = "dii"

    def __init__(self) -> None:
        self.postings: dict[str, set[str]] = {}

    def handle(self, node: DolrNode, message: Message):
        payload = message.payload
        if message.kind == "dii.post":
            self.postings.setdefault(payload["keyword"], set()).add(payload["object_id"])
            return {}
        if message.kind == "dii.unpost":
            objects = self.postings.get(payload["keyword"])
            if objects is not None:
                objects.discard(payload["object_id"])
                if not objects:
                    del self.postings[payload["keyword"]]
            return {}
        if message.kind == "dii.fetch":
            return {"object_ids": sorted(self.postings.get(payload["keyword"], ()))}
        raise LookupError(f"unknown dii message kind {message.kind!r}")

    def load(self) -> int:
        return sum(len(objects) for objects in self.postings.values())


class DistributedInvertedIndex:
    """The DII scheme running over a DOLR network."""

    def __init__(self, dolr: DolrNetwork, *, salt: str = "dii"):
        self.dolr = dolr
        self.salt = salt
        dolr.ensure_application(lambda node: DiiApplication(), "dii")

    def keyword_key(self, keyword: str) -> int:
        """The DHT key owning ``keyword``'s posting list."""
        return self.dolr.space.hash_name(normalize_keyword(keyword), salt=f"dii.key/{self.salt}")

    def owner_of(self, keyword: str) -> int:
        return self.dolr.local_owner(self.keyword_key(keyword))

    # -- operations -----------------------------------------------------

    def bulk_load(self, items: Iterable[tuple[str, Iterable[str]]]) -> int:
        """Load postings directly into node applications (out-of-band
        bootstrap for query experiments; placement identical to
        :meth:`insert`).  Returns the number of postings written."""
        applications: dict[int, DiiApplication] = {}
        for address in self.dolr.addresses():
            application = self.dolr.node(address).application("dii")
            assert isinstance(application, DiiApplication)
            applications[address] = application
        owner_cache: dict[str, int] = {}
        posted = 0
        for object_id, keywords in items:
            for keyword in normalize_keywords(keywords):
                owner = owner_cache.get(keyword)
                if owner is None:
                    owner = self.owner_of(keyword)
                    owner_cache[keyword] = owner
                applications[owner].postings.setdefault(keyword, set()).add(object_id)
                posted += 1
        return posted

    def insert(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        """Post the object under each keyword: k routed messages."""
        first_copy = self.dolr.insert(object_id, holder)
        if not first_copy:
            return 0
        posted = 0
        for keyword in sorted(normalize_keywords(keywords)):
            self.dolr.route_rpc(
                self.keyword_key(keyword),
                "dii.post",
                {"keyword": keyword, "object_id": object_id},
                origin=holder,
            )
            posted += 1
        return posted

    def delete(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        """Remove the object's postings: k routed messages."""
        last_copy = self.dolr.delete(object_id, holder)
        if not last_copy:
            return 0
        removed = 0
        for keyword in sorted(normalize_keywords(keywords)):
            self.dolr.route_rpc(
                self.keyword_key(keyword),
                "dii.unpost",
                {"keyword": keyword, "object_id": object_id},
                origin=holder,
            )
            removed += 1
        return removed

    def query(self, keywords: Iterable[str], *, origin: int | None = None) -> DiiQueryResult:
        """Fetch each keyword's posting list, intersect at the requester.

        Raises :class:`~repro.sim.network.NodeUnreachableError` when any
        keyword's node is down — the availability weakness the paper
        points out.
        """
        query = normalize_keywords(keywords)
        origin = self.dolr.any_address() if origin is None else origin
        intersection: set[str] | None = None
        shipped = 0
        for keyword in sorted(query):
            result, _ = self.dolr.route_rpc(
                self.keyword_key(keyword),
                "dii.fetch",
                {"keyword": keyword},
                origin=origin,
            )
            posting = set(result["object_ids"])
            shipped += len(posting)
            intersection = posting if intersection is None else intersection & posting
        assert intersection is not None
        return DiiQueryResult(
            query=query,
            object_ids=tuple(sorted(intersection)),
            nodes_contacted=len(query),
            postings_shipped=shipped,
        )
