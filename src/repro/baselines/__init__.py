"""Baseline index schemes the paper compares against.

* :mod:`repro.baselines.direct` — hash objects straight to nodes, the
  "DHT-r" reference lines of Figure 6 (the load balance a plain DHT
  achieves, which the hypercube scheme aims to match).
* :mod:`repro.baselines.dii` — the distributed inverted index ("DII-r"
  in Figure 6): one node per keyword, posting lists of every object
  containing it.  Severely unbalanced under Zipfian keyword popularity,
  k messages per object insert/delete, single point of failure per
  keyword.
* :mod:`repro.baselines.kss` — keyword-set search (Gnawali's KSS):
  index an object under every keyword subset up to a window size,
  trading storage blow-up for single-lookup multi-keyword queries.
"""

from repro.baselines.dii import DiiApplication, DiiPlacement, DistributedInvertedIndex
from repro.baselines.direct import DirectHashPlacement
from repro.baselines.kss import KeywordSetIndex, KssPlacement

__all__ = [
    "DiiApplication",
    "DiiPlacement",
    "DirectHashPlacement",
    "DistributedInvertedIndex",
    "KeywordSetIndex",
    "KssPlacement",
]
