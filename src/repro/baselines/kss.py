"""Keyword-set search (KSS) — Gnawali's scheme, the paper's reference [2].

KSS indexes an object under *every subset* of its keyword set up to a
window size w (singletons, pairs, ...), so a query of at most w
keywords is a single lookup.  The price is combinatorial storage: an
object with k keywords costs ``C(k,1) + ... + C(k,w)`` index entries —
the redundancy problem the paper's Section 1 highlights ("information
about the object is repeatedly stored at k (or more) different
places").  This implementation provides both the static placement
analysis (storage blow-up, load distribution) and a runnable index over
a DOLR network.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.keywords import normalize_keywords
from repro.dht.dolr import DolrNetwork, DolrNode
from repro.sim.network import Message
from repro.util.hashing import stable_hash_to_range

__all__ = ["KssApplication", "KssPlacement", "KssQueryResult", "KeywordSetIndex"]


def _subset_label(subset: tuple[str, ...]) -> str:
    return "\x1f".join(subset)


def _window_subsets(keywords: frozenset[str], window: int) -> list[tuple[str, ...]]:
    ordered = sorted(keywords)
    subsets: list[tuple[str, ...]] = []
    for size in range(1, min(window, len(ordered)) + 1):
        subsets.extend(itertools.combinations(ordered, size))
    return subsets


class KssPlacement:
    """Static keyword-subset-to-node placement over ``2**r`` nodes."""

    def __init__(self, dimension: int, *, window: int = 2, salt: str = "kss"):
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.dimension = dimension
        self.num_nodes = 1 << dimension
        self.window = window
        self.salt = salt

    def node_for(self, subset: Iterable[str]) -> int:
        ordered = tuple(sorted(normalize_keywords(subset)))
        return stable_hash_to_range(
            _subset_label(ordered), self.num_nodes, salt=f"kss/{self.salt}"
        )

    def entries_per_object(self, keyword_count: int) -> int:
        """C(k,1) + ... + C(k,w): the storage multiplier."""
        return sum(
            math.comb(keyword_count, size)
            for size in range(1, min(self.window, keyword_count) + 1)
        )

    def load_by_node(self, keyword_sets: Iterable[Iterable[str]]) -> dict[int, int]:
        loads = dict.fromkeys(range(self.num_nodes), 0)
        for keywords in keyword_sets:
            normalized = normalize_keywords(keywords)
            for subset in _window_subsets(normalized, self.window):
                loads[
                    stable_hash_to_range(
                        _subset_label(subset), self.num_nodes, salt=f"kss/{self.salt}"
                    )
                ] += 1
        return loads

    def storage_per_object(self, keyword_sets: Iterable[Iterable[str]]) -> float:
        sizes = [len(normalize_keywords(k)) for k in keyword_sets]
        if not sizes:
            return 0.0
        return sum(self.entries_per_object(size) for size in sizes) / len(sizes)


@dataclass(frozen=True)
class KssQueryResult:
    """Outcome of a KSS query."""

    query: frozenset[str]
    object_ids: tuple[str, ...]
    candidates: int
    nodes_contacted: int


class KssApplication:
    """Per-node subset postings (message prefix ``kss``).

    Entries store the object's full keyword set so over-window queries
    can be verified at the requester."""

    prefix = "kss"

    def __init__(self) -> None:
        self.postings: dict[str, dict[str, tuple[str, ...]]] = {}

    def handle(self, node: DolrNode, message: Message):
        payload = message.payload
        if message.kind == "kss.post":
            bucket = self.postings.setdefault(payload["subset"], {})
            bucket[payload["object_id"]] = tuple(payload["keywords"])
            return {}
        if message.kind == "kss.unpost":
            bucket = self.postings.get(payload["subset"])
            if bucket is not None:
                bucket.pop(payload["object_id"], None)
                if not bucket:
                    del self.postings[payload["subset"]]
            return {}
        if message.kind == "kss.fetch":
            bucket = self.postings.get(payload["subset"], {})
            return {
                "entries": sorted(
                    (object_id, list(keywords)) for object_id, keywords in bucket.items()
                )
            }
        raise LookupError(f"unknown kss message kind {message.kind!r}")

    def load(self) -> int:
        return sum(len(bucket) for bucket in self.postings.values())


class KeywordSetIndex:
    """The KSS scheme running over a DOLR network."""

    def __init__(self, dolr: DolrNetwork, *, window: int = 2, salt: str = "kss"):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.dolr = dolr
        self.window = window
        self.salt = salt
        dolr.ensure_application(lambda node: KssApplication(), "kss")

    def subset_key(self, subset: tuple[str, ...]) -> int:
        return self.dolr.space.hash_name(_subset_label(subset), salt=f"kss.key/{self.salt}")

    # -- operations -----------------------------------------------------

    def insert(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        """Post the object under every window subset; returns the entry
        count (the storage blow-up, live)."""
        normalized = normalize_keywords(keywords)
        first_copy = self.dolr.insert(object_id, holder)
        if not first_copy:
            return 0
        posted = 0
        for subset in _window_subsets(normalized, self.window):
            self.dolr.route_rpc(
                self.subset_key(subset),
                "kss.post",
                {
                    "subset": _subset_label(subset),
                    "object_id": object_id,
                    "keywords": sorted(normalized),
                },
                origin=holder,
            )
            posted += 1
        return posted

    def delete(self, object_id: str, keywords: Iterable[str], holder: int) -> int:
        normalized = normalize_keywords(keywords)
        last_copy = self.dolr.delete(object_id, holder)
        if not last_copy:
            return 0
        removed = 0
        for subset in _window_subsets(normalized, self.window):
            self.dolr.route_rpc(
                self.subset_key(subset),
                "kss.unpost",
                {"subset": _subset_label(subset), "object_id": object_id},
                origin=holder,
            )
            removed += 1
        return removed

    def query(self, keywords: Iterable[str], *, origin: int | None = None) -> KssQueryResult:
        """One lookup when |K| <= window; otherwise fetch the first
        window-sized subset and verify candidates at the requester."""
        query = normalize_keywords(keywords)
        origin = self.dolr.any_address() if origin is None else origin
        probe = tuple(sorted(query))[: self.window]
        result, _ = self.dolr.route_rpc(
            self.subset_key(probe),
            "kss.fetch",
            {"subset": _subset_label(probe)},
            origin=origin,
        )
        matches = [
            object_id
            for object_id, full_keywords in result["entries"]
            if query <= frozenset(full_keywords)
        ]
        return KssQueryResult(
            query=query,
            object_ids=tuple(sorted(matches)),
            candidates=len(result["entries"]),
            nodes_contacted=1,
        )
