"""WAL record format: CRC-framed, codec-encoded state mutations.

One record describes one mutation of a node's durable state — an index
table entry added or removed, a whole table dropped (churn handoff), a
replica reference registered or withdrawn, or a full entry emitted by a
snapshot.  On disk every record is one frame::

    +----------------+---------------+------------------------------+
    | length (4B BE) | crc32 (4B BE) | version byte + payload       |
    +----------------+---------------+------------------------------+

``length`` covers the body (version byte + payload); ``crc32`` is over
the same bytes, so a torn or bit-flipped tail is detected before any
payload parsing.  The version byte selects the payload codec — the
same codec core the wire format uses (:mod:`repro.net.codec`):

* ``1`` — the record's fields lowered through the tagged-JSON
  encoding, keys sorted (the original format; still written when the
  store is pinned to the JSON codec, always still readable).
* ``2`` — the same field dict in the binary value encoding, keys in
  sorted order (varint ints, length-prefixed raw-UTF-8 strings).

Identical state always produces identical bytes under either codec.
Recovery auto-detects per record, so a WAL whose head predates the
binary codec and whose tail postdates it — the rolling-upgrade restart
— replays seamlessly; there is no file-level codec marker to migrate.

Replay is pure: :func:`decode_records` walks a byte string and stops at
the first frame that is incomplete or fails its CRC (the torn tail a
crash mid-append leaves behind), reporting how many clean bytes it
consumed so the caller can truncate; :func:`replay` folds records into
the ``(tables, refs)`` state the index shard and DOLR node hold in
memory.  Any prefix of a valid WAL decodes to a prefix of its records —
the property the recovery tests drive with hypothesis.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any

from repro.net.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    codec_by_name,
    decode_value_binary,
    decode_value_json,
    encode_value_binary,
    encode_value_json,
    new_buffer,
    write_uvarint,
)
from repro.net.errors import ProtocolError

__all__ = [
    "WAL_VERSION",
    "WAL_VERSION_BINARY",
    "StoreRecord",
    "WalDecodeResult",
    "apply_record",
    "decode_records",
    "encode_record",
    "encode_record_generic",
    "entry_records",
    "replay",
]

WAL_VERSION = 1  # JSON-payload records
WAL_VERSION_BINARY = 2  # binary-payload records
# A single record is one index entry or reference — far below this; the
# cap exists so a corrupted length field cannot demand an absurd read.
MAX_RECORD_BYTES = 16 * 1024 * 1024
_FRAME = struct.Struct("!II")  # (body length, crc32 of body)

# op -> payload fields (beyond "op"); also the legality check on decode.
_OPS = {
    "put": ("ns", "lg", "kw", "id"),
    "remove": ("ns", "lg", "kw", "id"),
    "drop": ("ns", "lg"),
    "entry": ("ns", "lg", "kw", "ids"),
    "ref_put": ("id", "h"),
    "ref_del": ("id", "h"),
}

Tables = dict[tuple[str, int], dict[frozenset[str], set[str]]]
Refs = dict[str, set[int]]


@dataclass(frozen=True)
class StoreRecord:
    """One durable mutation.

    ``op`` is one of ``put`` / ``remove`` (index entry maintenance),
    ``drop`` (a whole table handed off during churn), ``entry`` (one
    full table entry, as snapshots emit), ``ref_put`` / ``ref_del``
    (replica references).  Unused fields keep their defaults.
    """

    op: str
    namespace: str = ""
    logical: int = 0
    keywords: tuple[str, ...] = ()
    object_id: str = ""
    object_ids: tuple[str, ...] = ()
    holder: int = 0


_HEADER_HOLE = b"\x00" * _FRAME.size
# Pre-encoded binary dict keys (varint length + raw UTF-8), in the
# sorted order every record payload uses.
_K_H, _K_ID = b"\x01h", b"\x02id"
_K_KW, _K_LG, _K_NS, _K_OP = b"\x02kw", b"\x02lg", b"\x02ns", b"\x02op"
# Binary tags mirrored from repro.net.codec for the inlined hot paths
# below (dict header with its count baked in, plus the three value
# tags these records use); the store tests pin byte-identity with
# encode_record, so drift between the copies cannot hide.
_B_DICT5, _B_DICT3 = b"\x0a\x05", b"\x0a\x03"
_B_STR, _B_INT, _B_TUPLE = 0x05, 0x03, 0x07


def _seal(buffer: bytearray) -> bytes:
    """Patch the CRC frame header over a body built after the hole."""
    body = memoryview(buffer)[_FRAME.size :]
    length, crc = len(body), zlib.crc32(body)
    body.release()  # the buffer is reused; no exports may outlive this call
    _FRAME.pack_into(buffer, 0, length, crc)
    return bytes(buffer)


def _frame_payload(payload: dict[str, Any], codec_id: int) -> bytes:
    """Frame one record body: version byte + codec-encoded payload.

    ``payload`` must be built in sorted-key order — both codecs then
    emit deterministic bytes (JSON additionally sorts on its own).
    """
    buffer = new_buffer()
    buffer += _HEADER_HOLE
    if codec_id == CODEC_JSON:
        buffer.append(WAL_VERSION)
        buffer += json.dumps(
            encode_value_json(payload), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    else:
        buffer.append(WAL_VERSION_BINARY)
        encode_value_binary(buffer, payload)
    return _seal(buffer)


def encode_entry_op(
    op: str,
    namespace: str,
    logical: int,
    keywords: tuple[str, ...],
    object_id: str,
    codec: str = "binary",
) -> bytes:
    """Frame a ``put``/``remove`` from bare fields (the hot write path —
    no :class:`StoreRecord` built, no generic dispatch; byte-identical
    to :func:`encode_record` on the equivalent record, a property the
    store tests pin)."""
    if codec != "binary" and codec_by_name(codec).id != CODEC_BINARY:
        return _frame_payload(
            {"id": object_id, "kw": keywords, "lg": logical, "ns": namespace, "op": op},
            CODEC_JSON,
        )
    buffer = new_buffer()
    append = buffer.append
    buffer += _HEADER_HOLE
    append(WAL_VERSION_BINARY)
    buffer += _B_DICT5
    buffer += _K_ID
    append(_B_STR)
    raw = object_id.encode("utf-8")
    size = len(raw)
    append(size) if size < 0x80 else write_uvarint(buffer, size)
    buffer += raw
    buffer += _K_KW
    append(_B_TUPLE)
    size = len(keywords)
    append(size) if size < 0x80 else write_uvarint(buffer, size)
    for keyword in keywords:
        append(_B_STR)
        raw = keyword.encode("utf-8")
        size = len(raw)
        append(size) if size < 0x80 else write_uvarint(buffer, size)
        buffer += raw
    buffer += _K_LG
    append(_B_INT)
    zigzag = (logical << 1) if logical >= 0 else ((-logical << 1) - 1)
    append(zigzag) if zigzag < 0x80 else write_uvarint(buffer, zigzag)
    buffer += _K_NS
    append(_B_STR)
    raw = namespace.encode("utf-8")
    size = len(raw)
    append(size) if size < 0x80 else write_uvarint(buffer, size)
    buffer += raw
    buffer += _K_OP
    append(_B_STR)
    raw = op.encode("utf-8")
    size = len(raw)
    append(size) if size < 0x80 else write_uvarint(buffer, size)
    buffer += raw
    return _seal(buffer)


def encode_ref_op(op: str, object_id: str, holder: int, codec: str = "binary") -> bytes:
    """Frame a ``ref_put``/``ref_del`` from bare fields."""
    if codec != "binary" and codec_by_name(codec).id != CODEC_BINARY:
        return _frame_payload({"h": holder, "id": object_id, "op": op}, CODEC_JSON)
    buffer = new_buffer()
    append = buffer.append
    buffer += _HEADER_HOLE
    append(WAL_VERSION_BINARY)
    buffer += _B_DICT3
    buffer += _K_H
    append(_B_INT)
    zigzag = (holder << 1) if holder >= 0 else ((-holder << 1) - 1)
    append(zigzag) if zigzag < 0x80 else write_uvarint(buffer, zigzag)
    buffer += _K_ID
    append(_B_STR)
    raw = object_id.encode("utf-8")
    size = len(raw)
    append(size) if size < 0x80 else write_uvarint(buffer, size)
    buffer += raw
    buffer += _K_OP
    append(_B_STR)
    raw = op.encode("utf-8")
    size = len(raw)
    append(size) if size < 0x80 else write_uvarint(buffer, size)
    buffer += raw
    return _seal(buffer)


def _record_payload(record: StoreRecord) -> dict[str, Any]:
    """One record's field dict, keys in sorted order."""
    fields = _OPS.get(record.op)
    if fields is None:
        raise ValueError(f"unknown store record op {record.op!r}")
    payload: dict[str, Any] = {}
    if "h" in fields:
        payload["h"] = record.holder
    if record.op == "entry":
        payload["ids"] = tuple(record.object_ids)
    elif "id" in fields:
        payload["id"] = record.object_id
    if "kw" in fields:
        payload["kw"] = tuple(record.keywords)
    if "ns" in fields:
        payload["lg"] = record.logical
        payload["ns"] = record.namespace
    payload["op"] = record.op
    return payload


def encode_record(record: StoreRecord, codec: str = "binary") -> bytes:
    """Serialize one record, frame header included."""
    return _frame_payload(_record_payload(record), codec_by_name(codec).id)


# The hand-assembled per-op JSON encoder this module used to carry is
# gone: both codecs now run through the shared core, and the old
# "generic reference encoder" *is* the encoder.
encode_record_generic = encode_record


def _decode_body(body: bytes) -> StoreRecord:
    version = body[0]
    if version == WAL_VERSION:
        payload = decode_value_json(json.loads(body[1:].decode("utf-8")))
    elif version == WAL_VERSION_BINARY:
        view = memoryview(body)
        payload, position = decode_value_binary(view, 1)
        if position != len(view):
            raise ValueError(f"trailing bytes after record ({len(view) - position} left)")
    else:
        raise ValueError(
            f"unsupported WAL version {version} "
            f"(speaking {WAL_VERSION}/{WAL_VERSION_BINARY})"
        )
    if not isinstance(payload, dict):
        raise ValueError("WAL record payload must be an object")
    op = payload.get("op")
    fields = _OPS.get(op)
    if fields is None:
        raise ValueError(f"unknown store record op {op!r}")
    return StoreRecord(
        op=op,
        namespace=str(payload.get("ns", "")),
        logical=int(payload.get("lg", 0)),
        keywords=tuple(payload.get("kw", ())),
        object_id=str(payload.get("id", "")) if op != "entry" else "",
        object_ids=tuple(payload.get("ids", ())),
        holder=int(payload.get("h", 0)),
    )


@dataclass(frozen=True)
class WalDecodeResult:
    """Outcome of decoding a WAL byte string.

    ``consumed`` is the length of the clean prefix (truncate the file to
    it to drop a torn tail); ``truncated`` is True when trailing bytes
    were dropped, with ``reason`` saying why.
    """

    records: tuple[StoreRecord, ...]
    consumed: int
    truncated: bool = False
    reason: str | None = None


def decode_records(data: bytes) -> WalDecodeResult:
    """Decode every clean record from the head of ``data``.

    Never raises on bad input: decoding stops at the first incomplete,
    CRC-failing, or malformed frame, and everything from there on is
    reported as the torn tail.  Each record's codec is detected from
    its own version byte, so mixed JSON/binary files replay.
    """
    records: list[StoreRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME.size:
            return WalDecodeResult(tuple(records), offset, True, "partial frame header")
        length, crc = _FRAME.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD_BYTES:
            return WalDecodeResult(tuple(records), offset, True, f"invalid frame length {length}")
        start = offset + _FRAME.size
        if total - start < length:
            return WalDecodeResult(tuple(records), offset, True, "partial frame body")
        body = data[start : start + length]
        if zlib.crc32(body) != crc:
            return WalDecodeResult(tuple(records), offset, True, "crc mismatch")
        try:
            records.append(_decode_body(body))
        except (ValueError, TypeError, UnicodeDecodeError, json.JSONDecodeError,
                IndexError, ProtocolError) as error:
            return WalDecodeResult(tuple(records), offset, True, f"malformed record: {error}")
        offset = start + length
    return WalDecodeResult(tuple(records), offset)


# -- replay ---------------------------------------------------------------


def apply_record(tables: Tables, refs: Refs, record: StoreRecord) -> None:
    """Fold one record into in-memory state (mirrors the live mutations
    of :class:`~repro.core.index.IndexShard` and
    :class:`~repro.dht.dolr.DolrNode`)."""
    op = record.op
    if op in ("put", "entry"):
        key = (record.namespace, record.logical)
        objects = tables.setdefault(key, {}).setdefault(frozenset(record.keywords), set())
        if op == "put":
            objects.add(record.object_id)
        else:
            objects.update(record.object_ids)
    elif op == "remove":
        key = (record.namespace, record.logical)
        table = tables.get(key)
        keywords = frozenset(record.keywords)
        if table is None or keywords not in table:
            return
        objects = table[keywords]
        objects.discard(record.object_id)
        if not objects:
            del table[keywords]
            if not table:
                del tables[key]
    elif op == "drop":
        tables.pop((record.namespace, record.logical), None)
    elif op == "ref_put":
        refs.setdefault(record.object_id, set()).add(record.holder)
    elif op == "ref_del":
        holders = refs.get(record.object_id)
        if holders is not None:
            holders.discard(record.holder)
            if not holders:
                del refs[record.object_id]
    else:  # unreachable: decode rejects unknown ops
        raise ValueError(f"unknown store record op {op!r}")


def replay(records: tuple[StoreRecord, ...] | list[StoreRecord]) -> tuple[Tables, Refs]:
    """State after applying ``records`` in order to empty tables/refs."""
    tables: Tables = {}
    refs: Refs = {}
    for record in records:
        apply_record(tables, refs, record)
    return tables, refs


def entry_records(tables: Tables, refs: Refs) -> list[StoreRecord]:
    """The canonical snapshot of a state: one ``entry`` record per table
    entry, one ``ref_put`` per reference, deterministically ordered —
    the same stream churn handoff sends per table."""
    records: list[StoreRecord] = []
    for namespace, logical in sorted(tables):
        table = tables[(namespace, logical)]
        for keywords in sorted(table, key=lambda k: (len(k), tuple(sorted(k)))):
            records.append(
                StoreRecord(
                    op="entry",
                    namespace=namespace,
                    logical=logical,
                    keywords=tuple(sorted(keywords)),
                    object_ids=tuple(sorted(table[keywords])),
                )
            )
    for object_id in sorted(refs):
        for holder in sorted(refs[object_id]):
            records.append(StoreRecord(op="ref_put", object_id=object_id, holder=holder))
    return records
