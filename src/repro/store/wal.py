"""WAL record format: CRC-framed, tagged-encoded state mutations.

One record describes one mutation of a node's durable state — an index
table entry added or removed, a whole table dropped (churn handoff), a
replica reference registered or withdrawn, or a full entry emitted by a
snapshot.  On disk every record is one frame::

    +----------------+---------------+------------------------------+
    | length (4B BE) | crc32 (4B BE) | version byte + JSON payload  |
    +----------------+---------------+------------------------------+

``length`` covers the body (version byte + payload); ``crc32`` is over
the same bytes, so a torn or bit-flipped tail is detected before any
JSON parsing.  The payload is the record's fields lowered through the
same tagged encoding the wire format uses
(:func:`repro.net.wire.encode_value`), with keys sorted — identical
state always produces identical bytes.

Replay is pure: :func:`decode_records` walks a byte string and stops at
the first frame that is incomplete or fails its CRC (the torn tail a
crash mid-append leaves behind), reporting how many clean bytes it
consumed so the caller can truncate; :func:`replay` folds records into
the ``(tables, refs)`` state the index shard and DOLR node hold in
memory.  Any prefix of a valid WAL decodes to a prefix of its records —
the property the recovery tests drive with hypothesis.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from json.encoder import encode_basestring_ascii as _json_string
from typing import Any

from repro.net.wire import decode_value, encode_value

__all__ = [
    "WAL_VERSION",
    "StoreRecord",
    "WalDecodeResult",
    "apply_record",
    "decode_records",
    "encode_record",
    "encode_record_generic",
    "entry_records",
    "replay",
]

WAL_VERSION = 1
_FRAME = struct.Struct("!II")  # (body length, crc32 of body)
# A single record is one index entry or reference — far below this; the
# cap exists so a corrupted length field cannot demand an absurd read.
MAX_RECORD_BYTES = 16 * 1024 * 1024

# op -> payload fields (beyond "op"); also the legality check on decode.
_OPS = {
    "put": ("ns", "lg", "kw", "id"),
    "remove": ("ns", "lg", "kw", "id"),
    "drop": ("ns", "lg"),
    "entry": ("ns", "lg", "kw", "ids"),
    "ref_put": ("id", "h"),
    "ref_del": ("id", "h"),
}

Tables = dict[tuple[str, int], dict[frozenset[str], set[str]]]
Refs = dict[str, set[int]]


@dataclass(frozen=True)
class StoreRecord:
    """One durable mutation.

    ``op`` is one of ``put`` / ``remove`` (index entry maintenance),
    ``drop`` (a whole table handed off during churn), ``entry`` (one
    full table entry, as snapshots emit), ``ref_put`` / ``ref_del``
    (replica references).  Unused fields keep their defaults.
    """

    op: str
    namespace: str = ""
    logical: int = 0
    keywords: tuple[str, ...] = ()
    object_id: str = ""
    object_ids: tuple[str, ...] = ()
    holder: int = 0


def _tuple_json(items: tuple[str, ...]) -> str:
    """A tuple of strings in the wire's tagged encoding, keys sorted."""
    return '{"!":"tuple","v":[%s]}' % ",".join(map(_json_string, items))


def _frame(body_text: str) -> bytes:
    body = _VERSION_PREFIX + body_text.encode("utf-8")
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


_VERSION_PREFIX = bytes([WAL_VERSION])


def encode_entry_op(
    op: str, namespace: str, logical: int, keywords: tuple[str, ...], object_id: str
) -> bytes:
    """Frame a ``put``/``remove`` from bare fields (the hot write path —
    no :class:`StoreRecord` built)."""
    return _frame(
        '{"id":%s,"kw":%s,"lg":%d,"ns":%s,"op":"%s"}'
        % (_json_string(object_id), _tuple_json(keywords), logical, _json_string(namespace), op)
    )


def encode_ref_op(op: str, object_id: str, holder: int) -> bytes:
    """Frame a ``ref_put``/``ref_del`` from bare fields."""
    return _frame('{"h":%d,"id":%s,"op":"%s"}' % (holder, _json_string(object_id), op))


def encode_record(record: StoreRecord) -> bytes:
    """Serialize one record, frame header included.

    Hand-assembles the sorted-keys compact JSON for each known record
    shape — byte-identical to ``json.dumps(encode_value(payload),
    sort_keys=True, separators=(",", ":"))`` (the property
    :func:`encode_record_generic` pins in tests) but ~6x cheaper, which
    matters because one of these runs per index mutation on the durable
    write path.
    """
    op = record.op
    if op == "put" or op == "remove":
        return encode_entry_op(op, record.namespace, record.logical,
                               record.keywords, record.object_id)
    if op == "ref_put" or op == "ref_del":
        return encode_ref_op(op, record.object_id, record.holder)
    if op == "entry":
        return _frame(
            '{"ids":%s,"kw":%s,"lg":%d,"ns":%s,"op":"entry"}'
            % (
                _tuple_json(record.object_ids),
                _tuple_json(record.keywords),
                record.logical,
                _json_string(record.namespace),
            )
        )
    if op == "drop":
        return _frame(
            '{"lg":%d,"ns":%s,"op":"drop"}'
            % (record.logical, _json_string(record.namespace))
        )
    raise ValueError(f"unknown store record op {op!r}")


def encode_record_generic(record: StoreRecord) -> bytes:
    """The reference encoder: lower the payload through the wire's
    tagged encoding and dump sorted-keys compact JSON.  Kept as the
    executable definition of the format; :func:`encode_record` is the
    equivalent fast path."""
    payload: dict[str, Any] = {"op": record.op}
    fields = _OPS.get(record.op)
    if fields is None:
        raise ValueError(f"unknown store record op {record.op!r}")
    if "ns" in fields:
        payload["ns"] = record.namespace
        payload["lg"] = record.logical
    if "kw" in fields:
        payload["kw"] = tuple(record.keywords)
    if record.op == "entry":
        payload["ids"] = tuple(record.object_ids)
    elif "id" in fields:
        payload["id"] = record.object_id
    if "h" in fields:
        payload["h"] = record.holder
    body = bytes([WAL_VERSION]) + json.dumps(
        encode_value(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes) -> StoreRecord:
    if body[0] != WAL_VERSION:
        raise ValueError(f"unsupported WAL version {body[0]} (speaking {WAL_VERSION})")
    payload = decode_value(json.loads(body[1:].decode("utf-8")))
    if not isinstance(payload, dict):
        raise ValueError("WAL record payload must be an object")
    op = payload.get("op")
    fields = _OPS.get(op)
    if fields is None:
        raise ValueError(f"unknown store record op {op!r}")
    return StoreRecord(
        op=op,
        namespace=str(payload.get("ns", "")),
        logical=int(payload.get("lg", 0)),
        keywords=tuple(payload.get("kw", ())),
        object_id=str(payload.get("id", "")) if op != "entry" else "",
        object_ids=tuple(payload.get("ids", ())),
        holder=int(payload.get("h", 0)),
    )


@dataclass(frozen=True)
class WalDecodeResult:
    """Outcome of decoding a WAL byte string.

    ``consumed`` is the length of the clean prefix (truncate the file to
    it to drop a torn tail); ``truncated`` is True when trailing bytes
    were dropped, with ``reason`` saying why.
    """

    records: tuple[StoreRecord, ...]
    consumed: int
    truncated: bool = False
    reason: str | None = None


def decode_records(data: bytes) -> WalDecodeResult:
    """Decode every clean record from the head of ``data``.

    Never raises on bad input: decoding stops at the first incomplete,
    CRC-failing, or malformed frame, and everything from there on is
    reported as the torn tail.
    """
    records: list[StoreRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME.size:
            return WalDecodeResult(tuple(records), offset, True, "partial frame header")
        length, crc = _FRAME.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD_BYTES:
            return WalDecodeResult(tuple(records), offset, True, f"invalid frame length {length}")
        start = offset + _FRAME.size
        if total - start < length:
            return WalDecodeResult(tuple(records), offset, True, "partial frame body")
        body = data[start : start + length]
        if zlib.crc32(body) != crc:
            return WalDecodeResult(tuple(records), offset, True, "crc mismatch")
        try:
            records.append(_decode_body(body))
        except (ValueError, UnicodeDecodeError, json.JSONDecodeError, IndexError) as error:
            return WalDecodeResult(tuple(records), offset, True, f"malformed record: {error}")
        offset = start + length
    return WalDecodeResult(tuple(records), offset)


# -- replay ---------------------------------------------------------------


def apply_record(tables: Tables, refs: Refs, record: StoreRecord) -> None:
    """Fold one record into in-memory state (mirrors the live mutations
    of :class:`~repro.core.index.IndexShard` and
    :class:`~repro.dht.dolr.DolrNode`)."""
    op = record.op
    if op in ("put", "entry"):
        key = (record.namespace, record.logical)
        objects = tables.setdefault(key, {}).setdefault(frozenset(record.keywords), set())
        if op == "put":
            objects.add(record.object_id)
        else:
            objects.update(record.object_ids)
    elif op == "remove":
        key = (record.namespace, record.logical)
        table = tables.get(key)
        keywords = frozenset(record.keywords)
        if table is None or keywords not in table:
            return
        objects = table[keywords]
        objects.discard(record.object_id)
        if not objects:
            del table[keywords]
            if not table:
                del tables[key]
    elif op == "drop":
        tables.pop((record.namespace, record.logical), None)
    elif op == "ref_put":
        refs.setdefault(record.object_id, set()).add(record.holder)
    elif op == "ref_del":
        holders = refs.get(record.object_id)
        if holders is not None:
            holders.discard(record.holder)
            if not holders:
                del refs[record.object_id]
    else:  # unreachable: decode rejects unknown ops
        raise ValueError(f"unknown store record op {op!r}")


def replay(records: tuple[StoreRecord, ...] | list[StoreRecord]) -> tuple[Tables, Refs]:
    """State after applying ``records`` in order to empty tables/refs."""
    tables: Tables = {}
    refs: Refs = {}
    for record in records:
        apply_record(tables, refs, record)
    return tables, refs


def entry_records(tables: Tables, refs: Refs) -> list[StoreRecord]:
    """The canonical snapshot of a state: one ``entry`` record per table
    entry, one ``ref_put`` per reference, deterministically ordered —
    the same stream churn handoff sends per table."""
    records: list[StoreRecord] = []
    for namespace, logical in sorted(tables):
        table = tables[(namespace, logical)]
        for keywords in sorted(table, key=lambda k: (len(k), tuple(sorted(k)))):
            records.append(
                StoreRecord(
                    op="entry",
                    namespace=namespace,
                    logical=logical,
                    keywords=tuple(sorted(keywords)),
                    object_ids=tuple(sorted(table[keywords])),
                )
            )
    for object_id in sorted(refs):
        for holder in sorted(refs[object_id]):
            records.append(StoreRecord(op="ref_put", object_id=object_id, holder=holder))
    return records
