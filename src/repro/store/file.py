"""``FileStore``: one durable directory per node.

Layout::

    <directory>/
        wal.log               append-only CRC-framed records
        snapshot-<seq>.snap   the state as of the last compaction
        MANIFEST.json         which snapshot is current

Every mutation is appended to ``wal.log`` and flushed to the OS before
the call returns, so the data survives the *process* dying at any
instant (``kill -9`` included).  ``fsync=True`` additionally syncs each
append to the medium — surviving power loss at a heavy write-path cost;
the default leaves per-append durability at the OS boundary and fsyncs
on snapshots, :meth:`flush`, and :meth:`close` (the graceful-shutdown
path).

Compaction rewrites the live state (pulled from the suppliers
:meth:`bind` registered) as ``entry`` / ``ref_put`` records into a new
snapshot — written to a temp file, fsynced, atomically renamed, and
only then pointed at by a rewritten manifest — after which the WAL is
truncated.  A crash between any two of those steps leaves either the
old (snapshot, WAL) pair or the new one, never a mix.

Recovery replays the manifest's snapshot, then the WAL; a torn WAL tail
(partial frame or CRC mismatch) is dropped and the file truncated to
the clean prefix.  ``recover()`` is idempotent and lazy — the first
``record_*`` call triggers it if nobody asked earlier.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.net.codec import codec_by_name
from repro.obs.trace import active_recorder
from repro.store.backend import RecoveredState
from repro.store.wal import (
    Refs,
    StoreRecord,
    Tables,
    apply_record,
    decode_records,
    encode_entry_op,
    encode_record,
    encode_ref_op,
    entry_records,
    replay,
)

__all__ = ["FileStore"]

MANIFEST_VERSION = 1


class FileStore:
    """Durable :class:`~repro.store.backend.StoreBackend` over one
    directory."""

    durable = True

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: bool = False,
        compact_every: int = 4096,
        metrics=None,
        codec: str = "binary",
    ):
        """``compact_every`` WAL appends trigger a snapshot (0 disables
        automatic compaction); ``metrics`` is a
        :class:`~repro.sim.metrics.MetricsRegistry` the store reports
        ``store.*`` counters and series into (the service binds the
        transport's registry here).  ``codec`` selects the record
        encoding for *writes* (``"binary"`` v2 by default, ``"json"``
        the v1 fallback); recovery reads either, per record, so a
        directory written under one codec reopens under the other."""
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.compact_every = compact_every
        self.metrics = metrics
        self.codec = codec_by_name(codec).name
        self._wal = None
        self._recovered: RecoveredState | None = None
        self._seq = 0
        self._appends_since_compact = 0
        self._tables_supplier: Callable[[], Tables] | None = None
        self._refs_supplier: Callable[[], Refs] | None = None
        self._closed = False

    # -- paths --------------------------------------------------------

    @property
    def wal_path(self) -> Path:
        return self.directory / "wal.log"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "MANIFEST.json"

    def snapshot_path(self, seq: int) -> Path:
        return self.directory / f"snapshot-{seq:08d}.snap"

    # -- recovery -----------------------------------------------------

    def recover(self) -> RecoveredState:
        """Replay snapshot + WAL into the state to boot from (idempotent)."""
        if self._recovered is not None:
            return self._recovered
        started = time.perf_counter()
        notes: list[str] = []
        tables: Tables = {}
        refs: Refs = {}
        snapshot_count = 0
        manifest = self._read_manifest(notes)
        self._seq = int(manifest.get("seq", 0))
        snapshot_name = manifest.get("snapshot")
        if snapshot_name:
            snapshot_file = self.directory / str(snapshot_name)
            if snapshot_file.exists():
                decoded = decode_records(snapshot_file.read_bytes())
                if decoded.truncated:
                    notes.append(f"snapshot {snapshot_name}: {decoded.reason}")
                tables, refs = replay(decoded.records)
                snapshot_count = len(decoded.records)
            else:
                notes.append(f"manifest names missing snapshot {snapshot_name}")
        wal_count, truncated = self._replay_wal(tables, refs, notes)
        # Unbuffered: each append is one write(2) straight into the OS
        # page cache — the per-append durability point — with no
        # Python-level buffer to flush.
        self._wal = open(self.wal_path, "ab", buffering=0)
        elapsed = time.perf_counter() - started
        self._recovered = RecoveredState(
            tables=tables,
            refs=refs,
            snapshot_records=snapshot_count,
            wal_records=wal_count,
            truncated=truncated,
            notes=tuple(notes),
        )
        if self.metrics is not None:
            self.metrics.increment("store.recoveries")
            self.metrics.increment("store.recovered_records", self._recovered.records)
            self.metrics.record("store.recovery_seconds", elapsed)
        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                "store",
                op="recover",
                directory=str(self.directory),
                snapshot_records=snapshot_count,
                wal_records=wal_count,
                truncated=truncated,
            )
        return self._recovered

    def _read_manifest(self, notes: list[str]) -> dict:
        if not self.manifest_path.exists():
            return {}
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            notes.append(f"unreadable manifest: {error}")
            return {}
        return manifest if isinstance(manifest, dict) else {}

    def _replay_wal(self, tables: Tables, refs: Refs, notes: list[str]) -> tuple[int, bool]:
        if not self.wal_path.exists():
            return 0, False
        data = self.wal_path.read_bytes()
        decoded = decode_records(data)
        for record in decoded.records:
            apply_record(tables, refs, record)
        if decoded.truncated:
            notes.append(
                f"dropped torn WAL tail at byte {decoded.consumed}: {decoded.reason}"
            )
            with open(self.wal_path, "r+b") as wal:
                wal.truncate(decoded.consumed)
            if self.metrics is not None:
                self.metrics.increment("store.wal_torn_tails")
        return len(decoded.records), decoded.truncated

    # -- live-state suppliers (for compaction) ------------------------

    def bind(
        self,
        *,
        tables: Callable[[], Tables] | None = None,
        refs: Callable[[], Refs] | None = None,
    ) -> None:
        if tables is not None:
            self._tables_supplier = tables
        if refs is not None:
            self._refs_supplier = refs

    # -- the write path -----------------------------------------------

    def _append_frame(
        self, frame: bytes, op: str, namespace: str, logical: int, object_id: str
    ) -> None:
        if self._closed:
            raise RuntimeError(f"store {self.directory} is closed")
        if self._wal is None:
            self.recover()
        self._wal.write(frame)  # unbuffered: lands in the OS page cache
        if self.fsync:
            os.fsync(self._wal.fileno())
        self._appends_since_compact += 1
        if self.metrics is not None:
            self.metrics.increment("store.wal_appends")
            self.metrics.increment("store.wal_bytes", len(frame))
        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                "store", op=op, namespace=namespace, logical=logical, object_id=object_id
            )

    def _append(self, record: StoreRecord) -> None:
        self._append_frame(
            encode_record(record, self.codec), record.op, record.namespace,
            record.logical, record.object_id,
        )

    def record_put(
        self, namespace: str, logical: int, keywords: Iterable[str], object_id: str
    ) -> None:
        frame = encode_entry_op(
            "put", namespace, logical, tuple(sorted(keywords)), object_id, self.codec
        )
        self._append_frame(frame, "put", namespace, logical, object_id)

    def record_remove(
        self, namespace: str, logical: int, keywords: Iterable[str], object_id: str
    ) -> None:
        frame = encode_entry_op(
            "remove", namespace, logical, tuple(sorted(keywords)), object_id, self.codec
        )
        self._append_frame(frame, "remove", namespace, logical, object_id)

    def record_drop(self, namespace: str, logical: int) -> None:
        self._append(StoreRecord(op="drop", namespace=namespace, logical=logical))

    def record_ref_put(self, object_id: str, holder: int) -> None:
        self._append_frame(
            encode_ref_op("ref_put", object_id, holder, self.codec), "ref_put", "", 0, object_id
        )

    def record_ref_del(self, object_id: str, holder: int) -> None:
        self._append_frame(
            encode_ref_op("ref_del", object_id, holder, self.codec), "ref_del", "", 0, object_id
        )

    # -- snapshot + compaction ----------------------------------------

    def maybe_compact(self) -> None:
        """The cheap per-mutation hook: snapshot once enough WAL
        accumulated (and live-state suppliers are bound)."""
        if self.compact_every and self._appends_since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> int:
        """Fold the WAL into a fresh snapshot; returns records written.

        A no-op (returning 0) when no live-state supplier is bound —
        there is nothing authoritative to snapshot from.
        """
        if self._tables_supplier is None and self._refs_supplier is None:
            return 0
        if self._wal is None:
            self.recover()
        started = time.perf_counter()
        tables = self._tables_supplier() if self._tables_supplier is not None else {}
        refs = self._refs_supplier() if self._refs_supplier is not None else {}
        records = entry_records(tables, refs)
        seq = self._seq + 1
        snapshot_file = self.snapshot_path(seq)
        tmp = snapshot_file.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            for record in records:
                handle.write(encode_record(record, self.codec))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, snapshot_file)
        self._write_manifest({"version": MANIFEST_VERSION, "seq": seq,
                              "snapshot": snapshot_file.name})
        # The snapshot is durable and current: restart the WAL.
        self._wal.close()
        self._wal = open(self.wal_path, "wb", buffering=0)
        self._fsync_directory()
        old = self.snapshot_path(self._seq)
        if self._seq and old.exists():
            old.unlink()
        self._seq = seq
        self._appends_since_compact = 0
        size = snapshot_file.stat().st_size
        if self.metrics is not None:
            self.metrics.increment("store.snapshots")
            self.metrics.record("store.snapshot_bytes", size)
            self.metrics.record("store.snapshot_records", len(records))
            self.metrics.record("store.compaction_seconds", time.perf_counter() - started)
        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                "store", op="snapshot", seq=seq, records=len(records), bytes=size
            )
        return len(records)

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # -- lifecycle ----------------------------------------------------

    def flush(self) -> None:
        """Push every appended record to the medium (fsync; appends are
        already in the OS via the unbuffered handle)."""
        if self._wal is not None and not self._wal.closed:
            os.fsync(self._wal.fileno())

    def close(self) -> None:
        """Graceful shutdown: fsync the WAL and release the handle."""
        if self._closed:
            return
        self.flush()
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self._closed = True

    def abort(self) -> None:
        """Crash analog for tests: drop the handle with no final fsync.

        Every append already flushed its bytes to the OS, so this leaves
        exactly what a ``kill -9`` would — possibly including a torn
        tail if the caller staged one.
        """
        if self._wal is not None and not self._wal.closed:
            self._wal.close()  # unbuffered: nothing Python-side to lose
            self._wal = None
        self._closed = True
