"""The backend contract and the in-memory default.

A :class:`StoreBackend` sits behind one node's mutable state: the index
shard reports every table mutation through ``record_*`` calls, the DOLR
node reports reference changes, and at build time both ask
:meth:`StoreBackend.recover` for whatever state survived a previous
life.  :class:`MemoryStore` is the default — it remembers nothing and
costs one no-op call per mutation, which keeps the simulator (and the
paper experiments' JSON) byte-identical.  :class:`~repro.store.file.FileStore`
is the durable implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.store.wal import Refs, Tables

__all__ = ["MemoryStore", "RecoveredState", "StoreBackend"]


@dataclass
class RecoveredState:
    """What a backend found on disk: the state to boot from.

    ``tables`` / ``refs`` are in the exact in-memory shapes
    :class:`~repro.core.index.IndexShard` and
    :class:`~repro.dht.dolr.DolrNode` keep (callers copy before
    mutating).  ``truncated`` is True when a torn WAL tail was dropped;
    ``notes`` carries human-readable recovery details.
    """

    tables: Tables = field(default_factory=dict)
    refs: Refs = field(default_factory=dict)
    snapshot_records: int = 0
    wal_records: int = 0
    truncated: bool = False
    notes: tuple[str, ...] = ()

    @property
    def records(self) -> int:
        return self.snapshot_records + self.wal_records


@runtime_checkable
class StoreBackend(Protocol):
    """Per-node durable state recorder.

    ``recover()`` is idempotent (the shard and the DOLR node share one
    backend and each call it once).  ``bind`` registers zero-argument
    suppliers of the *live* state, which compaction snapshots;
    ``maybe_compact`` is the cheap per-mutation hook that triggers a
    snapshot once enough WAL records accumulated.  ``durable`` says
    whether state outlives the process.
    """

    durable: bool

    def recover(self) -> RecoveredState: ...

    def bind(
        self,
        *,
        tables: Callable[[], Tables] | None = None,
        refs: Callable[[], Refs] | None = None,
    ) -> None: ...

    def record_put(
        self, namespace: str, logical: int, keywords: Iterable[str], object_id: str
    ) -> None: ...

    def record_remove(
        self, namespace: str, logical: int, keywords: Iterable[str], object_id: str
    ) -> None: ...

    def record_drop(self, namespace: str, logical: int) -> None: ...

    def record_ref_put(self, object_id: str, holder: int) -> None: ...

    def record_ref_del(self, object_id: str, holder: int) -> None: ...

    def maybe_compact(self) -> None: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class MemoryStore:
    """The default backend: record nothing, recover nothing.

    Every ``record_*`` bumps one counter and returns — no allocation,
    no I/O, no clock — so a stack built with MemoryStore behaves (and
    accounts messages) exactly like one built with no store at all.
    """

    durable = False

    def __init__(self):
        self.appends = 0
        self.metrics = None

    def recover(self) -> RecoveredState:
        return RecoveredState()

    def bind(self, *, tables=None, refs=None) -> None:
        pass

    def record_put(self, namespace, logical, keywords, object_id) -> None:
        self.appends += 1

    def record_remove(self, namespace, logical, keywords, object_id) -> None:
        self.appends += 1

    def record_drop(self, namespace, logical) -> None:
        self.appends += 1

    def record_ref_put(self, object_id, holder) -> None:
        self.appends += 1

    def record_ref_del(self, object_id, holder) -> None:
        self.appends += 1

    def maybe_compact(self) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass
