"""Durable per-node storage: WAL + snapshot persistence.

Every node's index shard and replica-reference table live in process
memory; this package gives them a disk life.  A
:class:`~repro.store.backend.StoreBackend` records each mutation as one
append-only WAL record (CRC-framed, tagged-encoded like the wire
format), periodically folds the log into a snapshot, and replays
snapshot + WAL on boot so a ``kill -9``'d node restarts with its state
intact.

Two backends: :class:`~repro.store.backend.MemoryStore` (the default —
a no-op recorder that keeps the simulator byte-identical) and
:class:`~repro.store.file.FileStore` (one directory per node).
"""

from repro.store.backend import MemoryStore, RecoveredState, StoreBackend
from repro.store.file import FileStore
from repro.store.wal import (
    StoreRecord,
    WalDecodeResult,
    apply_record,
    decode_records,
    encode_record,
    replay,
)

__all__ = [
    "FileStore",
    "MemoryStore",
    "RecoveredState",
    "StoreBackend",
    "StoreRecord",
    "WalDecodeResult",
    "apply_record",
    "decode_records",
    "encode_record",
    "replay",
]
