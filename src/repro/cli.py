"""Command-line interface: run any experiment from the shell.

    python -m repro list
    python -m repro run fig6 --num-objects 20000 --dimensions 6,10,14
    python -m repro run fig9 --alphas 0,0.1667,1.0 --output fig9.txt
    python -m repro node addresses --dimension 6 --nodes 4 --seed 7
    python -m repro node serve --dimension 6 --nodes 4 --seed 7 \\
        --address 1182657605 --port 9001 --peer 1399953982=127.0.0.1:9002
    python -m repro stats --nodes 16 --lint
    python -m repro trace --keywords dht,search --threshold 2

``run`` introspects the chosen runner's signature and coerces each
``--key value`` option to the parameter's annotated type: integers,
floats, strings, booleans, and comma-separated tuples of numbers.
``node`` hosts one DHT node's endpoint over real TCP (see
:mod:`repro.net.node`); ``stats`` and ``trace`` expose the
observability layer (see :mod:`repro.obs.commands`).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from typing import Any

__all__ = ["EXPERIMENTS", "build_parser", "coerce_value", "main"]

EXPERIMENTS = (
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "eq1",
    "ablation",
    "fault",
    "hotspot",
    "decomposed",
    "dhtcmp",
    "bandwidth",
    "churn",
    "prefix",
)


def coerce_value(raw: str, parameter: inspect.Parameter) -> Any:
    """Convert a CLI string to the type suggested by the parameter.

    Defaults drive the inference: tuples become tuples of the element
    type, ints/floats/bools parse directly, None-defaults accept ints.
    Comma-separated values always produce a tuple.
    """
    default = parameter.default
    if "," in raw or isinstance(default, tuple):
        parts = [part for part in raw.split(",") if part != ""]
        return tuple(_scalar(part) for part in parts)
    if isinstance(default, bool):
        lowered = raw.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(f"expected a boolean for --{parameter.name}, got {raw!r}")
    if isinstance(default, int):
        return int(raw)
    if isinstance(default, float):
        return float(raw)
    if isinstance(default, str):
        return raw
    return _scalar(raw)


def _scalar(raw: str) -> Any:
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    return raw


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Keyword Search in DHT-based P2P Networks' (ICDCS 2005)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    runner = commands.add_parser("run", help="run one experiment")
    runner.add_argument("experiment", choices=EXPERIMENTS)
    runner.add_argument(
        "--output", help="also write the rendered table to this file", default=None
    )
    runner.add_argument(
        "--chart",
        default=None,
        metavar="GROUP,X,Y",
        help="also draw an ASCII chart: series column (or '-'), x column, y column",
    )
    runner.add_argument("--csv", default=None, help="write the rows as CSV to this file")
    runner.add_argument("--json", default=None, help="write the full result as JSON to this file")
    from repro.net.node import add_node_commands
    from repro.obs.commands import add_obs_commands

    add_node_commands(commands)
    add_obs_commands(commands)
    return parser


def _parse_options(tokens: list[str], signature: inspect.Signature) -> dict[str, Any]:
    options: dict[str, Any] = {}
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if not token.startswith("--"):
            raise SystemExit(f"expected an option (--name), got {token!r}")
        name = token[2:].replace("-", "_")
        if name not in signature.parameters:
            valid = ", ".join(sorted(signature.parameters))
            raise SystemExit(f"unknown option --{token[2:]}; valid: {valid}")
        if index + 1 >= len(tokens):
            raise SystemExit(f"option {token} is missing a value")
        try:
            options[name] = coerce_value(tokens[index + 1], signature.parameters[name])
        except ValueError as error:
            raise SystemExit(str(error)) from error
        index += 2
    return options


def main(argv: list[str] | None = None) -> int:
    arguments, extra = build_parser().parse_known_args(argv)
    if arguments.command == "node":
        if extra:
            raise SystemExit(f"unrecognized arguments: {' '.join(extra)}")
        from repro.net.node import run_node_command

        return run_node_command(arguments)
    if arguments.command in ("stats", "trace"):
        if extra:
            raise SystemExit(f"unrecognized arguments: {' '.join(extra)}")
        from repro.obs.commands import run_obs_command

        return run_obs_command(arguments)
    if arguments.command == "list":
        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<12} {summary}")
        return 0

    module = importlib.import_module(f"repro.experiments.{arguments.experiment}")
    signature = inspect.signature(module.run)
    options = _parse_options(extra, signature)
    result = module.run(**options)
    rendered = result.render()
    if arguments.chart:
        from repro.analysis.ascii import chart_experiment

        parts = arguments.chart.split(",")
        if len(parts) != 3:
            raise SystemExit("--chart expects GROUP,X,Y (use '-' for no grouping)")
        group_by = None if parts[0] == "-" else parts[0]
        rendered += "\n\n" + chart_experiment(result, group_by=group_by, x=parts[1], y=parts[2])
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if arguments.csv:
        with open(arguments.csv, "w", encoding="utf-8") as handle:
            handle.write(result.to_csv())
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
