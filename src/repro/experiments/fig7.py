"""Figure 7: object distribution vs node distribution over |One(u)|.

For each r, two lines: the fraction of hypercube nodes whose identifier
has x one-bits (binomial, centred at r/2) and the fraction of *objects*
indexed at such nodes.  The paper's reading: load balances when the two
curves align, which happens around r = 10 for the 7.3-keyword corpus —
and Equation (1) predicts the object curve without any experiment, so a
third (analytic) line is included for validation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.dimension import (
    distribution_distance,
    node_weight_distribution,
    object_weight_distribution,
)
from repro.experiments.harness import ExperimentResult, default_corpus, hypercube_loads
from repro.util import bitops

__all__ = ["run"]

PAPER_DIMENSIONS = (6, 8, 10, 11, 12, 13, 14, 16)


def run(
    *,
    num_objects: int = 131_180,
    seed: int = 0,
    dimensions: Sequence[int] = PAPER_DIMENSIONS,
) -> ExperimentResult:
    """Node / object / predicted-object weight distributions per r."""
    corpus = default_corpus(num_objects, seed)
    keyword_sets = corpus.keyword_sets()
    size_pmf = {size: count / len(corpus) for size, count in corpus.size_histogram().items()}

    rows: list[dict] = []
    notes: list[str] = []
    for r in dimensions:
        node_pmf = node_weight_distribution(r)
        predicted = object_weight_distribution(r, size_pmf)
        loads = hypercube_loads(keyword_sets, r)
        by_weight = [0] * (r + 1)
        for node, load in loads.items():
            by_weight[bitops.popcount(node)] += load
        total = sum(by_weight)
        empirical = [count / total for count in by_weight]
        for weight in range(r + 1):
            rows.append(
                {
                    "dimension": r,
                    "weight": weight,
                    "node_fraction": node_pmf[weight],
                    "object_fraction": empirical[weight],
                    "object_fraction_eq1": predicted[weight],
                }
            )
        notes.append(
            f"r={r}: TV(object, node) = "
            f"{distribution_distance(empirical, node_pmf):.4f}, "
            f"TV(empirical, eq1) = "
            f"{distribution_distance(empirical, predicted):.4f}"
        )
    return ExperimentResult(
        experiment="fig7",
        description="Object vs node distribution over |One(u)| (with Eq. 1 prediction)",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimensions": tuple(dimensions),
        },
        rows=rows,
        notes=notes,
    )
