"""Fault tolerance: hypercube index vs distributed inverted index.

Section 3.4 argues that because a popular keyword's objects are spread
over many hypercube nodes, "no single node failure can block all
queries involving the keyword" — whereas in DII each keyword lives on
exactly one node.  This experiment fails a growing fraction of physical
nodes and measures, per scheme, the recall queries still achieve:

* hypercube — the search (with ``skip_unreachable``) loses only the
  entries hosted on dead nodes: recall degrades gracefully, roughly
  linearly in the failure fraction;
* DII — a query loses *everything* whenever any of its keywords' single
  home nodes is dead: the blocked fraction grows like 1-(1-f)^m;
* hypercube+replica — Section 3.4's secondary-hypercube replication:
  a dead node's entries are served from the replica, so recall stays
  near 1 until both hosts of an entry die;
* hypercube-noretry / hypercube-resilient — the same fail-stop failures
  seen through the messaging layer: a strict searcher raises on the
  first unreachable node (losing whole queries), while a searcher on a
  :class:`~repro.sim.resilience.ResilientChannel` (default
  :class:`RetryPolicy` + circuit breaker) degrades past dead subcubes
  via surrogate routing and keeps every live node's entries.

A second sweep replaces fail-stop failures with *transient* message
loss (:meth:`SimulatedNetwork.set_loss_rate`) and crosses the loss rate
with the retry budget: with one attempt a lost message kills the query;
with retries the search re-sends after a backoff and recall recovers,
at a measurable cost in messages per query.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.dii import DistributedInvertedIndex
from repro.core.replication import ReplicatedHypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import RoutingError
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.sim.network import NodeUnreachableError, SimulatedNetwork
from repro.sim.resilience import BreakerPolicy, RetryPolicy
from repro.util.rng import make_rng
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 8_192,
    seed: int = 0,
    dimension: int = 10,
    num_dht_nodes: int = 128,
    failure_fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    num_queries: int = 60,
    replicas: int = 2,
    loss_rates: Sequence[float] = (0.1, 0.2),
    retry_attempts: Sequence[int] = (1, 3),
) -> ExperimentResult:
    """Mean recall and blocked-query fraction vs failure fraction.

    ``loss_rates`` × ``retry_attempts`` adds the transient-loss sweep
    (rows with ``failure_mode == "transient"``); pass empty sequences to
    skip it.
    """
    corpus = default_corpus(num_objects, seed)
    index = build_loaded_index(corpus, dimension, num_dht_nodes=num_dht_nodes, seed=seed)
    # This experiment fails nodes, violating the static-membership
    # assumption the placement cache rests on — every route must pay
    # (and risk) real lookups, or failure modes would be masked.
    index.mapping.disable_placement_cache()
    dii = DistributedInvertedIndex(index.dolr)
    dii.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    searcher = SuperSetSearch(index, skip_unreachable=True)
    # These two resolve the channel dynamically from the DOLR layer, so
    # configure_resilience() below switches their failure behaviour.
    strict_searcher = SuperSetSearch(index)
    resilient_searcher = SuperSetSearch(index)
    from repro.hypercube.hypercube import Hypercube

    replicated = ReplicatedHypercubeIndex(
        Hypercube(dimension), index.dolr, replicas=replicas
    )
    replicated.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    replicated_searcher = replicated.searcher()

    generator = QueryLogGenerator(corpus, seed=seed + 1)
    queries = [q.keywords for q in generator.generate(num_queries)]
    postings = corpus.inverted_index()
    truth = {
        query: frozenset.intersection(*(postings.get(k, frozenset()) for k in query))
        for query in set(queries)
    }
    queries = [q for q in queries if truth[q]]

    network = index.dolr.network
    rng = make_rng(seed + 2)
    addresses = index.dolr.addresses()
    rows: list[dict] = []
    for fraction in failure_fractions:
        failed = rng.sample(addresses, int(round(fraction * len(addresses))))
        # Never fail every node, and keep at least one live origin.
        failed = failed[: max(0, len(addresses) - 2)]
        for address in failed:
            network.fail(address)
        origin = next(a for a in addresses if network.is_alive(a))
        try:
            rows.append(
                _measure(
                    "hypercube", fraction, queries, truth, origin,
                    searcher=searcher, network=network,
                )
            )
            rows.append(
                _measure(
                    f"hypercube+{replicas}x",
                    fraction,
                    queries,
                    truth,
                    origin,
                    searcher=replicated_searcher,
                    network=network,
                )
            )
            rows.append(
                _measure(
                    "dii", fraction, queries, truth, origin, dii=dii, network=network
                )
            )
            # The same failures through the messaging layer: strict
            # (raise on first unreachable node) vs resilient (retry,
            # then degrade via surrogate routing).
            rows.append(
                _measure(
                    "hypercube-noretry", fraction, queries, truth, origin,
                    searcher=strict_searcher, network=network,
                )
            )
            index.dolr.configure_resilience(
                RetryPolicy.default(),
                breaker=BreakerPolicy(failure_threshold=3, reset_timeout=128.0),
                rng=make_rng(seed + 5),
            )
            rows.append(
                _measure(
                    "hypercube-resilient", fraction, queries, truth, origin,
                    searcher=resilient_searcher, network=network,
                )
            )
        finally:
            index.dolr.configure_resilience(None)
            for address in failed:
                network.recover(address)

    # Transient message loss x retry budget: every node is alive, but a
    # fraction of requests is dropped in flight.  Retries genuinely
    # recover these failures (the destination is healthy on re-send).
    origin = addresses[0]
    for loss in loss_rates:
        for attempts in retry_attempts:
            index.dolr.configure_resilience(
                RetryPolicy(max_attempts=attempts, base_delay=2.0, max_delay=16.0),
                rng=make_rng(seed + 7),
            )
            network.set_loss_rate(loss, rng=make_rng(seed + 11))
            try:
                row = _measure(
                    f"loss-retry{attempts}", loss, queries, truth, origin,
                    searcher=resilient_searcher, network=network,
                )
            finally:
                network.set_loss_rate(0.0)
                index.dolr.configure_resilience(None)
            row["failure_mode"] = "transient"
            row["max_attempts"] = attempts
            rows.append(row)

    metrics = network.metrics
    resilience_counters = {
        name: value
        for name, value in sorted(metrics.counters().items())
        if name.startswith(("rpc.", "breaker.", "network.dropped", "search."))
    }
    return ExperimentResult(
        experiment="fault",
        description="Query recall under node failures: hypercube vs DII",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "num_queries": len(queries),
            "loss_rates": list(loss_rates),
            "retry_attempts": list(retry_attempts),
        },
        rows=rows,
        notes=[f"{name}={value}" for name, value in resilience_counters.items()],
    )


def _measure(
    scheme: str,
    fraction: float,
    queries,
    truth,
    origin: int,
    *,
    searcher: SuperSetSearch | None = None,
    dii: DistributedInvertedIndex | None = None,
    network: SimulatedNetwork | None = None,
) -> dict:
    recalls = []
    blocked = 0
    raised = 0
    degraded = 0
    messages = 0
    for query in queries:
        expected = truth[query]
        found: set = set()
        with network.trace() as trace:
            try:
                if searcher is not None:
                    result = searcher.run(query, origin=origin)
                    found = set(result.object_ids)
                    degraded += len(result.degraded_visits)
                else:
                    assert dii is not None
                    found = set(dii.query(query, origin=origin).object_ids)
            except (NodeUnreachableError, RoutingError):
                raised += 1
        messages += trace.message_count
        recall = len(found & expected) / len(expected)
        recalls.append(recall)
        blocked += recall == 0.0
    return {
        "scheme": scheme,
        "failure_fraction": fraction,
        "mean_recall": sum(recalls) / len(recalls),
        "blocked_fraction": blocked / len(queries),
        "raised_fraction": raised / len(queries),
        "degraded_visits": degraded / len(queries),
        "mean_messages": messages / len(queries),
    }
