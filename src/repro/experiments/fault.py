"""Fault tolerance: hypercube index vs distributed inverted index.

Section 3.4 argues that because a popular keyword's objects are spread
over many hypercube nodes, "no single node failure can block all
queries involving the keyword" — whereas in DII each keyword lives on
exactly one node.  This experiment fails a growing fraction of physical
nodes and measures, per scheme, the recall queries still achieve:

* hypercube — the search (with ``skip_unreachable``) loses only the
  entries hosted on dead nodes: recall degrades gracefully, roughly
  linearly in the failure fraction;
* DII — a query loses *everything* whenever any of its keywords' single
  home nodes is dead: the blocked fraction grows like 1-(1-f)^m;
* hypercube+replica — Section 3.4's secondary-hypercube replication:
  a dead node's entries are served from the replica, so recall stays
  near 1 until both hosts of an entry die.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.dii import DistributedInvertedIndex
from repro.core.replication import ReplicatedHypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import RoutingError
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.sim.network import NodeUnreachableError
from repro.util.rng import make_rng
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 8_192,
    seed: int = 0,
    dimension: int = 10,
    num_dht_nodes: int = 128,
    failure_fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    num_queries: int = 60,
    replicas: int = 2,
) -> ExperimentResult:
    """Mean recall and blocked-query fraction vs failure fraction."""
    corpus = default_corpus(num_objects, seed)
    index = build_loaded_index(corpus, dimension, num_dht_nodes=num_dht_nodes, seed=seed)
    dii = DistributedInvertedIndex(index.dolr)
    dii.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    searcher = SuperSetSearch(index, skip_unreachable=True)
    from repro.hypercube.hypercube import Hypercube

    replicated = ReplicatedHypercubeIndex(
        Hypercube(dimension), index.dolr, replicas=replicas
    )
    replicated.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    replicated_searcher = replicated.searcher()

    generator = QueryLogGenerator(corpus, seed=seed + 1)
    queries = [q.keywords for q in generator.generate(num_queries)]
    postings = corpus.inverted_index()
    truth = {
        query: frozenset.intersection(*(postings.get(k, frozenset()) for k in query))
        for query in set(queries)
    }
    queries = [q for q in queries if truth[q]]

    network = index.dolr.network
    rng = make_rng(seed + 2)
    addresses = index.dolr.addresses()
    rows: list[dict] = []
    for fraction in failure_fractions:
        failed = rng.sample(addresses, int(round(fraction * len(addresses))))
        # Never fail every node, and keep at least one live origin.
        failed = failed[: max(0, len(addresses) - 2)]
        for address in failed:
            network.fail(address)
        origin = next(a for a in addresses if network.is_alive(a))
        try:
            rows.append(
                _measure("hypercube", fraction, queries, truth, origin, searcher=searcher)
            )
            rows.append(
                _measure(
                    f"hypercube+{replicas}x",
                    fraction,
                    queries,
                    truth,
                    origin,
                    searcher=replicated_searcher,
                )
            )
            rows.append(_measure("dii", fraction, queries, truth, origin, dii=dii))
        finally:
            for address in failed:
                network.recover(address)
    return ExperimentResult(
        experiment="fault",
        description="Query recall under node failures: hypercube vs DII",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "num_queries": len(queries),
        },
        rows=rows,
    )


def _measure(
    scheme: str,
    fraction: float,
    queries,
    truth,
    origin: int,
    *,
    searcher: SuperSetSearch | None = None,
    dii: DistributedInvertedIndex | None = None,
) -> dict:
    recalls = []
    blocked = 0
    for query in queries:
        expected = truth[query]
        if searcher is not None:
            try:
                result = searcher.run(query, origin=origin)
                found = set(result.object_ids)
            except (NodeUnreachableError, RoutingError):
                found = set()
        else:
            assert dii is not None
            try:
                found = set(dii.query(query, origin=origin).object_ids)
            except (NodeUnreachableError, RoutingError):
                found = set()
        recall = len(found & expected) / len(expected)
        recalls.append(recall)
        blocked += recall == 0.0
    return {
        "scheme": scheme,
        "failure_fraction": fraction,
        "mean_recall": sum(recalls) / len(recalls),
        "blocked_fraction": blocked / len(queries),
    }
