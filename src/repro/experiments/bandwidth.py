"""Bandwidth comparison: result references shipped per operation.

Section 1 criticizes distributed inverted indexes for shipping whole
posting lists: a multi-keyword DII query moves every posting of every
query keyword to the requester before intersecting, while the hypercube
scheme ships each *matching* object reference once (plus per-node
control messages).  Insert cost differs the same way: DII posts an
object k times, KSS ``C(k,1)+...+C(k,w)`` times, the hypercube once.

Measured units: object references crossing the network per operation —
the dominant payload in all three schemes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.dii import DistributedInvertedIndex
from repro.baselines.kss import KeywordSetIndex
from repro.core.search import SuperSetSearch
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 8_192,
    seed: int = 0,
    dimension: int = 10,
    num_dht_nodes: int = 64,
    query_sizes: Sequence[int] = (1, 2, 3),
    queries_per_size: int = 6,
    kss_window: int = 2,
) -> ExperimentResult:
    """References shipped per query and per insert, per scheme."""
    corpus = default_corpus(num_objects, seed)
    index = build_loaded_index(corpus, dimension, num_dht_nodes=num_dht_nodes, seed=seed)
    dii = DistributedInvertedIndex(index.dolr)
    dii.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    kss = KeywordSetIndex(index.dolr, window=kss_window)
    searcher = SuperSetSearch(index)
    generator = QueryLogGenerator(corpus, seed=seed + 1)
    origin = index.dolr.any_address()

    rows: list[dict] = []
    for m in query_sizes:
        queries = generator.popular_sets(m, queries_per_size)
        if not queries:
            continue
        hypercube_shipped = []
        dii_shipped = []
        matches = []
        for query in queries:
            result = searcher.run(query, origin=origin)
            hypercube_shipped.append(len(result.objects))
            matches.append(len(result.objects))
            dii_result = dii.query(query, origin=origin)
            dii_shipped.append(dii_result.postings_shipped)
        rows.append(
            {
                "operation": f"query m={m}",
                "mean_matches": sum(matches) / len(matches),
                "hypercube_refs_shipped": sum(hypercube_shipped) / len(queries),
                "dii_refs_shipped": sum(dii_shipped) / len(queries),
                "dii_overhead_factor": (
                    sum(dii_shipped) / max(1, sum(hypercube_shipped))
                ),
            }
        )

    # Insert cost: index writes per object, by keyword count — measured
    # live against each scheme's insert path.
    holder = index.dolr.any_address()
    for k in (3, 7, 12):
        sample = next(r for r in corpus.records if r.keyword_count >= k)
        keywords = frozenset(sorted(sample.keywords)[:k])
        object_id = f"bandwidth-probe-{k}"
        hypercube_writes = 1 if index.insert(object_id, keywords, holder) else 0
        index.delete(object_id, keywords, holder)
        dii_writes = dii.insert(object_id, keywords, holder)
        dii.delete(object_id, keywords, holder)
        kss_writes = kss.insert(object_id, keywords, holder)
        kss.delete(object_id, keywords, holder)
        rows.append(
            {
                "operation": f"insert k={k}",
                "hypercube_refs_shipped": hypercube_writes,
                "dii_refs_shipped": dii_writes,
                "kss_refs_shipped": kss_writes,
            }
        )
    return ExperimentResult(
        experiment="bandwidth",
        description="Object references shipped per query/insert, per scheme",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "query_sizes": tuple(query_sizes),
            "kss_window": kss_window,
        },
        rows=rows,
    )
