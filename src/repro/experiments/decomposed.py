"""Decomposed-index trade-offs (Section 3.4, final remark).

The paper notes the scheme is decomposable: split the vocabulary into
disjoint subsets and run one smaller hypercube per subset, shrinking
the subhypercube a query must search at the price of indexing an object
once per touched group.  This experiment compares a flat r-cube against
decompositions of the same total dimensionality and reports the
trade-off triple: mean nodes visited per query, storage multiplier, and
verification precision (candidates that survive the full-query check).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.decomposed import DecomposedIndex
from repro.core.search import SuperSetSearch
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 4_096,
    seed: int = 0,
    flat_dimension: int = 12,
    decompositions: Sequence[tuple[int, int]] = ((2, 6), (3, 4)),
    query_sizes: Sequence[int] = (1, 2, 3),
    queries_per_size: int = 5,
) -> ExperimentResult:
    """Flat cube vs (groups × dimension) decompositions."""
    corpus = default_corpus(num_objects, seed)
    generator = QueryLogGenerator(corpus, seed=seed + 1)
    queries = [
        query
        for m in query_sizes
        for query in generator.popular_sets(m, queries_per_size)
    ]

    rows: list[dict] = []

    flat_index = build_loaded_index(corpus, flat_dimension, seed=seed)
    flat_searcher = SuperSetSearch(flat_index)
    flat_visits = []
    for query in queries:
        flat_visits.append(len(flat_searcher.run(query).visits))
    rows.append(
        {
            "scheme": f"flat-{flat_dimension}",
            "mean_visits": sum(flat_visits) / len(flat_visits),
            "storage_multiplier": 1.0,
            "mean_precision": 1.0,
        }
    )

    for groups, dimension in decompositions:
        # Each decomposition gets its own DHT so replica-reference state
        # from previous schemes cannot suppress its index inserts.
        from repro.dht.chord import ChordNetwork

        dolr = ChordNetwork.build(bits=32, num_nodes=64, seed=seed)
        decomposed = DecomposedIndex(
            dolr, groups=groups, dimension_per_group=dimension,
            salt=f"dec-{groups}x{dimension}",
        )
        holder = dolr.any_address()
        for record in corpus.records:
            decomposed.insert(record.object_id, record.keywords, holder)
        visits = []
        precisions = []
        for query in queries:
            result = decomposed.superset_search(query)
            visits.append(len(result.inner.visits))
            precisions.append(result.precision)
        rows.append(
            {
                "scheme": f"decomposed-{groups}x{dimension}",
                "mean_visits": sum(visits) / len(visits),
                "storage_multiplier": decomposed.storage_multiplier(),
                "mean_precision": sum(precisions) / len(precisions),
            }
        )
    return ExperimentResult(
        experiment="decomposed",
        description="Flat hypercube vs decomposed sub-hypercubes",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "flat_dimension": flat_dimension,
            "decompositions": tuple(decompositions),
        },
        rows=rows,
    )
