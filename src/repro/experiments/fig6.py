"""Figure 6: ranked load distribution of the hypercube index.

For each dimension r, objects are placed at their F_h node, node loads
are ranked heavy-to-light, and the cumulative object share is sampled
at fixed node fractions.  Three references are drawn exactly as in the
paper: the perfect diagonal, direct object hashing ("DHT-r"), and the
distributed inverted index ("DII-r").

Expected shape: hypercube curves improve from r=6 to r≈10 (where they
hug the DHT reference), degrade again toward r=16; DII curves sit far
above everything (a few nodes hold most references).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.load import gini_coefficient, ranked_load_curve
from repro.baselines.dii import DiiPlacement
from repro.baselines.direct import DirectHashPlacement
from repro.experiments.harness import ExperimentResult, default_corpus, hypercube_loads

__all__ = ["run"]

DEFAULT_NODE_FRACTIONS = tuple(round(0.05 * i, 2) for i in range(1, 21))


def run(
    *,
    num_objects: int = 131_180,
    seed: int = 0,
    dimensions: Sequence[int] = (6, 8, 10, 12, 14, 16),
    dht_dimensions: Sequence[int] | None = None,
    dii_dimensions: Sequence[int] = (10, 12, 14),
    node_fractions: Sequence[float] = DEFAULT_NODE_FRACTIONS,
) -> ExperimentResult:
    """Ranked load curves for hypercube-r, DHT-r, DII-r and Perfect."""
    corpus = default_corpus(num_objects, seed)
    keyword_sets = corpus.keyword_sets()
    object_ids = corpus.object_ids()
    if dht_dimensions is None:
        dht_dimensions = dimensions

    rows: list[dict] = []
    ginis: list[str] = []

    def add_curve(scheme: str, r: int | None, loads) -> None:
        label = scheme if r is None else f"{scheme}-{r}"
        for fraction, share in ranked_load_curve(loads, node_fractions):
            rows.append(
                {
                    "scheme": label,
                    "dimension": r,
                    "node_fraction": fraction,
                    "object_fraction": share,
                }
            )
        ginis.append(f"gini[{label}] = {gini_coefficient(loads):.4f}")

    for r in dimensions:
        add_curve("hypercube", r, hypercube_loads(keyword_sets, r))
    for r in dht_dimensions:
        add_curve("DHT", r, DirectHashPlacement(r).load_by_node(object_ids))
    for r in dii_dimensions:
        add_curve("DII", r, DiiPlacement(r).load_by_node(keyword_sets))
    for fraction in node_fractions:
        rows.append(
            {
                "scheme": "Perfect",
                "dimension": None,
                "node_fraction": fraction,
                "object_fraction": fraction,
            }
        )

    return ExperimentResult(
        experiment="fig6",
        description="Ranked load distribution (cumulative object share vs node rank)",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimensions": tuple(dimensions),
            "dii_dimensions": tuple(dii_dimensions),
        },
        rows=rows,
        notes=ginis,
    )
