"""Figure 8: superset-search cost without caches.

For r in {8, 10, 12} and query sizes m = 1..5, popular keyword sets are
drawn from the query pool and searched exhaustively; the trace gives
the fraction of hypercube nodes contacted at each recall rate.

Expected shape (the paper's): at 100% recall roughly ``2**-m`` of the
nodes are contacted for r = 10 and 12 (higher for r = 8 and m > 1
because the cube is too small), and cost grows about linearly with the
recall rate because the index load is evenly spread.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.recall import average_recall_curve, recall_curve
from repro.core.search import SuperSetSearch
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]

DEFAULT_RECALL_POINTS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    *,
    num_objects: int = 32_768,
    seed: int = 0,
    dimensions: Sequence[int] = (8, 10, 12),
    query_sizes: Sequence[int] = (1, 2, 3, 4, 5),
    queries_per_size: int = 8,
    recall_points: Sequence[float] = DEFAULT_RECALL_POINTS,
    num_dht_nodes: int = 64,
) -> ExperimentResult:
    """Percentage of nodes contacted vs recall rate, per (r, m)."""
    corpus = default_corpus(num_objects, seed)
    generator = QueryLogGenerator(corpus, seed=seed + 1)
    rows: list[dict] = []
    notes: list[str] = []
    for r in dimensions:
        index = build_loaded_index(corpus, r, seed=seed)
        searcher = SuperSetSearch(index)
        total_nodes = index.cube.num_nodes
        for m in query_sizes:
            queries = generator.popular_sets(m, queries_per_size)
            if not queries:
                notes.append(f"r={r}, m={m}: no queries of this size in the pool")
                continue
            curves = []
            one_counts = []
            for query in queries:
                result = searcher.run(query)
                curves.append(
                    recall_curve(result, len(result.objects), total_nodes, recall_points)
                )
                one_counts.append(index.cube.weight(result.root_logical))
            averaged = average_recall_curve(curves)
            for recall, fraction in averaged:
                rows.append(
                    {
                        "dimension": r,
                        "query_size": m,
                        "recall": recall,
                        "node_fraction": fraction,
                        "reference_2^-m": 2.0**-m if recall == 1.0 else None,
                    }
                )
            notes.append(
                f"r={r}, m={m}: mean |One(F_h(K))| = "
                f"{sum(one_counts) / len(one_counts):.2f} over {len(queries)} queries"
            )
    return ExperimentResult(
        experiment="fig8",
        description="Cacheless superset-search cost (fraction of nodes vs recall)",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimensions": tuple(dimensions),
            "query_sizes": tuple(query_sizes),
            "queries_per_size": queries_per_size,
            "num_dht_nodes": num_dht_nodes,
        },
        rows=rows,
        notes=notes,
    )
