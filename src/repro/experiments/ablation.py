"""Section 3.5 complexity claims and design-choice ablations.

Verified quantitatively:

* pin search / insert / delete each take a single routed DHT lookup
  plus one request at the responsible node (vs k lookups for DII);
* a superset search at 100% recall visits exactly the subhypercube
  ``2**(r - |One(F_h(K))|)`` and costs at most two messages per node;
* the three traversal orders return identical object *sets* at equal
  message cost, but order results differently (general-first vs
  specific-first) and trade latency: the parallel walk finishes in
  ``r - |One| + 1`` rounds where the sequential walk needs one round
  per node.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.search import SuperSetSearch, TraversalOrder
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 4_096,
    seed: int = 0,
    dimension: int = 8,
    query_sizes: Sequence[int] = (1, 2, 3),
    queries_per_size: int = 4,
) -> ExperimentResult:
    """Operation costs and traversal-order comparison."""
    corpus = default_corpus(num_objects, seed)
    index = build_loaded_index(corpus, dimension, seed=seed)
    generator = QueryLogGenerator(corpus, seed=seed + 1)
    network = index.dolr.network
    rows: list[dict] = []
    notes: list[str] = []

    # -- single-lookup operations (insert / delete / pin) ---------------
    probe_record = corpus.records[0]
    holder = index.dolr.any_address()
    with network.trace() as trace:
        index.insert("ablation-probe", probe_record.keywords, holder)
    rows.append(_operation_row("insert", trace))
    with network.trace() as trace:
        index.pin_search(probe_record.keywords)
    rows.append(_operation_row("pin_search", trace))
    with network.trace() as trace:
        index.delete("ablation-probe", probe_record.keywords, holder)
    rows.append(_operation_row("delete", trace))

    # -- superset-search bounds and traversal orders ----------------------
    searcher = SuperSetSearch(index)
    for m in query_sizes:
        for query in generator.popular_sets(m, queries_per_size):
            reference_ids: set[str] | None = None
            one = index.cube.weight(index.mapper.node_for(query))
            subcube = 1 << (dimension - one)
            for order in TraversalOrder:
                result = searcher.run(query, order=order)
                ids = set(result.object_ids)
                if reference_ids is None:
                    reference_ids = ids
                rows.append(
                    {
                        "operation": f"superset[{order.value}]",
                        "query_size": m,
                        "one_count": one,
                        "subcube_size": subcube,
                        "visits": len(result.visits),
                        "messages": result.messages,
                        # 2 messages per visited node (T_QUERY + T_CONT)
                        # plus at most one direct-result message each;
                        # DHT routing to the root adds O(log N) more.
                        "message_bound_3x_subcube": 3 * subcube,
                        "rounds": result.rounds,
                        "round_bound": dimension - one + 1,
                        "objects": len(ids),
                        "same_object_set": ids == reference_ids,
                    }
                )
            first_run = searcher.run(query, order=TraversalOrder.TOP_DOWN)
            last = searcher.run(query, order=TraversalOrder.BOTTOM_UP).objects
            first = first_run.objects
            if first and last:
                notes.append(
                    f"query size {m}: top-down first result has "
                    f"{first[0].specificity(frozenset(query))} extra keywords, "
                    f"bottom-up first has {last[0].specificity(frozenset(query))}"
                )
            # Section 3.5's time claim under heterogeneous links: the
            # level-parallel walk's critical path vs the sequential sum.
            from repro.analysis.latency import critical_path_latency, sequential_latency
            from repro.sim.latency import LogNormalLatency

            links = LogNormalLatency(median_ms=50.0, sigma=0.5, seed=7)
            seq = sequential_latency(first_run, links)
            par = critical_path_latency(first_run, links)
            if par > 0:
                notes.append(
                    f"query size {m}: estimated latency {seq:.0f}ms sequential vs "
                    f"{par:.0f}ms level-parallel ({seq / par:.1f}x speedup)"
                )
    return ExperimentResult(
        experiment="ablation",
        description="Section 3.5 complexity claims and traversal-order ablation",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "query_sizes": tuple(query_sizes),
        },
        rows=rows,
        notes=notes,
    )


def _operation_row(operation: str, trace) -> dict:
    return {
        "operation": operation,
        "messages": trace.message_count,
        "index_requests": trace.count_kind("hindex.put")
        + trace.count_kind("hindex.remove")
        + trace.count_kind("hindex.pin"),
    }
