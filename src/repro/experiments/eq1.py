"""Equations (1) and (2): analytic model vs Monte Carlo.

Section 3.5 derives the distribution of ``|One(F_h(K))|`` as a
balls-in-bins occupancy problem.  This runner tabulates the analytic
pmf and expectation over an (r, m) grid and validates them against a
Monte-Carlo simulation of the hash — the "calculated without
experiment" tool the paper uses to pick r.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.balls import (
    expected_one_count,
    monte_carlo_one_count,
    one_count_distribution,
)
from repro.experiments.harness import ExperimentResult

__all__ = ["run"]


def run(
    *,
    dimensions: Sequence[int] = (8, 10, 12),
    set_sizes: Sequence[int] = (1, 2, 3, 5, 7, 10, 15),
    trials: int = 20_000,
    seed: int = 0,
) -> ExperimentResult:
    """E[|One|] and pmf agreement per (r, m)."""
    rows: list[dict] = []
    for r in dimensions:
        for m in set_sizes:
            analytic = one_count_distribution(r, m)
            empirical = monte_carlo_one_count(r, m, trials=trials, seed=seed)
            max_diff = max(abs(a - b) for a, b in zip(analytic, empirical))
            mc_mean = sum(j * p for j, p in enumerate(empirical))
            rows.append(
                {
                    "dimension": r,
                    "set_size": m,
                    "expected_one_eq2": expected_one_count(r, m),
                    "expected_one_mc": mc_mean,
                    "pmf_max_abs_diff": max_diff,
                }
            )
    return ExperimentResult(
        experiment="eq1",
        description="Equations (1)/(2): |One(F_h(K))| model vs Monte Carlo",
        parameters={
            "dimensions": tuple(dimensions),
            "set_sizes": tuple(set_sizes),
            "trials": trials,
            "seed": seed,
        },
        rows=rows,
    )
