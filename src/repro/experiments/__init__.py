"""Experiment runners — one module per table/figure of the paper.

Each module exposes ``run(...)`` returning an
:class:`~repro.experiments.harness.ExperimentResult` whose rows are the
numbers the corresponding paper artifact plots, printable with
``result.table()``.  Default parameters are scaled for minutes-level
runtimes; every runner accepts the paper's full-scale parameters (see
EXPERIMENTS.md for the mapping and for the recorded outcomes).

* :mod:`repro.experiments.table1` — sample records (Table 1)
* :mod:`repro.experiments.fig5` — keyword-set-size distribution
* :mod:`repro.experiments.fig6` — ranked load distribution
* :mod:`repro.experiments.fig7` — object vs node weight distributions
* :mod:`repro.experiments.fig8` — cacheless superset-search cost
* :mod:`repro.experiments.fig9` — superset-search cost with caches
* :mod:`repro.experiments.eq1` — Equations (1)/(2) vs Monte Carlo
* :mod:`repro.experiments.ablation` — Section 3.5 complexity claims
* :mod:`repro.experiments.fault` — failure tolerance vs the DII
  baseline, with and without secondary-hypercube replication
* :mod:`repro.experiments.hotspot` — query-load distribution (hot spots)
* :mod:`repro.experiments.decomposed` — decomposed-index trade-offs
* :mod:`repro.experiments.dhtcmp` — the four overlay substrates compared
* :mod:`repro.experiments.bandwidth` — references shipped per operation
* :mod:`repro.experiments.churn` — recall under continuous churn with
  maintenance (rebalance / evacuate)
"""

from repro.experiments.harness import ExperimentResult, default_corpus

__all__ = ["ExperimentResult", "default_corpus"]
