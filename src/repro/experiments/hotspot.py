"""Hot-spot analysis: query load per node, hypercube vs DII (Section 3.4).

The paper's second remark: "because the storage load for indexing a
popular keyword (or keyword set) is distributed to a number of nodes,
the query load to the keyword can also be distributed to the nodes as
well, so as to avoid hot spots."  In DII, every query touching keyword
w hits w's single home node.

This experiment replays the calibrated Zipf query stream against both
schemes and measures how *request receipts* distribute over physical
nodes — the hot-spot metric.  For the hypercube scheme the subhypercube
walk spreads each query's requests over many nodes; for DII each query
concentrates them on |K| nodes shared with every other query using
those keywords.

A row with query expansion (Section 3.4's other mitigation) is
included for completeness.  Expansion spreads load over a *different*
(deeper) set of nodes and slightly flattens the distribution, but a
thresholded search over the sparser expanded matching set visits more
nodes in total — the mechanism trades volume for placement, it is not
a free lunch, and the measurement reports that honestly.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.analysis.load import gini_coefficient, max_to_mean_ratio
from repro.baselines.dii import DistributedInvertedIndex
from repro.core.search import SuperSetSearch
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 8_192,
    seed: int = 0,
    dimension: int = 10,
    num_dht_nodes: int = 128,
    num_queries: int = 400,
    pool_size: int = 150,
    thresholds: Sequence[int | None] = (10, None),
) -> ExperimentResult:
    """Query-receipt distribution over physical nodes, per scheme.

    ``thresholds`` compares the common case (users want a handful of
    results, so the hypercube walk stops early) with exhaustive queries.
    """
    corpus = default_corpus(num_objects, seed)
    index = build_loaded_index(corpus, dimension, num_dht_nodes=num_dht_nodes, seed=seed)
    dii = DistributedInvertedIndex(index.dolr)
    dii.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    searcher = SuperSetSearch(index)
    generator = QueryLogGenerator(corpus, pool_size=pool_size, seed=seed + 1)
    stream = [q.keywords for q in generator.generate(num_queries)]
    origin = index.dolr.any_address()
    network = index.dolr.network

    rows: list[dict] = []

    def measure(label: str, runner) -> None:
        receipts: Counter[int] = Counter()
        for query in stream:
            with network.trace() as trace:
                runner(query)
            for message in trace.messages:
                if not message.is_reply and message.dst != origin:
                    receipts[message.dst] += 1
        loads = {address: receipts.get(address, 0) for address in index.dolr.addresses()}
        rows.append(
            {
                "scheme": label,
                "gini": gini_coefficient(loads),
                "max_to_mean": max_to_mean_ratio(loads),
                "hottest_node_requests": max(loads.values()),
                "total_requests": sum(loads.values()),
            }
        )

    for threshold in thresholds:
        label = "exhaustive" if threshold is None else f"t={threshold}"
        measure(
            f"hypercube[{label}]",
            lambda query, t=threshold: searcher.run(query, t, origin=origin),
        )

    # Section 3.4's second mitigation: expand popular queries before
    # searching.  The expansion's sampling traffic is counted, and its
    # *decision* is memoized per query — an application expands a
    # recurring query once (from the user's history/preferences) and
    # reuses the expansion, which is the scenario the paper describes.
    from repro.core.expansion import QueryExpander

    expander = QueryExpander(index, sample_visits=8)
    decisions: dict[frozenset[str], frozenset[str]] = {}

    def run_expanded(query):
        expanded = decisions.get(query)
        if expanded is None:
            expanded = expander.expand(query, origin=origin).expanded
            decisions[query] = expanded
        searcher.run(expanded, 10, origin=origin)

    measure("hypercube[t=10,expanded]", run_expanded)
    measure("dii", lambda query: dii.query(query, origin=origin))

    return ExperimentResult(
        experiment="hotspot",
        description="Query-load distribution over physical nodes (hot spots)",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "num_queries": num_queries,
        },
        rows=rows,
    )
