"""Shared infrastructure for experiment runners.

``ExperimentResult`` is the uniform return type: named rows of plain
scalars, a parameter record, and free-form notes, renderable as the
aligned text table the benchmark harness prints.  ``default_corpus``
memoizes corpus generation — several figures share the same corpus and
benchmarks re-enter runners repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.workload.corpus import SyntheticCorpus

__all__ = ["ExperimentResult", "default_corpus", "hypercube_loads"]

_CORPUS_CACHE: dict[tuple[int, int], SyntheticCorpus] = {}


def default_corpus(num_objects: int, seed: int = 0) -> SyntheticCorpus:
    """A memoized synthetic corpus (shared across experiment runs)."""
    key = (num_objects, seed)
    corpus = _CORPUS_CACHE.get(key)
    if corpus is None:
        corpus = SyntheticCorpus.generate(num_objects=num_objects, seed=seed)
        _CORPUS_CACHE[key] = corpus
    return corpus


def hypercube_loads(
    keyword_sets: list[frozenset[str]], dimension: int, *, salt: str = "h"
) -> dict[int, int]:
    """Static index placement: objects per hypercube node under F_h.

    The load experiments need only where each object lands, not the
    message exchanges, so this skips the network entirely while using
    the very same mapping the protocol stack uses.
    """
    from repro.core.keywords import KeywordHasher, KeywordSetMapper
    from repro.hypercube.hypercube import Hypercube

    mapper = KeywordSetMapper(Hypercube(dimension), KeywordHasher(dimension, salt=salt))
    loads = dict.fromkeys(range(1 << dimension), 0)
    for keywords in keyword_sets:
        loads[mapper.node_for(keywords)] += 1
    return loads


def build_loaded_index(
    corpus: SyntheticCorpus,
    dimension: int,
    *,
    num_dht_nodes: int = 64,
    dht_bits: int = 32,
    seed: int = 0,
    cache_capacity: int = 0,
    cache_policy: str = "fifo",
):
    """A Chord-backed hypercube index bulk-loaded with ``corpus``.

    Placement caching is enabled (membership is static in the query
    experiments); entries are loaded out-of-band, so the construction
    time is dominated by hashing, not routing.
    """
    from repro.core.cache import FifoQueryCache, LruQueryCache
    from repro.core.index import HypercubeIndex
    from repro.dht.chord import ChordNetwork
    from repro.hypercube.hypercube import Hypercube

    factory = {"fifo": FifoQueryCache, "lru": LruQueryCache}[cache_policy]
    dolr = ChordNetwork.build(bits=dht_bits, num_nodes=num_dht_nodes, seed=seed)
    index = HypercubeIndex(
        Hypercube(dimension),
        dolr,
        cache_capacity=cache_capacity,
        cache_factory=factory,
    )
    index.mapping.enable_placement_cache()
    index.bulk_load((record.object_id, record.keywords) for record in corpus.records)
    return index


@dataclass
class ExperimentResult:
    """Uniform result record for every experiment runner."""

    experiment: str
    description: str
    parameters: dict[str, Any]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def columns(self) -> list[str]:
        """Column names, in first-appearance order across all rows."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for name in row:
                seen.setdefault(name)
        return list(seen)

    def table(self, *, max_rows: int | None = None) -> str:
        """The rows as an aligned text table (the paper's series)."""
        columns = self.columns()
        if not columns:
            return "(no rows)"
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[_format_cell(row.get(name)) for name in columns] for row in shown]
        widths = [
            max(len(columns[i]), max((len(row[i]) for row in cells), default=0))
            for i in range(len(columns))
        ]
        lines = [
            "  ".join(name.ljust(width) for name, width in zip(columns, widths)),
            "  ".join("-" * width for width in widths),
        ]
        lines.extend(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in cells
        )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def render(self) -> str:
        """Header + parameters + table + notes, ready to print."""
        parts = [
            f"== {self.experiment}: {self.description}",
            "parameters: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items())),
            self.table(),
        ]
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def series(self, group_by: str, x: str, y: str) -> dict[Any, list[tuple[Any, Any]]]:
        """Pivot rows into {group value: [(x, y), ...]} — one line per
        group, the shape the paper's figures plot."""
        lines: dict[Any, list[tuple[Any, Any]]] = {}
        for row in self.rows:
            lines.setdefault(row[group_by], []).append((row[x], row[y]))
        return lines

    def to_csv(self) -> str:
        """The rows as CSV text (header from :meth:`columns`), for
        external plotting tools."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns(), extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({name: row.get(name, "") for name in self.columns()})
        return buffer.getvalue()

    def to_json(self) -> str:
        """The full record (parameters, rows, notes) as JSON."""
        import json

        return json.dumps(
            {
                "experiment": self.experiment,
                "description": self.description,
                "parameters": {k: _jsonable(v) for k, v in self.parameters.items()},
                "rows": [{k: _jsonable(v) for k, v in row.items()} for row in self.rows],
                "notes": self.notes,
            },
            indent=2,
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    return value


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
