"""Figure 9: superset-search cost with per-node caches.

Each physical node gets a FIFO cache of capacity
``α × |O| / num_dht_nodes`` index-entry units (α on the x-axis,
relative to the mean index size per node; the cache is shared across
the logical tables the node hosts, so the aggregate budget is α·|O|
exactly as in the paper).  A Zipf-skewed query stream — top ten
queries ≥ 60% of volume, matching the paper's logs — is replayed at a
fixed recall rate, and the mean fraction of hypercube nodes contacted
per query is reported per α.

Expected shape: cost collapses steeply as α grows and flattens near one
node per query; around α ≈ 1/6 fewer than 1% of nodes are contacted per
query even at 100% recall, because repeated popular queries are
answered entirely from the root's cache.  Reproducing the <1% level
needs the paper's proportions — the stream must be much longer than the
distinct-query pool (they replay ~178k queries/day) and the per-node
index size must be large enough that α × |O|/2**r covers the distinct
queries rooting at a node; the defaults here preserve both ratios at
reduced scale.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.search import SuperSetSearch
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]

DEFAULT_ALPHAS = (0.0, 1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 3, 2.0 / 3, 1.0)


def run(
    *,
    num_objects: int = 32_768,
    seed: int = 0,
    dimensions: Sequence[int] = (10, 12),
    recall_rates: Sequence[float] = (0.5, 1.0),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    num_queries: int = 10_000,
    pool_size: int = 200,
    cache_policy: str = "fifo",
    num_dht_nodes: int = 64,
    baseline_sample: int = 1_000,
) -> ExperimentResult:
    """Mean fraction of nodes contacted per query vs cache size α.

    The cacheless point (α = 0) is measured on a ``baseline_sample``
    prefix of the stream: without caches, per-query cost is stateless,
    so the subsample is statistically equivalent and much cheaper.
    """
    if any(alpha < 0 for alpha in alphas):
        raise ValueError("alphas must be non-negative")
    corpus = default_corpus(num_objects, seed)
    generator = QueryLogGenerator(corpus, pool_size=pool_size, seed=seed + 1)
    stream = generator.generate(num_queries)
    postings = corpus.inverted_index()

    def matching_count(query: frozenset[str]) -> int:
        sets = sorted((postings.get(k, frozenset()) for k in query), key=len)
        result = set(sets[0])
        for other in sets[1:]:
            result &= other
        return len(result)

    counts = {query: matching_count(query) for query in {q.keywords for q in stream}}
    rows: list[dict] = []
    notes: list[str] = [
        f"stream head share (top 10) = "
        f"{QueryLogGenerator.head_share_of(stream, 10):.3f}",
        f"distinct queries = {len(counts)} over {len(stream)} total",
    ]
    for r in dimensions:
        index = build_loaded_index(
            corpus, r, num_dht_nodes=num_dht_nodes, seed=seed, cache_policy=cache_policy
        )
        searcher = SuperSetSearch(index)
        total_nodes = index.cube.num_nodes
        for recall in recall_rates:
            if not 0 < recall <= 1:
                raise ValueError(f"recall rates must be in (0, 1], got {recall}")
            for alpha in alphas:
                # α relative to the mean index size per *physical* node:
                # the cache is per physical host now (one shared across
                # its hosted tables), so the aggregate budget stays
                # α·|O| regardless of how 2^r logicals fold onto hosts.
                capacity = int(round(alpha * num_objects / num_dht_nodes))
                index.reset_caches(cache_capacity=capacity)
                replay = stream if capacity > 0 else stream[:baseline_sample]
                contacted = 0
                hits = 0
                for query in replay:
                    threshold = (
                        None
                        if recall >= 1.0
                        else max(1, math.ceil(recall * counts[query.keywords]))
                    )
                    result = searcher.run(
                        query.keywords, threshold, use_cache=capacity > 0
                    )
                    contacted += len(result.visits)
                    hits += result.cache_hit
                rows.append(
                    {
                        "dimension": r,
                        "recall": recall,
                        "alpha": round(alpha, 4),
                        "cache_capacity": capacity,
                        "node_fraction": contacted / (len(replay) * total_nodes),
                        "cache_hit_rate": hits / len(replay),
                    }
                )
    return ExperimentResult(
        experiment="fig9",
        description="Superset-search cost with per-node caches (vs cache size alpha)",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimensions": tuple(dimensions),
            "recall_rates": tuple(recall_rates),
            "num_queries": num_queries,
            "pool_size": pool_size,
            "cache_policy": cache_policy,
        },
        rows=rows,
        notes=notes,
    )
