"""Recall under continuous churn, with and without index maintenance.

The paper assumes a "reliable and self-organizing" overlay (§2.1) and
leaves data maintenance to the DHT.  This extension quantifies what the
index layer must actually do under churn:

* **no maintenance** — nodes join (taking over key ranges without the
  data) and leave abruptly (taking their shard tables with them):
  recall decays epoch after epoch;
* **maintained** — after each epoch the index runs
  :meth:`~repro.core.index.HypercubeIndex.rebalance` and departures are
  graceful (:meth:`~repro.core.index.HypercubeIndex.evacuate` first):
  recall stays at 1.0 while entries migrate.

Each epoch performs a fixed number of joins and leaves, then probes a
fixed query set against ground truth.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.experiments.harness import ExperimentResult, default_corpus
from repro.hypercube.hypercube import Hypercube
from repro.util.rng import make_rng
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def run(
    *,
    num_objects: int = 4_096,
    seed: int = 0,
    dimension: int = 8,
    num_dht_nodes: int = 48,
    epochs: int = 6,
    joins_per_epoch: int = 4,
    leaves_per_epoch: int = 4,
    num_queries: int = 12,
    query_sizes: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Recall per epoch, maintained vs unmaintained."""
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    corpus = default_corpus(num_objects, seed)
    generator = QueryLogGenerator(corpus, seed=seed + 1)
    queries = [
        query
        for m in query_sizes
        for query in generator.popular_sets(m, num_queries // len(query_sizes))
    ]
    truth = {query: set(corpus.matching(query)) for query in queries}
    items = [(record.object_id, record.keywords) for record in corpus.records]

    rows: list[dict] = []
    for maintained in (False, True):
        ring = ChordNetwork.build(bits=20, num_nodes=num_dht_nodes, seed=seed)
        index = HypercubeIndex(Hypercube(dimension), ring)
        index.bulk_load(items)
        searcher = SuperSetSearch(index, skip_unreachable=True)
        rng = make_rng(seed + 2)
        label = "maintained" if maintained else "no-maintenance"
        rows.append(_probe(label, 0, index, searcher, queries, truth, moved=0))
        for epoch in range(1, epochs + 1):
            moved = 0
            for _ in range(joins_per_epoch):
                address = ring.space.random_id(rng)
                if address not in ring.nodes:
                    ring.join(address, ring.any_address())
            ring.stabilize_all(rounds=2)
            # Converge routing state fully before measuring: the probe
            # isolates *index* maintenance, not transient DHT routing
            # staleness (which extra stabilization rounds remove in real
            # Chord too).
            ring.rewire_from_global_knowledge()
            if maintained:
                moved += index.rebalance()
            departures = rng.sample(
                ring.addresses(), min(leaves_per_epoch, len(ring.nodes) - 4)
            )
            for address in departures:
                if maintained:
                    moved += index.evacuate(address)
                ring.leave(address)
            ring.stabilize_all(rounds=2)
            ring.rewire_from_global_knowledge()
            index.mapping.invalidate_placement_cache()
            rows.append(
                _probe(label, epoch, index, searcher, queries, truth, moved=moved)
            )
    return ExperimentResult(
        experiment="churn",
        description="Recall over churn epochs, with and without index maintenance",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "epochs": epochs,
            "joins_per_epoch": joins_per_epoch,
            "leaves_per_epoch": leaves_per_epoch,
        },
        rows=rows,
    )


def _probe(label, epoch, index, searcher, queries, truth, *, moved) -> dict:
    recalls = []
    for query in queries:
        expected = truth[query]
        if not expected:
            continue
        found = set(searcher.run(query).object_ids)
        recalls.append(len(found & expected) / len(expected))
    return {
        "scheme": label,
        "epoch": epoch,
        "mean_recall": sum(recalls) / len(recalls),
        "indexed_references": index.total_indexed(),
        "moved_references": moved,
    }
