"""DHT substrate comparison: the keyword layer is overlay-agnostic.

Section 2.1 deliberately assumes only a *generalized* DHT, and Section
3.2 adds that the hypercube can even be a physical overlay.  This
experiment quantifies what the choice of substrate costs and what it
cannot change:

* identical *logical* behaviour — same objects found, same number of
  hypercube nodes contacted per query on every substrate;
* different *physical* cost — DHT routing hops per lookup (O(log N)
  for Chord/Pastry/Kademlia, Hamming distance for the native cube).

Substrates: Chord, Kademlia, Pastry (hash mapping g), and the native
HyperCuP-style hypercube (identity g).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.index import HypercubeIndex
from repro.core.mapping import HypercubeMapping
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.dht.hypercup import HypercubeOverlay
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork
from repro.experiments.harness import ExperimentResult, default_corpus
from repro.hypercube.hypercube import Hypercube
from repro.workload.queries import QueryLogGenerator

__all__ = ["run"]


def _build_stack(substrate: str, dimension: int, num_nodes: int, seed: int):
    cube = Hypercube(dimension)
    if substrate == "hypercup":
        dolr = HypercubeOverlay.build(bits=dimension)
        mapping = HypercubeMapping(cube, dolr, identity=True)
    else:
        builder = {
            "chord": ChordNetwork.build,
            "kademlia": KademliaNetwork.build,
            "pastry": PastryNetwork.build,
        }[substrate]
        dolr = builder(bits=32, num_nodes=num_nodes, seed=seed)
        mapping = HypercubeMapping(cube, dolr)
    index = HypercubeIndex(cube, dolr, mapping=mapping)
    index.mapping.enable_placement_cache()
    return index


def run(
    *,
    num_objects: int = 4_096,
    seed: int = 0,
    dimension: int = 8,
    num_dht_nodes: int = 64,
    substrates: Sequence[str] = ("chord", "kademlia", "pastry", "hypercup"),
    num_lookups: int = 200,
    query_sizes: Sequence[int] = (1, 2),
    queries_per_size: int = 4,
) -> ExperimentResult:
    """Routing hops and search equivalence per substrate."""
    corpus = default_corpus(num_objects, seed)
    generator = QueryLogGenerator(corpus, seed=seed + 1)
    queries = [
        query
        for m in query_sizes
        for query in generator.popular_sets(m, queries_per_size)
    ]
    items = [(record.object_id, record.keywords) for record in corpus.records]

    rows: list[dict] = []
    reference: dict[frozenset[str], tuple[frozenset[str], int]] = {}
    for substrate in substrates:
        index = _build_stack(substrate, dimension, num_dht_nodes, seed)
        index.bulk_load(items)
        dolr = index.dolr
        origin = dolr.any_address()
        hops = []
        for step in range(num_lookups):
            key = dolr.space.hash_name(f"probe-{step}")
            hops.append(dolr.lookup(key, origin=origin).hops)
        searcher = SuperSetSearch(index)
        agreement = True
        visit_counts = []
        for query in queries:
            result = searcher.run(query)
            visit_counts.append(result.logical_nodes_contacted)
            found = frozenset(result.object_ids)
            expected = reference.setdefault(
                query, (found, result.logical_nodes_contacted)
            )
            agreement &= expected == (found, result.logical_nodes_contacted)
        rows.append(
            {
                "substrate": substrate,
                "physical_nodes": len(dolr.nodes),
                "mean_lookup_hops": sum(hops) / len(hops),
                "max_lookup_hops": max(hops),
                "mean_visits_per_query": sum(visit_counts) / len(visit_counts),
                "matches_reference": agreement,
            }
        )
    return ExperimentResult(
        experiment="dhtcmp",
        description="Keyword layer over four substrates: same logic, different hops",
        parameters={
            "num_objects": num_objects,
            "seed": seed,
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "num_lookups": num_lookups,
        },
        rows=rows,
    )
