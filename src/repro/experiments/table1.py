"""Table 1: sample website records.

Prints the paper's two PCHome rows verbatim alongside synthetic records
of the same schema, demonstrating the substitution documented in
DESIGN.md.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, default_corpus
from repro.workload.pchome import TABLE1_RECORDS, format_records_table

__all__ = ["run"]


def run(*, synthetic_samples: int = 3, num_objects: int = 2_000, seed: int = 0) -> ExperimentResult:
    """Render Table 1 plus synthetic records of the same schema."""
    if synthetic_samples < 0:
        raise ValueError(f"synthetic_samples must be >= 0, got {synthetic_samples}")
    corpus = default_corpus(num_objects, seed)
    rows = []
    for record in TABLE1_RECORDS:
        rows.append(
            {
                "source": "paper",
                "id": record.object_id,
                "title": record.title,
                "url": record.url,
                "category": record.category,
                "keywords": ", ".join(sorted(record.keywords)),
            }
        )
    for record in corpus.records[:synthetic_samples]:
        rows.append(
            {
                "source": "synthetic",
                "id": record.object_id,
                "title": record.title,
                "url": record.url,
                "category": record.category,
                "keywords": ", ".join(sorted(record.keywords)),
            }
        )
    return ExperimentResult(
        experiment="table1",
        description="Sample website records (paper rows + synthetic schema twins)",
        parameters={"synthetic_samples": synthetic_samples, "num_objects": num_objects, "seed": seed},
        rows=rows,
        notes=[format_records_table(TABLE1_RECORDS)],
    )
