"""Prefix search over the distributed keyword directory (§17).

Publishes a synthetic corpus into a service built with
``prefix_directory=True``, replays a harvest-style stream of Zipf-
skewed prefixes, and reports — per prefix length — recall against the
brute-force posting-list oracle, matched-keyword counts, and directory
messages.  The headline relation: directory resolution messages track
the number of *matched keywords*, not the vocabulary size.

    python -m repro run prefix
    python -m repro run prefix --num-objects 1500 --queries 120
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.experiments.harness import ExperimentResult, default_corpus
from repro.load.mix import HarvestPrefixMix

__all__ = ["run"]


def run(
    *,
    dimension: int = 6,
    num_dht_nodes: int = 24,
    num_objects: int = 600,
    queries: int = 100,
    max_expansions: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Replay a harvest prefix stream and measure recall + message cost."""
    if queries < 1:
        raise ValueError(f"queries must be >= 1, got {queries}")
    corpus = default_corpus(num_objects, seed)
    config = ServiceConfig(
        dimension=dimension,
        num_dht_nodes=num_dht_nodes,
        seed=seed,
        prefix_directory=True,
    )
    service = KeywordSearchService.create(config)
    for record in corpus.records:
        service.publish(record.object_id, record.keywords)

    postings = corpus.inverted_index()
    mix = HarvestPrefixMix.from_corpus(corpus, seed=seed)
    by_length: dict[int, dict[str, float]] = defaultdict(
        lambda: {"queries": 0, "matched": 0, "messages": 0, "recall_hits": 0, "expected": 0}
    )
    exact = 0
    for _ in range(queries):
        prefix = mix.next_prefix()
        result = service.prefix_search(prefix, max_expansions=max_expansions)
        oracle = {
            object_id
            for keyword, ids in postings.items()
            if keyword.startswith(prefix)
            for object_id in ids
        }
        returned = set(result.results())
        bucket = by_length[len(prefix)]
        bucket["queries"] += 1
        bucket["matched"] += len(result.matched_keywords)
        bucket["messages"] += result.directory_messages
        bucket["recall_hits"] += len(returned & oracle)
        bucket["expected"] += len(oracle)
        if returned == oracle:
            exact += 1
    rows = []
    for length in sorted(by_length):
        bucket = by_length[length]
        rows.append(
            {
                "prefix_length": length,
                "queries": int(bucket["queries"]),
                "mean_matched_keywords": bucket["matched"] / bucket["queries"],
                "mean_directory_messages": bucket["messages"] / bucket["queries"],
                "recall": (
                    bucket["recall_hits"] / bucket["expected"] if bucket["expected"] else 1.0
                ),
            }
        )
    return ExperimentResult(
        experiment="prefix",
        description="Prefix-search recall and directory message cost (harvest workload)",
        parameters={
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "num_objects": num_objects,
            "queries": queries,
            "max_expansions": max_expansions,
            "seed": seed,
        },
        rows=rows,
        notes=[
            f"{exact}/{queries} queries returned exactly the oracle set "
            f"(expansion budget {max_expansions}); directory messages grow "
            "with matched keywords, not vocabulary size.",
        ],
    )
