"""Figure 5: the distribution of keyword-set sizes.

The paper's corpus averages 7.3 keywords per object with a unimodal,
right-skewed size distribution; this runner reports the synthetic
corpus's histogram so the match can be inspected (and is asserted by
the test suite).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, default_corpus
from repro.workload.corpus import PAPER_MEAN_KEYWORDS

__all__ = ["run"]


def run(*, num_objects: int = 131_180, seed: int = 0) -> ExperimentResult:
    """Histogram of keyword-set sizes over the synthetic corpus."""
    corpus = default_corpus(num_objects, seed)
    histogram = corpus.size_histogram()
    total = len(corpus)
    rows = [
        {
            "keyword_set_size": size,
            "objects": count,
            "fraction": count / total,
        }
        for size, count in histogram.items()
    ]
    mean = corpus.mean_keyword_count()
    return ExperimentResult(
        experiment="fig5",
        description="Distribution of keyword-set sizes (paper mean: 7.3)",
        parameters={"num_objects": num_objects, "seed": seed},
        rows=rows,
        notes=[
            f"measured mean keywords/object = {mean:.3f} "
            f"(paper: {PAPER_MEAN_KEYWORDS})",
            f"mode = {max(histogram, key=histogram.get)}",
        ],
    )
