"""Chord: ring-based DHT with finger-table routing.

A from-scratch implementation of Chord (Stoica et al., SIGCOMM 2001)
over the simulated network, providing the paper's generalized DOLR:

* each node owns the keys in ``(predecessor, self]`` — the *successor*
  of a key is its owner, which is exactly the surrogate-routing rule the
  paper requires (an absent identifier is served by the next live node
  clockwise);
* lookups route iteratively: the origin repeatedly asks the current hop
  for the closest preceding finger, paying one RPC per hop, giving the
  familiar O(log N) hop count;
* nodes keep successor lists so routing survives failures, and the
  classic ``join`` / ``stabilize`` / ``fix_fingers`` maintenance round
  is implemented for dynamic membership.

Networks can be constructed two ways: :meth:`ChordNetwork.build` wires
fingers from global knowledge (the steady state reached after enough
stabilization), and :meth:`ChordNetwork.join` grows a ring incrementally
through the actual protocol.
"""

from __future__ import annotations

import random

from repro.dht.dolr import DolrNetwork, DolrNode, LookupResult
from repro.dht.ids import IdSpace
from repro.net.transport import Transport
from repro.sim.network import Message, SimulatedNetwork
from repro.util.rng import make_rng

__all__ = ["ChordNetwork", "ChordNode", "RoutingError"]

DEFAULT_SUCCESSOR_LIST_LENGTH = 8


class RoutingError(RuntimeError):
    """Raised when a lookup cannot make progress (e.g. all candidate
    next hops are dead)."""


class ChordNode(DolrNode):
    """One Chord peer: fingers, successor list, predecessor."""

    def __init__(
        self,
        address: int,
        space: IdSpace,
        network: Transport,
        *,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST_LENGTH,
    ):
        super().__init__(address, space, network)
        self.fingers: list[int] = [address] * space.bits
        self.successor_list: list[int] = [address]
        self.predecessor: int | None = None
        self.successor_list_length = successor_list_length

    # -- views ----------------------------------------------------------

    @property
    def successor(self) -> int:
        return self.successor_list[0]

    def finger_start(self, index: int) -> int:
        """The start of finger interval ``index``: (n + 2**index) mod 2**m."""
        return (self.address + (1 << index)) % self.space.size

    # -- local routing decisions -----------------------------------------

    def owns(self, key: int) -> bool:
        """True iff ``key`` is in (predecessor, self]."""
        if self.predecessor is None:
            return True
        return self.space.in_half_open_interval(key, self.predecessor, self.address)

    def closest_preceding_candidates(self, key: int, limit: int = 8) -> list[int]:
        """Fingers strictly inside (self, key), furthest first, then the
        successor list as a last resort — the fallback order an iterative
        lookup tries when hops are dead."""
        seen: set[int] = set()
        candidates: list[int] = []
        for finger in reversed(self.fingers):
            if finger in seen or finger == self.address:
                continue
            if self.space.in_open_interval(finger, self.address, key):
                seen.add(finger)
                candidates.append(finger)
                if len(candidates) >= limit:
                    break
        for successor in self.successor_list:
            if successor not in seen and successor != self.address:
                seen.add(successor)
                candidates.append(successor)
        return candidates

    def route_step(self, key: int) -> dict:
        """One iterative-routing step, executed at this node.

        If the key falls within this node's successor list, the step is
        done: ``owners`` lists the true owner first, then its clockwise
        surrogates (the lookup takes the first *live* one).  Otherwise
        ``candidates`` are next hops to try, in fallback order.
        """
        if self.space.in_half_open_interval(key, self.address, self.successor_list[-1]):
            owners = [
                successor
                for successor in self.successor_list
                if self.space.in_half_open_interval(key, self.address, successor)
            ]
            # Successors still *before* the key: if every known owner is
            # dead, the lookup advances to the closest live one of these
            # and re-asks — its successor list extends further clockwise.
            fallbacks = [s for s in reversed(self.successor_list) if s not in owners]
            return {"done": True, "owners": owners, "fallbacks": fallbacks}
        return {"done": False, "candidates": self.closest_preceding_candidates(key)}

    # -- message handling -------------------------------------------------

    def _on_message(self, message: Message):
        if message.kind.startswith("chord."):
            return self._handle_chord(message)
        return super()._on_message(message)

    def _handle_chord(self, message: Message):
        payload = message.payload
        if message.kind == "chord.route_step":
            return self.route_step(payload["key"])
        if message.kind == "chord.get_predecessor":
            return {"predecessor": self.predecessor}
        if message.kind == "chord.get_successor_list":
            return {"successor_list": list(self.successor_list)}
        if message.kind == "chord.notify":
            self._notify(payload["candidate"])
            return {}
        raise LookupError(f"unknown chord message kind {message.kind!r}")

    def _notify(self, candidate: int) -> None:
        """Chord's notify(): adopt ``candidate`` as predecessor if it lies
        in (predecessor, self)."""
        if candidate == self.address:
            return
        if self.predecessor is None or self.space.in_open_interval(
            candidate, self.predecessor, self.address
        ):
            self.predecessor = candidate


class ChordNetwork(DolrNetwork):
    """A Chord ring over the simulated network."""

    def __init__(
        self,
        space: IdSpace,
        network: Transport | None = None,
        *,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST_LENGTH,
    ):
        super().__init__(space, network if network is not None else SimulatedNetwork())
        self.successor_list_length = successor_list_length
        self.nodes: dict[int, ChordNode] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        *,
        bits: int,
        num_nodes: int,
        seed: int | random.Random | None = 0,
        network: Transport | None = None,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST_LENGTH,
    ) -> "ChordNetwork":
        """Construct a fully-stabilized ring of ``num_nodes`` peers at
        distinct random addresses."""
        space = IdSpace(bits)
        if not 1 <= num_nodes <= space.size:
            raise ValueError(f"num_nodes must be in [1, {space.size}], got {num_nodes}")
        rng = make_rng(seed)
        addresses = rng.sample(range(space.size), num_nodes)
        ring = cls(space, network, successor_list_length=successor_list_length)
        for address in addresses:
            ring.nodes[address] = ChordNode(
                address, space, ring.network, successor_list_length=successor_list_length
            )
        ring.rewire_from_global_knowledge()
        return ring

    def rewire_from_global_knowledge(self) -> None:
        """Set every node's successors, predecessor and fingers to their
        converged values — the state repeated stabilization reaches."""
        ordered = self.addresses()
        count = len(ordered)
        for rank, address in enumerate(ordered):
            node = self.nodes[address]
            node.predecessor = ordered[(rank - 1) % count]
            depth = min(self.successor_list_length, count)
            node.successor_list = [ordered[(rank + 1 + i) % count] for i in range(depth)]
            if count == 1:
                node.successor_list = [address]
            node.fingers = [
                self._successor_in(ordered, node.finger_start(i))
                for i in range(self.space.bits)
            ]

    def _successor_in(self, ordered: list[int], key: int) -> int:
        """First address clockwise from ``key`` in a sorted address list."""
        import bisect

        index = bisect.bisect_left(ordered, key)
        return ordered[index % len(ordered)]

    # -- DolrNetwork contract ---------------------------------------------

    def local_owner(self, key: int) -> int:
        self.space.check(key)
        ordered = self.addresses()
        if not ordered:
            raise RuntimeError("ring is empty")
        return self._successor_in(ordered, key)

    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Iterative lookup with failure fallback.

        The origin performs the first routing step locally (free), then
        pays one RPC per hop.  Dead hops are skipped using the candidate
        lists each step returns; a dead owner is replaced by the next
        entry of its predecessor's successor list (surrogate routing).
        """
        self.space.check(key)
        origin = self.any_address() if origin is None else origin
        current = origin
        path = [origin]
        hops = 0
        visited = {origin}
        for _ in range(4 * self.space.bits + len(self.nodes) + 4):
            step = self._ask_route_step(origin, current, key)
            hops += 0 if current == origin else 1
            if step["done"]:
                owner = self._first_live(step["owners"])
                if owner is not None:
                    if owner != path[-1]:
                        path.append(owner)
                    return LookupResult(key=key, owner=owner, hops=hops, path=tuple(path))
                # Every known owner is dead: advance through the live
                # fallback closest to the key and ask again there.
                step = {"candidates": step.get("fallbacks", [])}
            advanced = False
            for candidate in step["candidates"]:
                if candidate in visited:
                    continue
                if self.network.is_alive(candidate):
                    current = candidate
                    visited.add(candidate)
                    path.append(candidate)
                    advanced = True
                    break
            if not advanced:
                raise RoutingError(f"lookup for key {key} stuck at node {current}")
        raise RoutingError(f"lookup for key {key} exceeded hop budget")

    # -- dynamic membership -------------------------------------------------

    def join(self, address: int, bootstrap: int | None = None) -> ChordNode:
        """Add a node through the Chord join protocol.

        The new node looks up its own successor via ``bootstrap``; rings
        converge fully only after :meth:`stabilize_all` rounds.
        """
        self.space.check(address)
        if address in self.nodes:
            raise ValueError(f"address {address} already joined")
        node = ChordNode(
            address, self.space, self.network, successor_list_length=self.successor_list_length
        )
        self.nodes[address] = node
        self.provision_node(node)
        if bootstrap is None:
            if len(self.nodes) > 1:
                raise ValueError("bootstrap required when the ring is non-empty")
            node.successor_list = [address]
            node.predecessor = None
            return node
        route = self.lookup(address, origin=bootstrap)
        node.successor_list = [route.owner]
        node.predecessor = None
        self.network.rpc(address, route.owner, "chord.notify", {"candidate": address})
        return node

    def leave(self, address: int) -> None:
        """Remove a node abruptly (crash); stabilization heals the ring."""
        if address not in self.nodes:
            raise ValueError(f"unknown address {address}")
        self.network.unregister(address)
        del self.nodes[address]

    def admit(self, address: int) -> ChordNode:
        """Apply a membership *fact*: ``address`` is now part of the
        ring.

        Unlike :meth:`join` (the protocol join a new node initiates for
        itself), ``admit`` is the structural form every participant
        applies when it *learns* of a join — create the node object,
        provision its applications, and rewire from global knowledge,
        without any RPCs.  Because placement is a pure function of the
        address set, all participants agree on ownership once their
        peer books agree.  Idempotent.
        """
        self.space.check(address)
        node = self.nodes.get(address)
        if node is not None:
            return node
        node = ChordNode(
            address, self.space, self.network, successor_list_length=self.successor_list_length
        )
        self.nodes[address] = node
        self.provision_node(node)
        self.rewire_from_global_knowledge()
        return node

    def expel(self, address: int) -> None:
        """Apply a membership fact: ``address`` has left or died.

        The structural counterpart of :meth:`admit` — drop the node and
        rewire the survivors' tables from global knowledge (the state
        enough stabilization rounds would reach).  Idempotent.
        """
        if address not in self.nodes:
            return
        self.network.unregister(address)
        del self.nodes[address]
        if self.nodes:
            self.rewire_from_global_knowledge()

    def stabilize_all(self, rounds: int = 1) -> None:
        """Run ``rounds`` of stabilize + successor-list refresh + finger
        repair at every node, in address order (deterministic)."""
        for _ in range(rounds):
            for address in self.addresses():
                self._stabilize_one(address)
            for address in self.addresses():
                self._refresh_successor_list(address)
            for address in self.addresses():
                self._fix_fingers(address)

    def _stabilize_one(self, address: int) -> None:
        node = self.nodes[address]
        successor = self._first_live(node.successor_list)
        if successor is None or successor not in self.nodes:
            successor = address
        node.successor_list[0:1] = [successor]
        if successor == address:
            if len(self.nodes) == 1:
                node.predecessor = None
                return
            # A node pointing at itself in a multi-node ring (the
            # original bootstrap node) escapes through its predecessor,
            # learned from joiners' notify() calls; stabilization then
            # walks it around to its true successor.
            candidate = node.predecessor
            if (
                candidate is None
                or candidate not in self.nodes
                or not self.network.is_alive(candidate)
            ):
                return
            node.successor_list.insert(0, candidate)
            successor = candidate
        reply = self.network.rpc(address, successor, "chord.get_predecessor", {})
        candidate = reply["predecessor"]
        if (
            candidate is not None
            and candidate in self.nodes
            and self.network.is_alive(candidate)
            and self.space.in_open_interval(candidate, address, successor)
        ):
            node.successor_list.insert(0, candidate)
            successor = candidate
        self.network.rpc(address, successor, "chord.notify", {"candidate": address})

    def _refresh_successor_list(self, address: int) -> None:
        node = self.nodes[address]
        successor = self._first_live(node.successor_list)
        if successor is None or successor == address:
            node.successor_list = [address]
            return
        reply = self.network.rpc(address, successor, "chord.get_successor_list", {})
        merged = [successor] + [s for s in reply["successor_list"] if s != address]
        deduped: list[int] = []
        for entry in merged:
            if entry not in deduped and entry in self.nodes:
                deduped.append(entry)
        node.successor_list = deduped[: node.successor_list_length] or [address]

    def _fix_fingers(self, address: int) -> None:
        node = self.nodes[address]
        for index in range(self.space.bits):
            try:
                route = self.lookup(node.finger_start(index), origin=address)
            except RoutingError:
                continue
            node.fingers[index] = route.owner

    # -- helpers -----------------------------------------------------------

    def _ask_route_step(self, origin: int, current: int, key: int) -> dict:
        if current == origin:
            return self.nodes[origin].route_step(key)
        return self.channel.rpc(origin, current, "chord.route_step", {"key": key})

    def _first_live(self, candidates: list[int]) -> int | None:
        for candidate in candidates:
            if candidate in self.nodes and self.network.is_alive(candidate):
                return candidate
        return None
