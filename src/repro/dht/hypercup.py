"""A native hypercube overlay (HyperCuP-style, the paper's §3.2 option).

Section 3.2: "The hypercube can be constructed directly from a physical
hypercube (e.g. HyperCuP), or conceptually built on an underlying DHT."
This module provides the first option: peers *are* the vertices of an
r-dimensional hypercube, each linked to its r bit-flip neighbours, and
the logical-to-physical mapping ``g`` becomes the identity.

Routing is classic bit-fixing: at each hop, flip the lowest dimension
at which the current node differs from the key, giving paths of length
``Hamming(src, key) <= r``.  When a hop is dead, the router flips a
different differing dimension instead (dimension-order rerouting) —
hypercubes have ``Hamming`` disjoint shortest paths, so routing
tolerates failures without any successor-list machinery.

The overlay requires the full 2**r population (HyperCuP's assumption);
``local_owner`` is the key itself, so index placement needs no hashing
at all and every hypercube-layer message is exactly one physical hop.
"""

from __future__ import annotations

from repro.dht.dolr import DolrNetwork, DolrNode, LookupResult
from repro.dht.ids import IdSpace
from repro.net.transport import Transport
from repro.sim.network import Message, SimulatedNetwork

__all__ = ["HypercubeOverlay", "HypercubeOverlayNode", "HypercubeRoutingError"]


class HypercubeRoutingError(RuntimeError):
    """Raised when every remaining path toward a key is dead."""


class HypercubeOverlayNode(DolrNode):
    """One vertex of the physical hypercube."""

    def __init__(self, address: int, space: IdSpace, network: Transport):
        super().__init__(address, space, network)

    def neighbors(self) -> tuple[int, ...]:
        """Bit-flip neighbours, ascending dimension."""
        return tuple(self.address ^ (1 << d) for d in range(self.space.bits))

    def next_hops(self, key: int) -> list[int]:
        """Neighbours strictly closer to ``key`` (one per differing
        dimension), lowest dimension first — the bit-fixing order, with
        the rest as rerouting alternatives."""
        difference = self.address ^ key
        hops = []
        dimension = 0
        while difference:
            if difference & 1:
                hops.append(self.address ^ (1 << dimension))
            difference >>= 1
            dimension += 1
        return hops

    def _on_message(self, message: Message):
        if message.kind == "cube.next_hops":
            return {"hops": self.next_hops(message.payload["key"])}
        return super()._on_message(message)


class HypercubeOverlay(DolrNetwork):
    """A complete r-dimensional physical hypercube as a DOLR network."""

    def __init__(self, space: IdSpace, network: Transport | None = None):
        super().__init__(space, network if network is not None else SimulatedNetwork())
        self.nodes: dict[int, HypercubeOverlayNode] = {}

    @classmethod
    def build(
        cls, *, bits: int, network: Transport | None = None, **_ignored
    ) -> "HypercubeOverlay":
        """Construct the complete 2**bits-vertex overlay.

        ``bits`` doubles as the hypercube dimension; keep it modest
        (the full population is materialized).
        """
        if bits > 16:
            raise ValueError(f"bits={bits} would materialize {1 << bits} nodes")
        space = IdSpace(bits)
        overlay = cls(space, network)
        for address in range(space.size):
            overlay.nodes[address] = HypercubeOverlayNode(
                address, space, overlay.network
            )
        return overlay

    # -- DolrNetwork contract ---------------------------------------------

    def local_owner(self, key: int) -> int:
        """Identity: every key is its own vertex."""
        return self.space.check(key)

    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Bit-fixing routing with dimension-order rerouting around dead
        vertices.  Hop count is Hamming(origin, key) on a healthy cube.
        """
        self.space.check(key)
        origin = self.any_address() if origin is None else origin
        current = origin
        path = [origin]
        hops = 0
        visited = {origin}
        budget = self.space.bits * self.space.bits + 2
        while current != key:
            if hops > budget:
                raise HypercubeRoutingError(f"routing to {key} exceeded hop budget")
            if current == origin:
                candidates = self.nodes[origin].next_hops(key)
            else:
                reply = self.channel.rpc(origin, current, "cube.next_hops", {"key": key})
                candidates = reply["hops"]
                hops += 1
            advanced = False
            for candidate in candidates:
                if candidate in visited:
                    continue
                if candidate == key or self.network.is_alive(candidate):
                    current = candidate
                    visited.add(candidate)
                    path.append(candidate)
                    advanced = True
                    break
            if not advanced:
                raise HypercubeRoutingError(
                    f"no live path toward {key} from {path[-1]}"
                )
        if not self.network.is_alive(key):
            # The destination vertex itself is dead: surrogate to its
            # lowest live neighbour (deterministic, agreed by all peers).
            for dimension in range(self.space.bits):
                surrogate = key ^ (1 << dimension)
                if self.network.is_alive(surrogate):
                    path.append(surrogate)
                    return LookupResult(key=key, owner=surrogate, hops=hops, path=tuple(path))
            raise HypercubeRoutingError(f"vertex {key} and all its neighbours are dead")
        return LookupResult(key=key, owner=key, hops=hops, path=tuple(path))
