"""Pastry: prefix-routing DHT with leaf sets (Rowstron & Druschel 2001).

A third realization of the paper's generalized DOLR (the paper lists
Pastry among the structured overlays its scheme can sit on).  Node
identifiers are strings of base-2**b digits; a key belongs to the node
*numerically closest* to it on the circular identifier space.  Routing:

1. If the key falls within the current node's leaf set span, deliver to
   the numerically closest leaf (or self) — one final hop.
2. Otherwise forward via the routing table entry that shares one more
   digit of prefix with the key.
3. If that entry is empty (or dead), fall back to any known node that
   is numerically closer to the key than the current node.

Lookups are iterative from the origin, one RPC per hop, matching the
Chord and Kademlia implementations; surrogate routing falls out of the
"numerically closest live node" delivery rule.
"""

from __future__ import annotations

import random

from repro.dht.dolr import DolrNetwork, DolrNode, LookupResult
from repro.dht.ids import IdSpace
from repro.net.transport import Transport
from repro.sim.network import Message, SimulatedNetwork
from repro.util.rng import make_rng

__all__ = ["PastryNetwork", "PastryNode", "PastryRoutingError"]

DEFAULT_DIGIT_BITS = 4
DEFAULT_LEAF_SET_SIZE = 8  # per side


class PastryRoutingError(RuntimeError):
    """Raised when no live route toward a key remains."""


def _circular_distance(a: int, b: int, size: int) -> int:
    direct = abs(a - b)
    return min(direct, size - direct)


class PastryNode(DolrNode):
    """One Pastry peer: routing table (rows × 2**b columns) + leaf set."""

    def __init__(
        self,
        address: int,
        space: IdSpace,
        network: Transport,
        *,
        digit_bits: int = DEFAULT_DIGIT_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ):
        super().__init__(address, space, network)
        if space.bits % digit_bits:
            raise ValueError(
                f"identifier width {space.bits} not divisible by digit width {digit_bits}"
            )
        self.digit_bits = digit_bits
        self.num_digits = space.bits // digit_bits
        self.leaf_set_size = leaf_set_size
        # routing_table[row][column]: node sharing `row` digits of prefix
        # with us whose digit `row` equals `column` (None when unknown).
        self.routing_table: list[list[int | None]] = [
            [None] * (1 << digit_bits) for _ in range(self.num_digits)
        ]
        self.smaller_leaves: list[int] = []  # ascending distance, counter-clockwise
        self.larger_leaves: list[int] = []  # ascending distance, clockwise

    # -- digit helpers ------------------------------------------------------

    def digit(self, value: int, position: int) -> int:
        """Digit ``position`` (0 = most significant) of ``value``."""
        shift = (self.num_digits - 1 - position) * self.digit_bits
        return (value >> shift) & ((1 << self.digit_bits) - 1)

    def shared_prefix_length(self, other: int) -> int:
        """Number of leading digits ``other`` shares with this node."""
        for position in range(self.num_digits):
            if self.digit(self.address, position) != self.digit(other, position):
                return position
        return self.num_digits

    # -- views ---------------------------------------------------------------

    def leaf_set(self) -> list[int]:
        return self.smaller_leaves + self.larger_leaves

    def known_nodes(self) -> set[int]:
        known = set(self.leaf_set())
        for row in self.routing_table:
            known.update(entry for entry in row if entry is not None)
        return known

    # -- routing decision ------------------------------------------------------

    def route_step(self, key: int) -> dict:
        """One Pastry routing step at this node."""
        size = self.space.size
        pool = self.leaf_set() + [self.address]
        if self._within_leaf_span(key):
            owners = sorted(
                pool, key=lambda n: (_circular_distance(n, key, size), n)
            )[: self.leaf_set_size]
            return {"done": True, "owners": owners}
        row = self.shared_prefix_length(key)
        preferred = self.routing_table[row][self.digit(key, row)]
        candidates: list[int] = []
        if preferred is not None:
            candidates.append(preferred)
        # Rule 3 fallback: any known node strictly closer to the key.
        my_distance = _circular_distance(self.address, key, size)
        closer = sorted(
            (
                node
                for node in self.known_nodes()
                if _circular_distance(node, key, size) < my_distance
            ),
            key=lambda n: (_circular_distance(n, key, size), n),
        )
        candidates.extend(node for node in closer if node not in candidates)
        return {"done": False, "candidates": candidates}

    def _within_leaf_span(self, key: int) -> bool:
        """True iff the key lies in the circular arc covered by the leaf
        set (then the numerically closest leaf is the owner)."""
        if not self.smaller_leaves or not self.larger_leaves:
            return True  # tiny network: leaf set is everyone
        low = self.smaller_leaves[-1]
        high = self.larger_leaves[-1]
        size = self.space.size
        # The leaf set covers the clockwise arc low -> self -> high.
        # Measuring both halves through self handles the wrapped case
        # where the leaf set circles the entire ring (low == high).
        arc = (self.address - low) % size + (high - self.address) % size
        return (key - low) % size <= arc

    # -- message handling ---------------------------------------------------------

    def _on_message(self, message: Message):
        if message.kind == "pastry.route_step":
            return self.route_step(message.payload["key"])
        return super()._on_message(message)


class PastryNetwork(DolrNetwork):
    """A Pastry overlay over the simulated network."""

    def __init__(
        self,
        space: IdSpace,
        network: Transport | None = None,
        *,
        digit_bits: int = DEFAULT_DIGIT_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ):
        super().__init__(space, network if network is not None else SimulatedNetwork())
        self.digit_bits = digit_bits
        self.leaf_set_size = leaf_set_size
        self.nodes: dict[int, PastryNode] = {}

    @classmethod
    def build(
        cls,
        *,
        bits: int,
        num_nodes: int,
        seed: int | random.Random | None = 0,
        network: Transport | None = None,
        digit_bits: int = DEFAULT_DIGIT_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ) -> "PastryNetwork":
        """Construct a converged overlay of ``num_nodes`` peers."""
        space = IdSpace(bits)
        if bits % digit_bits:
            raise ValueError(f"bits={bits} not divisible by digit_bits={digit_bits}")
        if not 1 <= num_nodes <= space.size:
            raise ValueError(f"num_nodes must be in [1, {space.size}], got {num_nodes}")
        rng = make_rng(seed)
        addresses = rng.sample(range(space.size), num_nodes)
        overlay = cls(space, network, digit_bits=digit_bits, leaf_set_size=leaf_set_size)
        for address in addresses:
            overlay.nodes[address] = PastryNode(
                address,
                space,
                overlay.network,
                digit_bits=digit_bits,
                leaf_set_size=leaf_set_size,
            )
        overlay.rewire_from_global_knowledge()
        return overlay

    def rewire_from_global_knowledge(self) -> None:
        """Fill every node's leaf set and routing table to convergence."""
        ordered = self.addresses()
        count = len(ordered)
        for rank, address in enumerate(ordered):
            node = self.nodes[address]
            per_side = min(self.leaf_set_size, max(0, count - 1) // 2 + 1)
            node.smaller_leaves = [
                ordered[(rank - offset) % count]
                for offset in range(1, per_side + 1)
                if ordered[(rank - offset) % count] != address
            ]
            node.larger_leaves = [
                ordered[(rank + offset) % count]
                for offset in range(1, per_side + 1)
                if ordered[(rank + offset) % count] != address
            ]
            self._fill_routing_table(node, ordered)

    def _fill_routing_table(self, node: PastryNode, ordered: list[int]) -> None:
        for row in range(node.num_digits):
            for column in range(1 << node.digit_bits):
                if column == node.digit(node.address, row):
                    continue
                best: int | None = None
                for other in ordered:
                    if other == node.address:
                        continue
                    if node.shared_prefix_length(other) == row and node.digit(
                        other, row
                    ) == column:
                        if best is None or _circular_distance(
                            other, node.address, self.space.size
                        ) < _circular_distance(best, node.address, self.space.size):
                            best = other
                node.routing_table[row][column] = best

    # -- DolrNetwork contract ----------------------------------------------------

    def local_owner(self, key: int) -> int:
        self.space.check(key)
        if not self.nodes:
            raise RuntimeError("overlay is empty")
        return min(
            self.addresses(),
            key=lambda a: (_circular_distance(a, key, self.space.size), a),
        )

    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Iterative prefix routing.  Hops = route_step RPCs issued."""
        self.space.check(key)
        origin = self.any_address() if origin is None else origin
        current = origin
        path = [origin]
        hops = 0
        visited = {origin}
        budget = 4 * self.nodes[origin].num_digits + len(self.nodes) + 4
        for _ in range(budget):
            if current == origin:
                step = self.nodes[origin].route_step(key)
            else:
                step = self.channel.rpc(origin, current, "pastry.route_step", {"key": key})
                hops += 1
            if step["done"]:
                owner = next(
                    (n for n in step["owners"] if self.network.is_alive(n)), None
                )
                if owner is None:
                    raise PastryRoutingError(f"no live owner for key {key}")
                if owner != path[-1]:
                    path.append(owner)
                return LookupResult(key=key, owner=owner, hops=hops, path=tuple(path))
            advanced = False
            for candidate in step["candidates"]:
                if candidate in visited:
                    continue
                if self.network.is_alive(candidate):
                    current = candidate
                    visited.add(candidate)
                    path.append(candidate)
                    advanced = True
                    break
            if not advanced:
                raise PastryRoutingError(f"lookup for key {key} stuck at {current}")
        raise PastryRoutingError(f"lookup for key {key} exceeded hop budget")

    # -- membership -----------------------------------------------------------

    def join(self, address: int, bootstrap: int | None = None) -> PastryNode:
        """Add a node and rewire state from global knowledge.

        Pastry's incremental join (routing-table copying along the
        bootstrap route) converges to exactly this state; the experiments
        only need the converged overlay, so the shortcut is explicit
        rather than protocol-simulated (unlike Chord, whose full
        join/stabilize protocol is implemented).
        """
        self.space.check(address)
        if address in self.nodes:
            raise ValueError(f"address {address} already joined")
        node = PastryNode(
            address,
            self.space,
            self.network,
            digit_bits=self.digit_bits,
            leaf_set_size=self.leaf_set_size,
        )
        self.nodes[address] = node
        self.provision_node(node)
        self.rewire_from_global_knowledge()
        return node

    def leave(self, address: int) -> None:
        if address not in self.nodes:
            raise ValueError(f"unknown address {address}")
        self.network.unregister(address)
        del self.nodes[address]
        self.rewire_from_global_knowledge()
