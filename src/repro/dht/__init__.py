"""DHT substrate: a generalized DOLR model with Chord and Kademlia.

Section 2.1 of the paper assumes only a *generalized* DHT: an a-bit
identifier space, a deterministic mapping from objects to nodes, a
routing mechanism, surrogate routing for absent identifiers, and three
object operations (Insert / Delete / Read).  :mod:`repro.dht.dolr`
captures that contract; :mod:`repro.dht.chord`,
:mod:`repro.dht.kademlia` and :mod:`repro.dht.pastry` are three
complete, from-scratch realizations over the simulated network,
demonstrating that the keyword layer is DHT-agnostic, and
:mod:`repro.dht.hypercup` is the paper's §3.2 alternative — a native
physical hypercube overlay where the mapping g is the identity.
"""

from repro.dht.dolr import DolrNetwork, LookupResult, ObjectReference
from repro.dht.chord import ChordNetwork, ChordNode
from repro.dht.hypercup import HypercubeOverlay, HypercubeOverlayNode
from repro.dht.ids import IdSpace
from repro.dht.kademlia import KademliaNetwork, KademliaNode
from repro.dht.pastry import PastryNetwork, PastryNode

__all__ = [
    "ChordNetwork",
    "ChordNode",
    "DolrNetwork",
    "HypercubeOverlay",
    "HypercubeOverlayNode",
    "IdSpace",
    "KademliaNetwork",
    "KademliaNode",
    "LookupResult",
    "ObjectReference",
    "PastryNetwork",
    "PastryNode",
]
