"""Identifier-space arithmetic shared by the DHT implementations.

An ``IdSpace(bits)`` is the ring {0, ..., 2**bits - 1}.  Chord needs
clockwise distance and interval membership on the ring; Kademlia needs
the XOR metric.  Both also need a uniform way to hash arbitrary names
(object IDs, keywords, logical hypercube nodes) into the space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.hashing import stable_hash
from repro.util.rng import make_rng

__all__ = ["IdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """The identifier ring {0, ..., 2**bits - 1}."""

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 160:
            raise ValueError(f"bits must be in [1, 160], got {self.bits}")

    @property
    def size(self) -> int:
        return 1 << self.bits

    def contains(self, identifier: int) -> bool:
        return 0 <= identifier < self.size

    def check(self, identifier: int) -> int:
        if not self.contains(identifier):
            raise ValueError(f"identifier {identifier} outside {self.bits}-bit space")
        return identifier

    def hash_name(self, name: str, *, salt: str = "dht") -> int:
        """Uniformly hash a name into the space (the paper's mapping L)."""
        return stable_hash(name, salt=salt, bits=self.bits)

    def random_id(self, rng: int | random.Random | None = None) -> int:
        return make_rng(rng).randrange(self.size)

    # -- ring (Chord) geometry ----------------------------------------

    def clockwise_distance(self, src: int, dst: int) -> int:
        """Steps clockwise (increasing IDs, wrapping) from src to dst."""
        self.check(src)
        self.check(dst)
        return (dst - src) % self.size

    def in_open_interval(self, x: int, left: int, right: int) -> bool:
        """True iff ``x`` lies in the clockwise-open interval (left, right).

        When ``left == right`` the interval is the whole ring minus the
        endpoint, matching Chord's conventions for a 1-node ring.
        """
        self.check(x)
        if left == right:
            return x != left
        return self.clockwise_distance(left, x) < self.clockwise_distance(left, right) and x != left

    def in_half_open_interval(self, x: int, left: int, right: int) -> bool:
        """True iff ``x`` lies in the clockwise interval (left, right]."""
        if x == right:
            return True
        return self.in_open_interval(x, left, right)

    # -- XOR (Kademlia) geometry --------------------------------------

    def xor_distance(self, u: int, v: int) -> int:
        """Kademlia's symmetric distance metric."""
        self.check(u)
        self.check(v)
        return u ^ v

    def bucket_index(self, node: int, other: int) -> int:
        """The k-bucket at ``node`` that ``other`` falls into: the index
        of the highest differing bit.  Undefined for ``node == other``."""
        if node == other:
            raise ValueError("a node has no bucket for itself")
        return (self.xor_distance(node, other)).bit_length() - 1
