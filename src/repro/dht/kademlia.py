"""Kademlia: XOR-metric DHT with k-bucket routing tables.

A second realization of the paper's generalized DOLR, demonstrating
that the hypercube keyword layer is independent of the underlying DHT.
The owner of a key is the live node closest to it under the XOR metric
(Kademlia's natural surrogate-routing rule).  Lookups are iterative
``FIND_NODE`` rounds: the origin keeps a shortlist of the k closest
contacts seen so far and queries unvisited ones, closest first, until
the shortlist stops improving.
"""

from __future__ import annotations

import random

from repro.dht.dolr import DolrNetwork, DolrNode, LookupResult
from repro.dht.ids import IdSpace
from repro.net.errors import PeerUnreachableError
from repro.net.transport import Transport
from repro.sim.network import Message, SimulatedNetwork
from repro.util.rng import make_rng

__all__ = ["KademliaNetwork", "KademliaNode"]

DEFAULT_BUCKET_SIZE = 8


class KademliaNode(DolrNode):
    """One Kademlia peer: a routing table of per-prefix k-buckets."""

    def __init__(
        self,
        address: int,
        space: IdSpace,
        network: Transport,
        *,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
    ):
        super().__init__(address, space, network)
        self.bucket_size = bucket_size
        self.buckets: list[list[int]] = [[] for _ in range(space.bits)]

    # -- routing table ----------------------------------------------------

    def observe(self, contact: int) -> None:
        """Record a contact: move-to-front within its bucket, evicting the
        stalest entry when full (simplified least-recently-seen policy)."""
        if contact == self.address:
            return
        bucket = self.buckets[self.space.bucket_index(self.address, contact)]
        if contact in bucket:
            bucket.remove(contact)
        elif len(bucket) >= self.bucket_size:
            bucket.pop()
        bucket.insert(0, contact)

    def known_contacts(self) -> list[int]:
        return [contact for bucket in self.buckets for contact in bucket]

    def closest_contacts(self, key: int, count: int) -> list[int]:
        """Up to ``count`` known contacts (plus self) nearest ``key``."""
        pool = set(self.known_contacts())
        pool.add(self.address)
        return sorted(pool, key=lambda c: self.space.xor_distance(c, key))[:count]

    # -- message handling ---------------------------------------------------

    def _on_message(self, message: Message):
        if message.kind.startswith("kad."):
            return self._handle_kad(message)
        return super()._on_message(message)

    def _handle_kad(self, message: Message):
        if message.kind == "kad.find_node":
            self.observe(message.src)
            closest = self.closest_contacts(message.payload["key"], message.payload["count"])
            return {"contacts": closest}
        if message.kind == "kad.ping":
            self.observe(message.src)
            return {}
        raise LookupError(f"unknown kademlia message kind {message.kind!r}")


class KademliaNetwork(DolrNetwork):
    """A Kademlia overlay over the simulated network."""

    def __init__(
        self,
        space: IdSpace,
        network: Transport | None = None,
        *,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
    ):
        super().__init__(space, network if network is not None else SimulatedNetwork())
        self.bucket_size = bucket_size
        self.nodes: dict[int, KademliaNode] = {}

    @classmethod
    def build(
        cls,
        *,
        bits: int,
        num_nodes: int,
        seed: int | random.Random | None = 0,
        network: Transport | None = None,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
    ) -> "KademliaNetwork":
        """Construct an overlay with converged routing tables: each bucket
        holds the (up to k) members of its prefix range nearest the owner."""
        space = IdSpace(bits)
        if not 1 <= num_nodes <= space.size:
            raise ValueError(f"num_nodes must be in [1, {space.size}], got {num_nodes}")
        rng = make_rng(seed)
        addresses = rng.sample(range(space.size), num_nodes)
        overlay = cls(space, network, bucket_size=bucket_size)
        for address in addresses:
            overlay.nodes[address] = KademliaNode(
                address, space, overlay.network, bucket_size=bucket_size
            )
        overlay.rewire_from_global_knowledge()
        return overlay

    def rewire_from_global_knowledge(self) -> None:
        everyone = self.addresses()
        for address, node in self.nodes.items():
            node.buckets = [[] for _ in range(self.space.bits)]
            by_bucket: dict[int, list[int]] = {}
            for other in everyone:
                if other == address:
                    continue
                by_bucket.setdefault(self.space.bucket_index(address, other), []).append(other)
            for index, members in by_bucket.items():
                members.sort(key=lambda c: self.space.xor_distance(c, address))
                node.buckets[index] = members[: self.bucket_size]

    # -- DolrNetwork contract -----------------------------------------------

    def local_owner(self, key: int) -> int:
        self.space.check(key)
        if not self.nodes:
            raise RuntimeError("overlay is empty")
        return min(self.addresses(), key=lambda a: (self.space.xor_distance(a, key), a))

    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Iterative node lookup.

        Returns the closest *live* node to ``key``.  Hops = number of
        ``FIND_NODE`` RPCs issued.
        """
        self.space.check(key)
        origin = self.any_address() if origin is None else origin
        origin_node = self.nodes[origin]
        shortlist = origin_node.closest_contacts(key, self.bucket_size)
        queried: set[int] = {origin}
        path = [origin]
        hops = 0

        def distance(address: int) -> int:
            return self.space.xor_distance(address, key)

        improved = True
        while improved:
            improved = False
            for contact in sorted(shortlist, key=distance):
                if contact in queried:
                    continue
                queried.add(contact)
                if not self.network.is_alive(contact):
                    continue
                hops += 1
                path.append(contact)
                try:
                    reply = self.channel.rpc(
                        origin, contact, "kad.find_node", {"key": key, "count": self.bucket_size}
                    )
                except PeerUnreachableError:
                    continue
                origin_node.observe(contact)
                before = min(map(distance, shortlist))
                merged = set(shortlist) | set(reply["contacts"])
                shortlist = sorted(merged, key=distance)[: self.bucket_size]
                if min(map(distance, shortlist)) < before:
                    improved = True
                break
            else:
                break

        live = [a for a in shortlist if self.network.is_alive(a)]
        if not live:
            live = [a for a in self.addresses() if self.network.is_alive(a)]
            if not live:
                raise RuntimeError("no live nodes in overlay")
        owner = min(live, key=lambda a: (distance(a), a))
        if owner != path[-1]:
            path.append(owner)
        return LookupResult(key=key, owner=owner, hops=hops, path=tuple(path))

    # -- dynamic membership ---------------------------------------------------

    def join(self, address: int, bootstrap: int | None = None) -> KademliaNode:
        """Add a node: seed its table with the bootstrap contact, then
        self-lookup to populate buckets along the path."""
        self.space.check(address)
        if address in self.nodes:
            raise ValueError(f"address {address} already joined")
        node = KademliaNode(address, self.space, self.network, bucket_size=self.bucket_size)
        self.nodes[address] = node
        self.provision_node(node)
        if bootstrap is None:
            return node
        node.observe(bootstrap)
        route = self.lookup(address, origin=address)
        for hop in route.path:
            node.observe(hop)
            if hop != address:
                self.nodes[hop].observe(address)
        return node

    def leave(self, address: int) -> None:
        """Remove a node abruptly."""
        if address not in self.nodes:
            raise ValueError(f"unknown address {address}")
        self.network.unregister(address)
        del self.nodes[address]
