"""The generalized DOLR (distributed object location and routing) model.

Section 2.1 of the paper abstracts the DHT layer into:

* a mapping ``L`` that deterministically and uniformly maps each object
  (by its ID) to exactly one node of the a-bit identifier space,
* a routing mechanism providing a path between any two nodes,
* surrogate routing, so that a message to an absent identifier reaches
  the live node standing in for it, and
* three operations — ``Insert``, ``Delete``, ``Read`` — on object
  *references* (σ, u), where u is a node holding a replica of σ.

``DolrNetwork`` is that contract.  ``DolrNode`` is the per-node half:
local reference table ``Refs_v`` plus a pluggable *application* slot the
keyword-search layer (and the baselines) install their per-node state
and message handlers into.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any, Protocol

from repro.dht.ids import IdSpace
from repro.net.transport import Transport
from repro.sim.network import Message
from repro.sim.resilience import BreakerPolicy, ResilientChannel, RetryPolicy

__all__ = [
    "DolrNetwork",
    "DolrNode",
    "LookupResult",
    "NodeApplication",
    "ObjectReference",
]


@dataclass(frozen=True)
class ObjectReference:
    """A reference (σ, u): object ``object_id`` has a replica at node
    ``holder``.  The paper's ``(σ, u)`` pairs."""

    object_id: str
    holder: int


@dataclass(frozen=True)
class LookupResult:
    """Outcome of routing a key to its owner."""

    key: int
    owner: int
    hops: int
    path: tuple[int, ...]


class NodeApplication(Protocol):
    """Application state installed on a DHT node (e.g. a hypercube index
    shard).  ``handle`` receives every message whose kind starts with the
    application's prefix."""

    prefix: str

    def handle(self, node: "DolrNode", message: Message) -> Any: ...


class DolrNode:
    """A physical node: address, reference table, installed applications.

    Message kinds are namespaced by a dotted prefix; ``dolr.*`` kinds are
    handled here, anything else is dispatched to the application whose
    prefix matches the first dotted component.
    """

    def __init__(self, address: int, space: IdSpace, network: Transport):
        space.check(address)
        self.address = address
        self.space = space
        self.network = network
        self.refs: dict[str, set[int]] = {}
        self.store = None  # durable backend, attached via attach_store()
        self._applications: dict[str, NodeApplication] = {}
        network.register(address, self._on_message)

    def attach_store(self, store) -> None:
        """Bind a :class:`~repro.store.backend.StoreBackend`: boot the
        reference table from recovered state and record every change."""
        self.store = store
        recovered = store.recover()
        if recovered.refs:
            self.refs = {
                object_id: set(holders) for object_id, holders in recovered.refs.items()
            }
        store.bind(refs=lambda: self.refs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(address={self.address})"

    # -- applications ---------------------------------------------------

    def install(self, application: NodeApplication) -> None:
        """Install an application; replaces any with the same prefix."""
        self._applications[application.prefix] = application

    def application(self, prefix: str) -> NodeApplication:
        return self._applications[prefix]

    def has_application(self, prefix: str) -> bool:
        return prefix in self._applications

    # -- message dispatch -------------------------------------------------

    def _on_message(self, message: Message) -> Any:
        prefix, _, _ = message.kind.partition(".")
        if prefix == "dolr":
            return self._handle_dolr(message)
        application = self._applications.get(prefix)
        if application is None:
            raise LookupError(
                f"node {self.address} has no application for message kind {message.kind!r}"
            )
        return application.handle(self, message)

    def _handle_dolr(self, message: Message) -> Any:
        payload = message.payload
        if message.kind == "dolr.insert_ref":
            holders = self.refs.setdefault(payload["object_id"], set())
            existed = bool(holders)
            if payload["holder"] not in holders:
                holders.add(payload["holder"])
                if self.store is not None:
                    self.store.record_ref_put(payload["object_id"], payload["holder"])
                    self.store.maybe_compact()
            return {"already_present": existed}
        if message.kind == "dolr.delete_ref":
            holders = self.refs.get(payload["object_id"], set())
            removed = payload["holder"] in holders
            holders.discard(payload["holder"])
            remaining = bool(holders)
            if not holders:
                self.refs.pop(payload["object_id"], None)
            if removed and self.store is not None:
                self.store.record_ref_del(payload["object_id"], payload["holder"])
                self.store.maybe_compact()
            return {"copies_remain": remaining}
        if message.kind == "dolr.read_ref":
            return {"holders": sorted(self.refs.get(payload["object_id"], set()))}
        raise LookupError(f"unknown dolr message kind {message.kind!r}")


class DolrNetwork(abc.ABC):
    """The generalized DHT contract the keyword layer is written against."""

    def __init__(self, space: IdSpace, network: Transport):
        self.space = space
        self.network = network
        # Every protocol RPC goes through this channel.  The default is
        # a pass-through (one attempt, no breaker), so a freshly built
        # network behaves — and accounts messages — exactly like calling
        # the network directly; configure_resilience() upgrades it.
        self.channel = ResilientChannel(network)
        self.nodes: dict[int, DolrNode] = {}
        self._application_factories: list[Any] = []

    def configure_resilience(
        self,
        policy: RetryPolicy | None,
        *,
        breaker: BreakerPolicy | None = None,
        rng: Any = 0,
    ) -> ResilientChannel:
        """Install a retry/deadline/breaker policy on all protocol RPCs
        (routing steps, object operations, index maintenance).  Returns
        the new channel so callers can share it with search layers."""
        self.channel = ResilientChannel(self.network, policy, breaker=breaker, rng=rng)
        return self.channel

    # -- abstract routing -------------------------------------------------

    @abc.abstractmethod
    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Route ``key`` from ``origin`` to its owning node, paying one
        RPC per hop.  Surrogate routing is implied: every key has a live
        owner as long as any node is alive."""

    @abc.abstractmethod
    def local_owner(self, key: int) -> int:
        """The owner of ``key`` computed from global knowledge (no
        messages).  Used by experiments that only need placement, and by
        tests as the routing oracle."""

    # -- membership ---------------------------------------------------

    def addresses(self) -> list[int]:
        """All node addresses, ascending."""
        return sorted(self.nodes)

    def live_addresses(self) -> list[int]:
        return [a for a in self.addresses() if self.network.is_alive(a)]

    def node(self, address: int) -> DolrNode:
        return self.nodes[address]

    def any_address(self) -> int:
        if not self.nodes:
            raise RuntimeError("network has no nodes")
        return self.addresses()[0]

    # -- the mapping L and the three object operations ----------------

    def object_key(self, object_id: str) -> int:
        """The paper's mapping L: object ID -> identifier space."""
        return self.space.hash_name(object_id, salt="dolr.L")

    def insert(self, object_id: str, holder: int, origin: int | None = None) -> bool:
        """Publish a replica: place the reference (σ, holder) at L(σ).

        Returns True if this was the *first* copy of the object — the
        signal the keyword layer uses to decide whether to index it.
        """
        origin = holder if origin is None else origin
        result, _ = self.route_rpc(
            self.object_key(object_id),
            "dolr.insert_ref",
            {"object_id": object_id, "holder": holder},
            origin=origin,
        )
        return not result["already_present"]

    def delete(self, object_id: str, holder: int, origin: int | None = None) -> bool:
        """Remove a replica's reference.  Returns True if it was the last
        copy (so the keyword index entry should be removed too)."""
        origin = holder if origin is None else origin
        result, _ = self.route_rpc(
            self.object_key(object_id),
            "dolr.delete_ref",
            {"object_id": object_id, "holder": holder},
            origin=origin,
        )
        return not result["copies_remain"]

    def read(self, object_id: str, origin: int | None = None) -> list[int]:
        """Return the replica holders of an object (possibly empty)."""
        origin = self.any_address() if origin is None else origin
        result, _ = self.route_rpc(
            self.object_key(object_id),
            "dolr.read_ref",
            {"object_id": object_id},
            origin=origin,
        )
        return result["holders"]

    # -- generic routed / direct RPC for upper layers ------------------

    def route_rpc(
        self,
        key: int,
        kind: str,
        payload: dict[str, Any],
        origin: int | None = None,
    ) -> tuple[Any, LookupResult]:
        """Route ``key`` to its owner, then deliver one RPC there."""
        origin = self.any_address() if origin is None else origin
        route = self.lookup(key, origin=origin)
        result = self.channel.rpc(origin, route.owner, kind, payload)
        return result, route

    def rpc_at(self, src: int, dst: int, kind: str, payload: dict[str, Any]) -> Any:
        """Direct contact with a known node (a cached neighbour): one
        request/reply, no routing (retried per the channel's policy)."""
        return self.channel.rpc(src, dst, kind, payload)

    def install_everywhere(self, factory: Any) -> None:
        """Install ``factory(node)`` as an application on every node,
        and remember the factory so nodes joining later are provisioned
        the same way."""
        self._application_factories.append(factory)
        for node in self.nodes.values():
            node.install(factory(node))

    def ensure_application(self, factory: Any, prefix: str) -> None:
        """Like :meth:`install_everywhere`, but keeps an existing
        application with the same prefix (so coexisting indexes share
        one shard instead of clobbering each other)."""
        self._application_factories.append(
            lambda node: node.application(prefix)
            if node.has_application(prefix)
            else factory(node)
        )
        for node in self.nodes.values():
            if not node.has_application(prefix):
                node.install(factory(node))

    def provision_node(self, node: DolrNode) -> None:
        """Install every registered application on a (new) node."""
        for factory in self._application_factories:
            application = factory(node)
            if not node.has_application(application.prefix):
                node.install(application)

    # -- convenience for experiments -----------------------------------

    def owners_of(self, keys: Iterable[int]) -> dict[int, int]:
        """Placement map key -> owner using global knowledge."""
        return {key: self.local_owner(key) for key in keys}
