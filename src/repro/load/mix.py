"""Query mixes: which keyword set each load-generated query asks for.

A mix is a stateful ``next_query()`` supplier.  :class:`FixedQueryMix`
cycles a given list — for smoke tests that must know the right answers.
:class:`ZipfQueryMix` samples the head-heavy stream of
:class:`~repro.workload.queries.QueryLogGenerator`, so a load run
exercises the same popularity skew the paper's workload analysis
models (a few hot queries hammering the same hypercube nodes — the
hotspot shape admission control and caching are judged against).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence, runtime_checkable

from repro.workload.corpus import SyntheticCorpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["FixedQueryMix", "QueryMix", "ZipfQueryMix"]


@runtime_checkable
class QueryMix(Protocol):
    """A stream of keyword sets to search for."""

    def next_query(self) -> frozenset[str]: ...


class FixedQueryMix:
    """Cycle a fixed sequence of keyword sets, in order."""

    def __init__(self, queries: Sequence[frozenset[str]]):
        if not queries:
            raise ValueError("need at least one query")
        self.queries = [frozenset(query) for query in queries]
        self._position = 0

    def next_query(self) -> frozenset[str]:
        query = self.queries[self._position % len(self.queries)]
        self._position += 1
        return query


class ZipfQueryMix:
    """The Zipf-skewed query stream of :mod:`repro.workload`.

    Wraps a :class:`~repro.workload.queries.QueryLogGenerator`; each
    ``next_query()`` is one Zipf draw from its ranked pool, so the
    popular head recurs with the calibrated share.  Deterministic given
    the generator's seed.
    """

    def __init__(self, generator: QueryLogGenerator):
        self.generator = generator

    @classmethod
    def from_corpus(
        cls,
        corpus: SyntheticCorpus,
        *,
        pool_size: int = 200,
        top_queries: int = 10,
        head_share: float = 0.6,
        seed: int | random.Random = 0,
    ) -> "ZipfQueryMix":
        """Build pool and mix in one step (the common load-run shape)."""
        return cls(
            QueryLogGenerator(
                corpus,
                pool_size=pool_size,
                top_queries=top_queries,
                head_share=head_share,
                seed=seed,
            )
        )

    def next_query(self) -> frozenset[str]:
        return self.generator.sample_query_set()
