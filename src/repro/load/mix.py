"""Query mixes: which keyword set each load-generated query asks for.

A mix is a stateful ``next_query()`` supplier.  :class:`FixedQueryMix`
cycles a given list — for smoke tests that must know the right answers.
:class:`ZipfQueryMix` samples the head-heavy stream of
:class:`~repro.workload.queries.QueryLogGenerator`, so a load run
exercises the same popularity skew the paper's workload analysis
models (a few hot queries hammering the same hypercube nodes — the
hotspot shape admission control and caching are judged against).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence, runtime_checkable

from repro.workload.corpus import SyntheticCorpus
from repro.workload.queries import QueryLogGenerator

__all__ = ["FixedQueryMix", "HarvestPrefixMix", "QueryMix", "ZipfQueryMix"]


@runtime_checkable
class QueryMix(Protocol):
    """A stream of keyword sets to search for."""

    def next_query(self) -> frozenset[str]: ...


class FixedQueryMix:
    """Cycle a fixed sequence of keyword sets, in order."""

    def __init__(self, queries: Sequence[frozenset[str]]):
        if not queries:
            raise ValueError("need at least one query")
        self.queries = [frozenset(query) for query in queries]
        self._position = 0

    def next_query(self) -> frozenset[str]:
        query = self.queries[self._position % len(self.queries)]
        self._position += 1
        return query


class ZipfQueryMix:
    """The Zipf-skewed query stream of :mod:`repro.workload`.

    Wraps a :class:`~repro.workload.queries.QueryLogGenerator`; each
    ``next_query()`` is one Zipf draw from its ranked pool, so the
    popular head recurs with the calibrated share.  Deterministic given
    the generator's seed.
    """

    def __init__(self, generator: QueryLogGenerator):
        self.generator = generator

    @classmethod
    def from_corpus(
        cls,
        corpus: SyntheticCorpus,
        *,
        pool_size: int = 200,
        top_queries: int = 10,
        head_share: float = 0.6,
        seed: int | random.Random = 0,
    ) -> "ZipfQueryMix":
        """Build pool and mix in one step (the common load-run shape)."""
        return cls(
            QueryLogGenerator(
                corpus,
                pool_size=pool_size,
                top_queries=top_queries,
                head_share=head_share,
                seed=seed,
            )
        )

    def next_query(self) -> frozenset[str]:
        return self.generator.sample_query_set()


class HarvestPrefixMix:
    """Harvest-style prefix stream over a skewed, *growing* vocabulary.

    Models the BitTorrent-DHT indexing workload: a crawler discovers
    keywords incrementally (the visible vocabulary grows as objects are
    published) and issues prefix probes against what it has seen — hot
    words get probed often (Zipf rank-skew) and with longer, more
    specific prefixes, while tail words surface through short exploratory
    prefixes.  ``next_prefix()`` draws a vocabulary word by Zipf rank
    from the *currently discovered* portion and truncates it to a
    sampled length between ``min_length`` and the word's full length.

    ``next_query()`` wraps each prefix in a one-element frozenset, so the
    mix plugs into the load generator's ``QueryMix`` slot unchanged —
    drivers running in prefix mode (``SearchOptions(prefix=True)``)
    unwrap the single element.
    """

    def __init__(
        self,
        vocabulary: Sequence[str],
        *,
        discovered: int | None = None,
        min_length: int = 1,
        zipf_exponent: float = 1.0,
        seed: int | random.Random = 0,
    ):
        if not vocabulary:
            raise ValueError("need a non-empty vocabulary")
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self.vocabulary = list(vocabulary)
        self.min_length = min_length
        self.rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        self._discovered = len(self.vocabulary) if discovered is None else discovered
        self._discovered = max(1, min(self._discovered, len(self.vocabulary)))
        # Zipf rank weights over the full vocabulary, computed once;
        # draws renormalize over the discovered head.
        self._weights = [1.0 / (rank**zipf_exponent) for rank in range(1, len(self.vocabulary) + 1)]

    @classmethod
    def from_corpus(
        cls,
        corpus: SyntheticCorpus,
        *,
        discovered: int | None = None,
        min_length: int = 1,
        seed: int | random.Random = 0,
    ) -> "HarvestPrefixMix":
        """Probe the corpus's used vocabulary, hottest keyword first —
        the order a harvester actually discovers words in (ties broken
        lexicographically for determinism)."""
        frequencies = corpus.keyword_frequencies()
        ranked = sorted(frequencies, key=lambda word: (-frequencies[word], word))
        return cls(ranked, discovered=discovered, min_length=min_length, seed=seed)

    @property
    def discovered(self) -> int:
        """How much of the vocabulary the harvester has seen so far."""
        return self._discovered

    def discover(self, count: int = 1) -> int:
        """Grow the visible vocabulary by ``count`` words (harvest
        progress); returns the new discovered size."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._discovered = min(self._discovered + count, len(self.vocabulary))
        return self._discovered

    def next_prefix(self) -> str:
        word = self.rng.choices(
            self.vocabulary[: self._discovered],
            weights=self._weights[: self._discovered],
        )[0]
        if len(word) <= self.min_length:
            return word
        length = self.rng.randint(self.min_length, len(word))
        return word[:length]

    def next_query(self) -> frozenset[str]:
        return frozenset({self.next_prefix()})
