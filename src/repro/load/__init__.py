"""Sustained-load generation against any :class:`~repro.client.Client`.

The paper's scalability story (Section 4) is argued in messages per
query; this package supplies the wall-clock half: drive a deployment at
a controlled offered load and report what happened to latency and
goodput.  Two disciplines, per the classic distinction:

* **Closed loop** (:class:`~repro.load.generator.ClosedLoopLoad`) —
  N workers issue back-to-back queries; offered load self-adjusts to
  capacity.  Measures sustainable throughput.
* **Open loop** (:class:`~repro.load.generator.OpenLoopLoad`) —
  queries arrive on an external clock
  (:mod:`~repro.load.arrival`: constant-rate or Poisson) regardless of
  completion; latency is measured from the *intended* arrival instant,
  so queueing delay is charged to the server, not silently absorbed by
  a stalled generator (no coordinated omission).  Measures behaviour
  past the saturation knee — the regime admission control exists for.

Query streams come from :mod:`~repro.load.mix` (fixed cycles, or the
Zipf-skewed mix of :mod:`repro.workload`);
:mod:`~repro.load.multiproc` fans either loop out across processes so
one GIL does not cap the offered load.  Everything is deterministic
given its seeds, except of course the wall-clock measurements.
"""

from repro.load.arrival import ConstantArrivals, PoissonArrivals
from repro.load.generator import ClosedLoopLoad, LoadReport, OpenLoopLoad
from repro.load.mix import FixedQueryMix, ZipfQueryMix
from repro.load.multiproc import MultiprocessLoad, WorkerSpec

__all__ = [
    "ClosedLoopLoad",
    "ConstantArrivals",
    "FixedQueryMix",
    "LoadReport",
    "MultiprocessLoad",
    "OpenLoopLoad",
    "PoissonArrivals",
    "WorkerSpec",
    "ZipfQueryMix",
]
