"""Arrival processes: when each open-loop query is *supposed* to start.

An arrival process is an iterator of monotonically non-decreasing
offsets in seconds from the start of the run.  The open-loop driver
dispatches one query per offset whether or not earlier queries have
finished — that independence is what makes offered load a controlled
variable.  Both processes are deterministic given their parameters, so
two runs of the same spec offer the same instants (the responses, of
course, depend on the server).
"""

from __future__ import annotations

import random
from typing import Iterator, Protocol, runtime_checkable

__all__ = ["ArrivalProcess", "ConstantArrivals", "PoissonArrivals"]


@runtime_checkable
class ArrivalProcess(Protocol):
    """A stream of intended start offsets (seconds, non-decreasing)."""

    rate: float

    def offsets(self) -> Iterator[float]: ...


class ConstantArrivals:
    """Evenly spaced arrivals: query i starts at ``i / rate`` seconds.

    The most legible offered-load dial — "exactly R per second" — and
    the harshest: no lull ever lets a backlog drain.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def offsets(self) -> Iterator[float]:
        interval = 1.0 / self.rate
        index = 0
        while True:
            yield index * interval
            index += 1


class PoissonArrivals:
    """Memoryless arrivals: exponential gaps with mean ``1 / rate``.

    The classic open-system model — bursts and lulls around the same
    average rate, which is what exposes queueing behaviour a constant
    stream can hide.  Seeded, so a given (rate, seed) always produces
    the same instants.
    """

    def __init__(self, rate: float, *, seed: int | random.Random = 0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.seed = seed

    def offsets(self) -> Iterator[float]:
        rng = self.seed if isinstance(self.seed, random.Random) else random.Random(self.seed)
        now = 0.0
        while True:
            now += rng.expovariate(self.rate)
            yield now
