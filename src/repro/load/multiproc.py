"""Fan the load loops out across processes.

A single Python process tops out well below a real deployment's
capacity — the GIL serializes frame encode/decode, so one generator
process measures itself, not the cluster.  :class:`MultiprocessLoad`
runs one :class:`~repro.load.generator.ClosedLoopLoad` or
:class:`~repro.load.generator.OpenLoopLoad` per **spawned** process
(spawn, not fork: an :class:`~repro.net.aio.AsyncioTransport`'s loop
thread and socket pool must never be inherited across ``fork``), each
with its own :class:`~repro.client.DaemonFleetClient` — its own socket
pool, dialing the shared cluster through the ``peers`` address book.
This works against any deployment that serves its addresses over TCP:
a :class:`~repro.net.cluster.LocalCluster` (pass its ``endpoints``) or
a real daemon fleet.

Each worker process rebuilds its query mix from the
:class:`WorkerSpec`'s seeds (specs must be picklable — everything a
worker needs travels by value), runs its loop for the shared duration,
and ships its :class:`~repro.load.generator.LoadReport` back; the
reports merge into one cluster-wide view.  Per-process seeds should
differ (see :meth:`WorkerSpec.fleet`) so workers do not issue the same
Zipf stream in lockstep.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace

from repro.core.config import SearchOptions, ServiceConfig
from repro.load.arrival import ConstantArrivals, PoissonArrivals
from repro.load.generator import ClosedLoopLoad, LoadReport, OpenLoopLoad
from repro.load.mix import FixedQueryMix, QueryMix, ZipfQueryMix
from repro.workload.corpus import SyntheticCorpus

__all__ = ["MultiprocessLoad", "WorkerSpec"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one generator process needs, by value.

    ``mode`` is ``"closed"`` or ``"open"`` (open requires ``rate``, the
    per-process offered rate in queries/second).  ``queries`` pins a
    fixed cycling mix; when None the worker builds the Zipf mix from a
    corpus regenerated with ``corpus_seed`` (defaulting to the config
    seed, i.e. the same corpus a smoke script published into the
    cluster).  ``seed`` drives the worker's own sampling streams.
    """

    config: ServiceConfig
    peers: dict[int, tuple[str, int]]
    mode: str = "closed"
    duration_s: float = 10.0
    threads: int = 4
    seed: int = 0
    rate: float | None = None
    poisson: bool = False
    options: SearchOptions | None = None
    max_lag_s: float | None = None
    queries: tuple[frozenset[str], ...] | None = None
    corpus_objects: int = 300
    corpus_seed: int | None = None
    pool_size: int = 100

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.mode == "open" and (self.rate is None or self.rate <= 0):
            raise ValueError("open-loop specs need a positive rate")

    def fleet(self, processes: int) -> list["WorkerSpec"]:
        """``processes`` copies of this spec with distinct seeds (and,
        for open loops, the rate split evenly so the *total* offered
        rate is this spec's ``rate``)."""
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        rate = None if self.rate is None else self.rate / processes
        return [
            replace(self, seed=self.seed * 10_007 + index + 1, rate=rate)
            for index in range(processes)
        ]


def _build_mix(spec: WorkerSpec) -> QueryMix:
    if spec.queries is not None:
        # Rotate the cycle per worker so the fleet does not hit the
        # same query at the same instant in lockstep.
        queries = list(spec.queries)
        shift = spec.seed % len(queries)
        return FixedQueryMix(queries[shift:] + queries[:shift])
    corpus_seed = spec.config.seed if spec.corpus_seed is None else spec.corpus_seed
    corpus = SyntheticCorpus.generate(num_objects=spec.corpus_objects, seed=corpus_seed)
    return ZipfQueryMix.from_corpus(corpus, pool_size=spec.pool_size, seed=spec.seed)


def _worker_main(spec: WorkerSpec) -> LoadReport:
    """One generator process: build client + mix, run the loop."""
    from repro.client import DaemonFleetClient

    mix = _build_mix(spec)
    with DaemonFleetClient(spec.config, spec.peers) as client:
        if spec.mode == "closed":
            loop = ClosedLoopLoad(
                client, mix, workers=spec.threads, options=spec.options
            )
        else:
            assert spec.rate is not None
            arrivals = (
                PoissonArrivals(spec.rate, seed=spec.seed)
                if spec.poisson
                else ConstantArrivals(spec.rate)
            )
            loop = OpenLoopLoad(
                client,
                mix,
                arrivals,
                workers=spec.threads,
                options=spec.options,
                max_lag_s=spec.max_lag_s,
            )
        return loop.run(spec.duration_s)


class MultiprocessLoad:
    """Run one worker process per spec and merge their reports."""

    def __init__(self, specs: list[WorkerSpec]):
        if not specs:
            raise ValueError("need at least one worker spec")
        self.specs = specs

    def run(self) -> LoadReport:
        if len(self.specs) == 1:
            # No point paying a process spawn for one worker — and this
            # path keeps single-process tests debuggable.
            return _worker_main(self.specs[0])
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=len(self.specs)) as pool:
            reports = pool.map(_worker_main, self.specs)
        return LoadReport.merge(reports)
