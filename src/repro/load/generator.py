"""The load loops: closed (back-to-back) and open (externally clocked).

Both drive any :class:`~repro.client.Client` — a simulated service, a
:class:`~repro.net.cluster.LocalCluster`, or a daemon fleet — with a
:class:`~repro.load.mix.QueryMix`, and produce a :class:`LoadReport`.

The open loop is deliberately coordinated-omission-free: each query's
latency is measured from its *intended* arrival instant (drawn from the
:class:`~repro.load.arrival.ArrivalProcess`), not from when a worker
got around to sending it.  When the server falls behind, unclaimed
arrivals age in place and the delay is charged to their latency — the
only honest picture of an overloaded system.  ``max_lag_s`` bounds how
stale an arrival may get before the generator abandons it (reported in
:attr:`LoadReport.abandoned`), which keeps past-the-knee runs from
taking unbounded wall time; an abandoned arrival is a query whose user
gave up, and it is excluded from the latency percentiles but *not*
from the offered count.

Outcome taxonomy: ``ok`` (a result came back), ``busy`` (the operation
ultimately failed with :class:`~repro.net.errors.NodeBusyError` — the
cluster shed it), ``errors`` (anything else).  ``goodput`` is
``ok / elapsed``; latency percentiles are over successful queries (a
fast shed must not flatter the tail).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.load.arrival import ArrivalProcess
from repro.load.mix import QueryMix
from repro.net.errors import NodeBusyError

if TYPE_CHECKING:
    from repro.client import Client
    from repro.core.config import SearchOptions

__all__ = ["ClosedLoopLoad", "LoadReport", "OpenLoopLoad"]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What one load run (or a merge of several) measured."""

    mode: str
    elapsed_s: float
    offered: int
    ok: int
    busy: int
    errors: int
    abandoned: int
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.ok + self.busy + self.errors

    @property
    def offered_rate(self) -> float:
        """Queries offered per second."""
        return self.offered / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def goodput(self) -> float:
        """Successful queries per second."""
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile_ms(self, fraction: float) -> float:
        return _percentile(sorted(self.latencies_ms), fraction)

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        return self.percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(0.99)

    @classmethod
    def merge(cls, reports: Iterable["LoadReport"]) -> "LoadReport":
        """Combine concurrent runs (e.g. one per worker process): counts
        add, latencies pool, elapsed is the longest run's."""
        reports = list(reports)
        if not reports:
            raise ValueError("nothing to merge")
        merged = cls(
            mode=reports[0].mode,
            elapsed_s=max(report.elapsed_s for report in reports),
            offered=sum(report.offered for report in reports),
            ok=sum(report.ok for report in reports),
            busy=sum(report.busy for report in reports),
            errors=sum(report.errors for report in reports),
            abandoned=sum(report.abandoned for report in reports),
        )
        for report in reports:
            merged.latencies_ms.extend(report.latencies_ms)
        return merged

    def to_row(self) -> dict:
        """The benchmark-table shape (see ``benchmarks/bench_load.py``)."""
        return {
            "mode": self.mode,
            "elapsed_s": round(self.elapsed_s, 3),
            "offered": self.offered,
            "offered_rate_qps": round(self.offered_rate, 1),
            "ok": self.ok,
            "busy": self.busy,
            "errors": self.errors,
            "abandoned": self.abandoned,
            "goodput_qps": round(self.goodput, 1),
            "p50_ms": round(self.p50_ms, 2),
            "p95_ms": round(self.p95_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
        }


class _Tally:
    """Thread-shared outcome counters for one run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ok = 0
        self.busy = 0
        self.errors = 0
        self.abandoned = 0
        self.latencies_ms: list[float] = []

    def record(self, outcome: str, latency_ms: float | None = None) -> None:
        with self.lock:
            setattr(self, outcome, getattr(self, outcome) + 1)
            if latency_ms is not None:
                self.latencies_ms.append(latency_ms)


def _classify_and_record(tally: _Tally, error: BaseException | None, latency_ms: float) -> None:
    if error is None:
        tally.record("ok", latency_ms)
    elif isinstance(error, NodeBusyError):
        tally.record("busy")
    else:
        tally.record("errors")


class ClosedLoopLoad:
    """N workers issuing back-to-back queries for a fixed duration.

    Offered load self-adjusts to what the deployment sustains with
    ``workers`` outstanding queries — the measured ``goodput`` *is* the
    closed-loop capacity at that concurrency, the natural first probe
    for the saturation knee.
    """

    def __init__(
        self,
        client: "Client",
        mix: QueryMix,
        *,
        workers: int = 4,
        options: "SearchOptions | None" = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.client = client
        self.mix = mix
        self.workers = workers
        self.options = options

    def run(self, duration_s: float) -> LoadReport:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        tally = _Tally()
        mix_lock = threading.Lock()
        barrier = threading.Barrier(self.workers + 1)
        stop_at: list[float] = [0.0]

        def worker() -> None:
            barrier.wait()
            while True:
                started = time.perf_counter()
                if started >= stop_at[0]:
                    return
                with mix_lock:
                    query = self.mix.next_query()
                error: BaseException | None = None
                try:
                    self.client.search(query, self.options)
                except Exception as caught:  # noqa: BLE001 - tallied per query
                    error = caught
                _classify_and_record(
                    tally, error, (time.perf_counter() - started) * 1000.0
                )

        threads = [
            threading.Thread(target=worker, name=f"load-closed-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        stop_at[0] = time.perf_counter() + duration_s
        started_at = time.perf_counter()
        barrier.wait()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started_at
        return LoadReport(
            mode="closed",
            elapsed_s=elapsed,
            offered=tally.ok + tally.busy + tally.errors,
            ok=tally.ok,
            busy=tally.busy,
            errors=tally.errors,
            abandoned=0,
            latencies_ms=tally.latencies_ms,
        )


class OpenLoopLoad:
    """Queries arrive on the :class:`~repro.load.arrival.ArrivalProcess`'s
    clock, independent of completions.

    The run's schedule (intended instant + query, for every arrival
    within ``duration_s``) is drawn up front, so the offered load is
    exactly the arrival process regardless of server behaviour.
    Workers claim arrivals oldest-first; latency runs from the intended
    instant (see the module docstring on coordinated omission).
    """

    def __init__(
        self,
        client: "Client",
        mix: QueryMix,
        arrivals: ArrivalProcess,
        *,
        workers: int = 8,
        options: "SearchOptions | None" = None,
        max_lag_s: float | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_lag_s is not None and max_lag_s <= 0:
            raise ValueError(f"max_lag_s must be positive, got {max_lag_s}")
        self.client = client
        self.mix = mix
        self.arrivals = arrivals
        self.workers = workers
        self.options = options
        self.max_lag_s = max_lag_s

    def run(self, duration_s: float) -> LoadReport:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        schedule: list[tuple[float, frozenset[str]]] = []
        for offset in self.arrivals.offsets():
            if offset >= duration_s:
                break
            schedule.append((offset, self.mix.next_query()))
        tally = _Tally()
        cursor = [0]
        cursor_lock = threading.Lock()
        barrier = threading.Barrier(self.workers + 1)
        epoch: list[float] = [0.0]

        def worker() -> None:
            barrier.wait()
            while True:
                with cursor_lock:
                    position = cursor[0]
                    if position >= len(schedule):
                        return
                    cursor[0] = position + 1
                offset, query = schedule[position]
                intended = epoch[0] + offset
                now = time.perf_counter()
                if now < intended:
                    time.sleep(intended - now)
                elif self.max_lag_s is not None and now - intended > self.max_lag_s:
                    tally.record("abandoned")
                    continue
                error: BaseException | None = None
                try:
                    self.client.search(query, self.options)
                except Exception as caught:  # noqa: BLE001 - tallied per query
                    error = caught
                _classify_and_record(
                    tally, error, (time.perf_counter() - intended) * 1000.0
                )

        threads = [
            threading.Thread(target=worker, name=f"load-open-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        epoch[0] = time.perf_counter()
        barrier.wait()
        for thread in threads:
            thread.join()
        elapsed = max(time.perf_counter() - epoch[0], duration_s)
        return LoadReport(
            mode="open",
            elapsed_s=elapsed,
            offered=len(schedule),
            ok=tally.ok,
            busy=tally.busy,
            errors=tally.errors,
            abandoned=tally.abandoned,
            latencies_ms=tally.latencies_ms,
        )
