"""A tiny HTTP stats endpoint: Prometheus + JSON metrics over HTTP.

:class:`StatsServer` serves a live view of a
:class:`~repro.sim.metrics.MetricsRegistry` from a daemon thread, so a
running :class:`~repro.net.node.NodeDaemon` or
:class:`~repro.net.cluster.LocalCluster` can be inspected (or scraped
by an actual Prometheus server) without touching the protocol sockets:

* ``GET /metrics`` — Prometheus text exposition format,
* ``GET /metrics.json`` — the same snapshot as JSON,
* ``GET /healthz`` — liveness probe (``ok``).

The server snapshots the registry per request; it never blocks protocol
traffic and holds no locks the protocol stack contends on.
"""

from __future__ import annotations

import http.server
import threading
from typing import TYPE_CHECKING, Callable

from repro.obs.export import prometheus_text, snapshot_registry

if TYPE_CHECKING:
    from repro.sim.metrics import MetricsRegistry

__all__ = ["StatsServer"]


class _StatsHandler(http.server.BaseHTTPRequestHandler):
    server: "_StatsHttpServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._respond(200, "text/plain; charset=utf-8", "ok\n")
            return
        if path in ("/metrics", "/metrics.json"):
            snapshot = snapshot_registry(self.server.registry_supplier())
            if path == "/metrics":
                body = prometheus_text(snapshot)
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = snapshot.to_json() + "\n"
                content_type = "application/json; charset=utf-8"
            self._respond(200, content_type, body)
            return
        self._respond(404, "text/plain; charset=utf-8", "not found\n")

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        return  # stats scrapes must not spam the daemon's stdout


class _StatsHttpServer(http.server.ThreadingHTTPServer):
    daemon_threads = True
    registry_supplier: Callable[[], "MetricsRegistry"]


class StatsServer:
    """Serve one registry's metrics over HTTP from a daemon thread."""

    def __init__(
        self,
        registry: "MetricsRegistry | Callable[[], MetricsRegistry]",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        """``registry`` may be the registry itself or a zero-argument
        supplier (evaluated per request, so a daemon can rebuild its
        stack without restarting the stats server).  ``port=0`` lets the
        OS assign one; read it back from :attr:`endpoint`."""
        supplier = registry if callable(registry) else (lambda: registry)
        self._server = _StatsHttpServer((host, port), _StatsHandler)
        self._server.registry_supplier = supplier
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-stats", daemon=True
        )
        self._thread.start()
        self.closed = False

    @property
    def endpoint(self) -> tuple[str, int]:
        """The (host, port) the stats endpoint listens on."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.endpoint
        return f"http://{host}:{port}"

    def __enter__(self) -> "StatsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop serving and join the server thread.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._server.shutdown()
        self._thread.join(timeout=10)
        self._server.server_close()
