"""Metrics export: snapshots, deltas, JSON and Prometheus text format.

A :class:`MetricsSnapshot` is a point-in-time, plain-data copy of a
:class:`~repro.sim.metrics.MetricsRegistry` — counters plus summary
statistics of every sample series.  Snapshots subtract
(:meth:`MetricsSnapshot.delta`), serialize to JSON, and render to the
Prometheus text exposition format (the format a Prometheus server
scrapes from the stats endpoint of :mod:`repro.obs.stats`).

:func:`lint_prometheus_text` validates the exposition format — metric
name syntax, TYPE declarations, parseable sample values — and is run by
the CI smoke job against a live cluster's ``/metrics`` output.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.metrics import MetricsRegistry

__all__ = [
    "MetricsSnapshot",
    "lint_prometheus_text",
    "prometheus_text",
    "snapshot_registry",
]

_SUMMARY_FIELDS = ("count", "total", "mean", "minimum", "maximum", "p50", "p95", "p99")

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(\s+(?P<timestamp>-?\d+))?$"
)
_VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry, as plain data.

    ``counters`` maps counter name to value; ``series`` maps series name
    to its summary-statistic fields (count, total, mean, minimum,
    maximum, p50, p95, p99).
    """

    counters: dict[str, int]
    series: dict[str, dict[str, float]]

    @classmethod
    def capture(cls, registry: "MetricsRegistry") -> "MetricsSnapshot":
        series = {}
        for name in registry.series_names():
            summary = registry.summary(name)
            series[name] = {field: float(getattr(summary, field)) for field in _SUMMARY_FIELDS}
        return cls(counters=registry.counters(), series=series)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``earlier`` and this snapshot.

        Counter values are subtracted (unchanged counters are dropped).
        Series keep window ``count``/``total``/``mean``; the order
        statistics (min/max/percentiles) of just the window cannot be
        recovered from two summaries, so they are carried from the later
        snapshot — cumulative, clearly better than silently wrong.
        """
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
            if value != earlier.counters.get(name, 0)
        }
        series: dict[str, dict[str, float]] = {}
        for name, summary in self.series.items():
            before = earlier.series.get(name, {})
            count = summary["count"] - before.get("count", 0.0)
            if count <= 0:
                continue
            total = summary["total"] - before.get("total", 0.0)
            windowed = dict(summary)
            windowed["count"] = count
            windowed["total"] = total
            windowed["mean"] = total / count
            series[name] = windowed
        return MetricsSnapshot(counters=counters, series=series)

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {"counters": dict(sorted(self.counters.items())),
                "series": {name: dict(fields) for name, fields in sorted(self.series.items())}}

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        data = json.loads(text)
        return cls(
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            series={
                str(name): {str(f): float(v) for f, v in fields.items()}
                for name, fields in data.get("series", {}).items()
            },
        )


def snapshot_registry(registry: "MetricsRegistry") -> MetricsSnapshot:
    """Capture ``registry`` as a :class:`MetricsSnapshot`."""
    return MetricsSnapshot.capture(registry)


def _prometheus_name(name: str, prefix: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not re.match(r"[a-zA-Z_:]", sanitized):
        sanitized = "_" + sanitized
    return f"{prefix}{sanitized}"


def prometheus_text(snapshot: MetricsSnapshot, *, prefix: str = "repro_") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``counter`` samples; sample series become
    ``summary`` families (quantiles + ``_sum`` + ``_count``) with the
    min/max as companion gauges.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.counters.items()):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# HELP {metric} Counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, fields in sorted(snapshot.series.items()):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# HELP {metric} Summary of series {name}")
        lines.append(f"# TYPE {metric} summary")
        for quantile, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(f'{metric}{{quantile="{quantile}"}} {fields[field]:g}')
        lines.append(f"{metric}_sum {fields['total']:g}")
        lines.append(f"{metric}_count {int(fields['count'])}")
        for bound, field in (("_min", "minimum"), ("_max", "maximum")):
            lines.append(f"# TYPE {metric}{bound} gauge")
            lines.append(f"{metric}{bound} {fields[field]:g}")
    return "\n".join(lines) + "\n"


def lint_prometheus_text(text: str) -> list[str]:
    """Validate Prometheus text exposition format; return problems.

    Checks metric-name syntax, TYPE declarations (valid type, declared
    before use, no duplicates), and that every sample value parses as a
    float.  An empty list means the text is clean.
    """
    problems: list[str] = []
    declared: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if not _METRIC_NAME.match(name):
                    problems.append(f"line {number}: invalid metric name {name!r}")
                if kind not in _VALID_TYPES:
                    problems.append(f"line {number}: invalid type {kind!r} for {name}")
                if name in declared:
                    problems.append(f"line {number}: duplicate TYPE for {name}")
                declared[name] = kind
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(sum|count)$", "", name)
        if name not in declared and base not in declared:
            problems.append(f"line {number}: sample {name!r} has no TYPE declaration")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {number}: unparseable value {value!r} for {name}")
    return problems
