"""Per-query structured tracing.

A superset search pays for messages in four layers — the tree walk
itself, DHT routing, the resilient channel's retries, and the transport
actually carrying the frames.  A :class:`QueryTrace` stitches those
layers into one ordered event stream so a single query's cost can be
read off directly: which nodes were visited in which order, where DHT
hops were paid, which attempts were retried, which breakers rejected,
and what the cache did at the root.

Event vocabulary (``TraceEvent.kind``):

=============  ==============================================================
``query``      one per trace: the query, threshold, traversal order, origin
``route``      one DHT lookup (target logical node, owner found, hops paid)
``visit``      one tree-node visit (logical, physical, depth, returned, status)
``retry``      one re-send by the resilient channel (attempt #, delay, error)
``breaker``    a circuit-breaker transition or rejection (state, destination)
``cache_get``  the root-side cache probe (hit, completeness, size)
``cache_put``  the root-side cache fill (stored, or skipped and why)
``cache_invalidate``  one write-path coherence sweep (logical, op, targets, invalidated)
``message``    one transport-level message (src, dst, kind, reply flag)
``store``      one durable-store operation (WAL append, snapshot, recover)
``membership`` one membership event (join/leave/death applied, repair done)
=============  ==============================================================

Recording is opt-in and ambient: :func:`recording` installs a
:class:`TraceRecorder` as the process-wide active recorder, and every
emission site in the stack does ``recorder = active_recorder()`` /
``if recorder is None: ...`` — a single global load and identity check
when tracing is off, which keeps the paper-faithful experiments
byte-identical (the recorder touches no clock advance, no RNG, no
metrics, no network state).  One query is traced at a time per process;
concurrent traced searches would interleave their events.

Cost discipline (enforced by ``benchmarks/bench_obs.py``): the
high-volume emitters — one transport message, one tree-node visit —
append the **already-built domain object** (the transport's
:class:`~repro.net.transport.Message`, the search's
:class:`~repro.core.search.NodeVisit`) straight onto
:attr:`TraceRecorder.raw`.  That is one ``list.append`` per event — no
clock read, no dict, no method call — and a bare ``append`` is atomic
under the GIL, which is all the TCP transport's IO threads need.  Only
the low-volume control events (``query``, ``route``, ``retry``,
``breaker``, ``cache_*``) go through :meth:`TraceRecorder.emit`, which
stamps them with the transport clock.  :class:`TraceEvent` objects are
materialized lazily, on first access to :attr:`QueryTrace.events`;
object-rows inherit the timestamp of the nearest preceding timed event
(clock reads are deliberately kept off the hot path).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EVENT_KINDS",
    "QueryTrace",
    "TraceEvent",
    "TraceRecorder",
    "active_recorder",
    "recording",
]

EVENT_KINDS = (
    "query",
    "route",
    "visit",
    "retry",
    "breaker",
    "cache_get",
    "cache_put",
    "cache_invalidate",
    "message",
    "store",
    "membership",
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of a query trace.

    ``seq`` is the emission order (dense, starting at 0); ``time`` is
    the transport clock at emission — virtual time on the simulator,
    scaled wall-clock over TCP.  High-volume events (``message``,
    ``visit``) carry the timestamp of the nearest preceding timed event.
    ``detail`` holds the kind-specific fields listed in the module
    docstring.
    """

    seq: int
    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "time": self.time, "kind": self.kind, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(data["seq"]),
            time=float(data["time"]),
            kind=str(data["kind"]),
            detail=dict(data.get("detail", {})),
        )


def _materialize(raw: tuple) -> tuple[TraceEvent, ...]:
    """Convert recorder rows to events.

    Three row shapes: ``(time, kind, detail)`` tuples from
    :meth:`TraceRecorder.emit`; transport ``Message`` objects (duck-typed
    by ``is_reply``); search ``NodeVisit`` objects (duck-typed by
    ``logical``).  Untimed rows inherit the last timed row's stamp.
    """
    events: list[TraceEvent] = []
    now = 0.0
    for seq, row in enumerate(raw):
        if type(row) is tuple:
            now, kind, detail = row
            events.append(TraceEvent(seq, now, kind, detail))
        elif hasattr(row, "is_reply"):
            events.append(
                TraceEvent(
                    seq,
                    now,
                    "message",
                    {"src": row.src, "dst": row.dst, "msg": row.kind, "reply": row.is_reply},
                )
            )
        else:
            events.append(
                TraceEvent(
                    seq,
                    now,
                    "visit",
                    {
                        "order": row.order,
                        "logical": row.logical,
                        "physical": row.physical,
                        "depth": row.depth,
                        "returned": row.returned,
                        "dht_hops": row.dht_hops,
                        "status": row.status,
                    },
                )
            )
    return tuple(events)


class QueryTrace:
    """The full event stream of one superset search.

    ``summary`` carries the query-level outcome (keywords, threshold,
    order, completeness, message/round totals) so a dumped trace is
    self-describing without its :class:`~repro.core.search.SearchResult`.
    Events are materialized lazily from the recorder's raw rows on first
    access, so carrying an unread trace costs almost nothing.
    """

    __slots__ = ("summary", "_events", "_raw")

    def __init__(
        self,
        summary: dict[str, Any],
        events: tuple[TraceEvent, ...] | None = None,
        *,
        raw: tuple = (),
    ):
        self.summary = dict(summary)
        self._events = tuple(events) if events is not None else None
        self._raw = raw

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        if self._events is None:
            self._events = _materialize(self._raw)
        return self._events

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryTrace):
            return NotImplemented
        return self.summary == other.summary and self.events == other.events

    def __repr__(self) -> str:
        return f"QueryTrace(summary={self.summary!r}, events=<{len(self.events)}>)"

    # -- accessors ----------------------------------------------------

    def events_of(self, kind: str) -> tuple[TraceEvent, ...]:
        return tuple(event for event in self.events if event.kind == kind)

    @property
    def message_count(self) -> int:
        """Transport messages the trace witnessed — comparable 1:1 with
        the ``network.messages`` counter and ``SearchResult.messages``."""
        return sum(1 for event in self.events if event.kind == "message")

    @property
    def visit_count(self) -> int:
        return sum(1 for event in self.events if event.kind == "visit")

    @property
    def retry_count(self) -> int:
        return sum(1 for event in self.events if event.kind == "retry")

    def dht_hops(self) -> int:
        """Total DHT routing hops paid across all ``route`` events."""
        return sum(int(event.detail.get("hops", 0)) for event in self.events_of("route"))

    # -- serialization ------------------------------------------------

    def to_json_lines(self) -> str:
        """One JSON object per line: the summary first, then each event."""
        lines = [json.dumps({"kind": "summary", **self.summary}, sort_keys=True)]
        lines.extend(json.dumps(event.to_dict(), sort_keys=True) for event in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_json_lines(cls, text: str) -> "QueryTrace":
        summary: dict[str, Any] = {}
        events: list[TraceEvent] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("kind") == "summary" and "seq" not in data:
                summary = {key: value for key, value in data.items() if key != "kind"}
            else:
                events.append(TraceEvent.from_dict(data))
        return cls(summary=summary, events=tuple(events))

    # -- human rendering ----------------------------------------------

    def render(self) -> str:
        """An aligned, human-readable account of the query."""
        lines = []
        query = self.summary.get("query")
        if query is not None:
            lines.append(f"{'query':<14}{{{', '.join(query)}}}")
        for key in ("threshold", "order", "origin", "root_logical", "complete",
                    "messages", "rounds", "cache_hit"):
            if key in self.summary:
                lines.append(f"{key:<14}{self.summary[key]}")
        lines.append(
            f"events  {len(self.events)} "
            f"({self.visit_count} visits, {self.message_count} messages, "
            f"{self.retry_count} retries)"
        )
        lines.append("")
        lines.append(f"{'seq':>4}  {'time':>10}  {'kind':<10} detail")
        for event in self.events:
            detail = " ".join(f"{key}={value}" for key, value in event.detail.items())
            lines.append(f"{event.seq:>4}  {event.time:>10.3f}  {event.kind:<10} {detail}")
        return "\n".join(lines)


class TraceRecorder:
    """Collects trace rows against a clock.

    :attr:`raw` is the append-only row list.  Low-volume control events
    go through :meth:`emit` (clock-stamped); the per-message and
    per-visit hot paths append their domain objects directly —
    ``recorder.raw.append(message)`` — as documented in the module
    docstring.  Rows become :class:`TraceEvent` objects only when the
    finished trace's events are first read.
    """

    __slots__ = ("clock", "raw")

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.raw: list = []

    def emit(self, kind: str, **detail: Any) -> None:
        """Append one clock-stamped event row."""
        self.raw.append((self.clock(), kind, detail))

    def finish(self, summary: dict[str, Any] | None = None) -> QueryTrace:
        """Freeze the collected rows into a :class:`QueryTrace`."""
        return QueryTrace(summary=dict(summary or {}), raw=tuple(self.raw))


# The process-wide active recorder.  ``None`` (the overwhelmingly common
# case) means tracing is off and every emission site returns after one
# identity check.
_current: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    """The recorder events should land in, or None when tracing is off."""
    return _current


@contextmanager
def recording(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Install ``recorder`` as the active recorder for the block."""
    global _current
    previous = _current
    _current = recorder
    try:
        yield recorder
    finally:
        _current = previous
