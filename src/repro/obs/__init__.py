"""Observability: per-query tracing and metrics export.

The paper's cost claims (Figures 8–9, Section 3.5) are statements about
*per-query* message, node, and round counts.  This package makes every
query explainable and every deployment inspectable:

* :mod:`repro.obs.trace` — structured per-query spans/events (``query``,
  ``route``, ``visit``, ``retry``, ``breaker``, ``cache_get``,
  ``cache_put``, ``message``) emitted by the search, index, resilience
  and transport layers, collected into a :class:`~repro.obs.trace.QueryTrace`
  attached to :class:`~repro.core.search.SearchResult`.  When no
  recorder is active every emission site is a single ``is None`` check,
  so the paper-faithful experiments stay byte-identical.
* :mod:`repro.obs.export` — snapshot/delta export of the
  :class:`~repro.sim.metrics.MetricsRegistry` in JSON and Prometheus
  text format, plus a Prometheus format linter.
* :mod:`repro.obs.stats` — a tiny HTTP stats endpoint
  (``/metrics``, ``/metrics.json``, ``/healthz``) served by
  :class:`~repro.net.node.NodeDaemon` and
  :class:`~repro.net.cluster.LocalCluster`.
* :mod:`repro.obs.commands` — the ``python -m repro stats`` and
  ``python -m repro trace`` CLI subcommands.
"""

from repro.obs.export import (
    MetricsSnapshot,
    lint_prometheus_text,
    prometheus_text,
    snapshot_registry,
)
from repro.obs.trace import QueryTrace, TraceEvent, TraceRecorder, active_recorder, recording

__all__ = [
    "MetricsSnapshot",
    "QueryTrace",
    "TraceEvent",
    "TraceRecorder",
    "active_recorder",
    "lint_prometheus_text",
    "prometheus_text",
    "recording",
    "snapshot_registry",
]
