"""CLI glue for the observability layer (``python -m repro stats|trace``).

``stats`` builds a deployment from the usual ``(seed, config)`` spec,
drives a small publish/search workload through it, and prints the
resulting metrics — Prometheus text by default, JSON with
``--format json``.  ``--transport tcp`` runs the workload over a real
loopback :class:`~repro.net.cluster.LocalCluster` and (with ``--serve``)
keeps the HTTP stats endpoint up for scraping; ``--lint`` exits
non-zero when the Prometheus output violates the exposition format.

``trace`` runs one superset search with per-query tracing enabled and
prints the :class:`~repro.obs.trace.QueryTrace` as JSON lines (or a
human-readable rendering with ``--render``).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import ServiceConfig
from repro.core.search import TraversalOrder
from repro.obs.export import lint_prometheus_text, prometheus_text
from repro.obs.stats import StatsServer

__all__ = ["add_obs_commands", "run_obs_command"]

_SMOKE_OBJECTS = (
    ("paper.pdf", ("dht", "search", "keyword")),
    ("slides.pdf", ("dht", "search")),
    ("thesis.pdf", ("dht", "keyword", "hypercube")),
    ("notes.txt", ("search",)),
    ("code.tgz", ("dht",)),
)


def _config_from(arguments: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        dimension=arguments.dimension,
        num_dht_nodes=arguments.nodes,
        dht=arguments.dht,
        dht_bits=arguments.bits,
        seed=arguments.seed,
    )


def _common_options(subparser) -> None:
    subparser.add_argument("--dimension", type=int, default=6, help="hypercube dimension")
    subparser.add_argument("--nodes", type=int, default=16, help="number of DHT nodes")
    subparser.add_argument("--dht", default="chord", choices=["chord", "kademlia", "pastry"])
    subparser.add_argument("--bits", type=int, default=32, help="identifier-space bits")
    subparser.add_argument("--seed", type=int, default=0, help="deployment seed")


def add_obs_commands(commands) -> None:
    """Register the ``stats`` and ``trace`` subcommands on the repro CLI."""
    stats = commands.add_parser(
        "stats", help="run a smoke workload and export its metrics"
    )
    _common_options(stats)
    stats.add_argument(
        "--transport",
        default="sim",
        choices=["sim", "tcp"],
        help="simulated network or a real loopback TCP cluster",
    )
    stats.add_argument(
        "--format",
        default="prometheus",
        choices=["prometheus", "json"],
        help="metrics output format",
    )
    stats.add_argument(
        "--lint",
        action="store_true",
        help="validate the Prometheus exposition format; non-zero exit on problems",
    )
    stats.add_argument(
        "--serve",
        action="store_true",
        help="keep serving the metrics over HTTP until interrupted",
    )
    stats.add_argument("--host", default="127.0.0.1", help="stats endpoint host")
    stats.add_argument("--port", type=int, default=0, help="stats endpoint port (0: OS-assigned)")

    trace = commands.add_parser(
        "trace", help="run one traced superset search and dump its event trace"
    )
    _common_options(trace)
    trace.add_argument(
        "--keywords",
        default="dht,search",
        help="comma-separated query keyword set",
    )
    trace.add_argument("--threshold", type=int, default=None, help="the paper's t (default: all)")
    trace.add_argument(
        "--order",
        default="top_down",
        choices=[order.value for order in TraversalOrder],
    )
    trace.add_argument("--use-cache", action="store_true", help="probe/populate the root cache")
    trace.add_argument(
        "--render", action="store_true", help="human-readable rendering instead of JSON lines"
    )


def _build_service(arguments: argparse.Namespace, transport: str):
    """Returns (service, closer)."""
    config = _config_from(arguments)
    if transport == "tcp":
        from repro.net.cluster import LocalCluster

        cluster = LocalCluster(config)
        return cluster.service, cluster.close
    from repro.core.service import KeywordSearchService

    return KeywordSearchService.create(config), (lambda: None)


def _smoke_workload(service) -> None:
    for object_id, keywords in _SMOKE_OBJECTS:
        service.publish(object_id, keywords)
    for query in (("dht",), ("search",), ("dht", "search")):
        service.superset_search(query)


def _run_stats(arguments: argparse.Namespace) -> int:
    service, closer = _build_service(arguments, arguments.transport)
    try:
        _smoke_workload(service)
        snapshot = service.metrics_snapshot()
        text = prometheus_text(snapshot)
        if arguments.format == "prometheus":
            sys.stdout.write(text)
        else:
            print(snapshot.to_json())
        if arguments.lint:
            problems = lint_prometheus_text(text)
            for problem in problems:
                print(f"lint: {problem}", file=sys.stderr)
            if problems:
                return 1
        if arguments.serve:
            registry = service.network.metrics
            with StatsServer(registry, host=arguments.host, port=arguments.port) as server:
                print(f"serving metrics on {server.url}/metrics", file=sys.stderr, flush=True)
                try:
                    while True:
                        import time

                        time.sleep(1)
                except KeyboardInterrupt:
                    pass
        return 0
    finally:
        closer()


def _run_trace(arguments: argparse.Namespace) -> int:
    keywords = tuple(part for part in arguments.keywords.split(",") if part)
    if not keywords:
        raise SystemExit("--keywords must name at least one keyword")
    service, closer = _build_service(arguments, "sim")
    try:
        _smoke_workload(service)
        result = service.superset_search(
            keywords,
            arguments.threshold,
            order=TraversalOrder(arguments.order),
            use_cache=arguments.use_cache,
            trace=True,
        )
        assert result.trace is not None
        if arguments.render:
            print(result.trace.render())
        else:
            print(result.trace.to_json_lines())
        return 0
    finally:
        closer()


def run_obs_command(arguments: argparse.Namespace) -> int:
    if arguments.command == "stats":
        return _run_stats(arguments)
    return _run_trace(arguments)
