"""``python -m repro`` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: a normal way to exit.
        sys.exit(0)
