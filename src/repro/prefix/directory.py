"""The distributed keyword directory (docs/protocol.md §17).

:class:`KeywordDirectory` shards a Patricia trie of every indexed
keyword onto the DHT: the trie node for prefix ``p`` lives at
``hash_name("<namespace>/<p>", salt="pfx.trie")`` on whichever physical
node owns that key, stored as ordinary rows of that node's
:class:`~repro.core.index.IndexShard` — which is what buys durability
(the shard's WAL), crash recovery, and churn handoff (``hindex.*``
bulk transfer) for free.

``pfx.*`` frames are served by the stateless
:class:`PrefixDirectoryShard`, which translates each request into
shard-row reads/writes.  With ``replicas > 1`` the directory keeps one
structurally identical trie per replica namespace (placement differs by
namespace salt), so reads fail over per trie node and a dead node's
rows can be re-pushed verbatim from any surviving replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.net.transport import Message, RpcCall
from repro.prefix.trie import (
    common_prefix_len,
    decode_records,
    edge_record,
    prefix_of,
    record_key,
    word_record,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import IndexShard
    from repro.dht.dolr import DolrNetwork, DolrNode

__all__ = ["KeywordDirectory", "PrefixDirectoryShard", "PrefixResolution"]

#: Salt of the trie-node placement hash — one key per (namespace, prefix).
TRIE_SALT = "pfx.trie"


class PrefixDirectoryShard:
    """Per-node handler of the ``pfx.*`` frame kinds.

    Stateless by design: rows live in the node's ``hindex``
    :class:`~repro.core.index.IndexShard`, under the directory's
    reserved ``pfx/…`` namespaces, so the index shard's WAL recording,
    recovery boot, and ``hindex.transfer``/``hindex.snapshot`` handoff
    all apply to directory rows unchanged.
    """

    prefix = "pfx"

    def handle(self, node: DolrNode, message: Message) -> Any:
        shard: IndexShard = node.application("hindex")
        payload = message.payload
        key = (payload["namespace"], payload["logical"])
        row = record_key(payload["prefix"])
        if message.kind == "pfx.node":
            records = shard.tables.get(key, {}).get(row, set())
            return {"records": sorted(records)}
        if message.kind == "pfx.put":
            for record in payload["records"]:
                shard.put(key, row, record)
            return {"stored": len(payload["records"])}
        if message.kind == "pfx.remove":
            removed = sum(
                1 for record in payload["records"] if shard.remove(key, row, record)
            )
            return {"removed": removed}
        raise LookupError(f"unknown pfx message kind {message.kind!r}")


@dataclass(frozen=True)
class PrefixResolution:
    """Outcome of resolving one prefix against the directory.

    ``keywords`` are the matching full keywords in BFS order (shortest
    completions first); ``messages`` counts directory RPCs issued —
    the quantity the acceptance bench pins to grow with ``len(keywords)``
    rather than vocabulary size.  ``truncated`` means an expansion
    budget cut enumeration short; ``degraded`` that some subtree was
    unreachable on every replica (its keywords may be missing).
    """

    prefix: str
    keywords: tuple[str, ...]
    messages: int
    nodes_visited: int
    truncated: bool = False
    degraded: bool = False

    @property
    def complete(self) -> bool:
        return not (self.truncated or self.degraded)


class KeywordDirectory:
    """Write/read façade of the trie, bound to one DOLR network."""

    def __init__(self, dolr: DolrNetwork, *, replicas: int = 1, salt: str = "pfx"):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.dolr = dolr
        self.replicas = replicas
        self.salt = salt
        self.namespaces = [f"{salt}/r{i}" for i in range(replicas)]
        dolr.ensure_application(lambda node: PrefixDirectoryShard(), "pfx")

    # -- placement ----------------------------------------------------

    def key_for(self, namespace: str, prefix: str) -> int:
        """The DHT key of the trie node for ``prefix`` in ``namespace``."""
        return self.dolr.space.hash_name(f"{namespace}/{prefix}", salt=TRIE_SALT)

    def owner_of(self, namespace: str, prefix: str) -> int:
        return self.dolr.local_owner(self.key_for(namespace, prefix))

    def _origin(self, origin: int | None) -> int:
        if origin is not None and origin in self.dolr.nodes:
            return origin
        return self.dolr.any_address()

    # -- low-level node I/O -------------------------------------------

    def _payload(self, namespace: str, prefix: str) -> dict[str, Any]:
        return {
            "namespace": namespace,
            "logical": self.key_for(namespace, prefix),
            "prefix": prefix,
        }

    def _fetch(self, namespace: str, prefix: str, origin: int) -> tuple[str, ...]:
        reply = self.dolr.channel.rpc(
            origin, self.owner_of(namespace, prefix), "pfx.node", self._payload(namespace, prefix)
        )
        return tuple(reply["records"])

    def _put(self, namespace: str, prefix: str, records: list[str], origin: int) -> None:
        payload = dict(self._payload(namespace, prefix), records=sorted(records))
        self.dolr.channel.rpc(origin, self.owner_of(namespace, prefix), "pfx.put", payload)

    def _remove(self, namespace: str, prefix: str, records: list[str], origin: int) -> None:
        payload = dict(self._payload(namespace, prefix), records=sorted(records))
        self.dolr.channel.rpc(origin, self.owner_of(namespace, prefix), "pfx.remove", payload)

    # -- writes (per replica namespace) -------------------------------

    def add_keyword(self, keyword: str, object_id: str, *, origin: int | None = None) -> None:
        """Record that ``object_id`` carries (normalized) ``keyword``."""
        origin = self._origin(origin)
        for namespace in self.namespaces:
            self._insert(namespace, keyword, object_id, origin)

    def remove_keyword(
        self, keyword: str, object_id: str, *, origin: int | None = None
    ) -> None:
        """Forget ``object_id``'s copy of ``keyword``; prunes trie nodes
        that become empty (leaf chains, not pass-through merges)."""
        origin = self._origin(origin)
        for namespace in self.namespaces:
            self._delete(namespace, keyword, object_id, origin)

    def _insert(self, namespace: str, word: str, object_id: str, origin: int) -> None:
        # Patricia insert, ordered so that every intermediate state a
        # concurrent reader can observe is a consistent trie: children
        # are created before the parent edge that reaches them, and an
        # edge split adds the shortened run before retiring the old one
        # (readers follow every run, so the transient duplicate is
        # harmless).
        current = ""
        while True:
            if current == word:
                self._put(namespace, current, [word_record(object_id)], origin)
                return
            edges, _ = decode_records(self._fetch(namespace, current, origin))
            rest = word[len(current) :]
            best, shared = None, 0
            for run in edges.get(rest[0], ()):
                matched = common_prefix_len(run, rest)
                if matched > shared:
                    best, shared = run, matched
            if best is None:
                # No edge in this direction: new leaf, then link it.
                self._put(namespace, word, [word_record(object_id)], origin)
                self._put(namespace, current, [edge_record(rest)], origin)
                return
            if shared == len(best):
                current += best
                continue
            # The run diverges after `shared` characters: split it at a
            # new node `fork`, re-hanging the old subtree below it.
            fork = current + best[:shared]
            tail = best[shared:]
            if fork == word:
                self._put(namespace, fork, [edge_record(tail), word_record(object_id)], origin)
            else:
                self._put(namespace, word, [word_record(object_id)], origin)
                self._put(
                    namespace,
                    fork,
                    [edge_record(tail), edge_record(word[len(fork) :])],
                    origin,
                )
            self._put(namespace, current, [edge_record(best[:shared])], origin)
            self._remove(namespace, current, [edge_record(best)], origin)
            return

    def _delete(self, namespace: str, word: str, object_id: str, origin: int) -> None:
        path: list[tuple[str, str]] = []  # (parent prefix, run taken)
        current = ""
        while current != word:
            edges, _ = decode_records(self._fetch(namespace, current, origin))
            rest = word[len(current) :]
            taken = None
            for run in edges.get(rest[0], ()):
                matched = common_prefix_len(run, rest)
                if matched == len(run):
                    taken = run
                    break
            if taken is None:
                return  # keyword not in this trie
            path.append((current, taken))
            current += taken
        self._remove(namespace, word, [word_record(object_id)], origin)
        # Prune leaf chains that the removal emptied.  A node with no
        # records disappears from its shard table entirely, so pruning
        # is: while the reached node is empty, unlink it from its
        # parent and consider the parent next.  (Single-child interior
        # nodes are left unmerged — a documented simplification that
        # costs at most one extra fetch per lookup through them.)
        while current:
            if self._fetch(namespace, current, origin):
                return
            if not path:
                return
            parent, run = path.pop()
            self._remove(namespace, parent, [edge_record(run)], origin)
            current = parent

    # -- resolution ---------------------------------------------------

    def resolve(
        self, prefix: str, *, origin: int | None = None, limit: int | None = None
    ) -> PrefixResolution:
        """Enumerate the indexed keywords extending ``prefix``.

        One breadth-first sweep from the trie root: the on-path segment
        costs at most ``len(prefix)`` fetches, then each level of the
        matching subtree is fetched as a single :meth:`rpc_many` batch.
        ``limit`` bounds the number of keywords enumerated (the
        planner's expansion budget); enumeration stops — and the result
        is flagged ``truncated`` — once it is reached.
        """
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        origin = self._origin(origin)
        found: list[str] = []
        messages = 0
        visited = 0
        truncated = False
        degraded = False
        pending = [""]
        while pending:
            batch, pending = pending, []
            records_by_prefix, batch_messages, failed = self._fetch_level(batch, origin)
            messages += batch_messages
            visited += len(records_by_prefix)
            if failed:
                degraded = True
            for node_prefix in batch:
                records = records_by_prefix.get(node_prefix)
                if records is None:
                    continue
                edges, objects = decode_records(records)
                capped = limit is not None and len(found) >= limit
                if len(node_prefix) >= len(prefix):
                    # Inside the matching subtree: every reachable node
                    # extends the prefix, terminals are answers.
                    if objects and node_prefix not in found:
                        if capped:
                            truncated = True
                            continue
                        found.append(node_prefix)
                        capped = limit is not None and len(found) >= limit
                    children = [
                        node_prefix + run for runs in edges.values() for run in runs
                    ]
                else:
                    # Still walking toward the prefix: follow runs that
                    # stay consistent with it.
                    rest = prefix[len(node_prefix) :]
                    children = []
                    for run in edges.get(rest[0], ()):
                        matched = common_prefix_len(run, rest)
                        if matched == len(rest) or matched == len(run):
                            children.append(node_prefix + run)
                if children:
                    if capped:
                        truncated = True
                    else:
                        pending.extend(children)
        return PrefixResolution(
            prefix=prefix,
            keywords=tuple(dict.fromkeys(found)),
            messages=messages,
            nodes_visited=visited,
            truncated=truncated,
            degraded=degraded,
        )

    def _fetch_level(
        self, prefixes: list[str], origin: int
    ) -> tuple[dict[str, tuple[str, ...]], int, list[str]]:
        """Batch-fetch trie nodes, failing over across replica
        namespaces per prefix.  Returns (records by prefix, messages
        issued, prefixes unreachable on every replica)."""
        attempt = dict.fromkeys(prefixes, 0)
        results: dict[str, tuple[str, ...]] = {}
        failed: list[str] = []
        messages = 0
        pending = list(dict.fromkeys(prefixes))
        while pending:
            calls = []
            for node_prefix in pending:
                namespace = self.namespaces[attempt[node_prefix]]
                calls.append(
                    RpcCall(
                        origin,
                        self.owner_of(namespace, node_prefix),
                        "pfx.node",
                        self._payload(namespace, node_prefix),
                    )
                )
            outcomes = self.dolr.channel.rpc_many(calls)
            messages += len(calls)
            retry = []
            for node_prefix, outcome in zip(pending, outcomes):
                if outcome.ok:
                    results[node_prefix] = tuple(outcome.value["records"])
                    continue
                attempt[node_prefix] += 1
                if attempt[node_prefix] < len(self.namespaces):
                    retry.append(node_prefix)
                else:
                    failed.append(node_prefix)
            pending = retry
        return results, messages, failed

    # -- churn maintenance --------------------------------------------

    def _shard_at(self, address: int) -> IndexShard:
        return self.dolr.node(address).application("hindex")

    def _directory_tables(self, shard: IndexShard) -> list[tuple[str, int]]:
        return [key for key in shard.tables if key[0] in self.namespaces]

    def push_misplaced(self, address: int, shard: IndexShard | None = None) -> int:
        """Move directory rows hosted at ``address`` but owned elsewhere
        to their owners (mirrors ``HypercubeIndex._push_misplaced_tables``).
        Returns the number of records moved."""
        shard = self._shard_at(address) if shard is None else shard
        moved = 0
        for key in self._directory_tables(shard):
            namespace, logical = key
            owner = self.dolr.local_owner(logical)
            if owner == address:
                continue
            table = shard.snapshot_records(key)
            self.dolr.channel.rpc(
                address,
                owner,
                "hindex.transfer",
                {"namespace": namespace, "logical": logical, "table": table},
            )
            shard.drop_table(key)
            moved += sum(len(ids) for _, ids in table)
        return moved

    def rebalance(self) -> int:
        """Sweep every node for misplaced directory tables (after joins)."""
        return sum(self.push_misplaced(address) for address in list(self.dolr.addresses()))

    def evacuate(self, leaving: int) -> int:
        """Hand off a departing node's directory tables; owners are
        computed as if ``leaving`` were already gone."""
        if leaving not in self.dolr.nodes:
            raise ValueError(f"unknown node {leaving}")
        shard = self._shard_at(leaving)
        node = self.dolr.nodes.pop(leaving)  # simulate absence for placement
        try:
            moved = self.push_misplaced(leaving, shard=shard)
        finally:
            self.dolr.nodes[leaving] = node
        return moved

    def plan_repair(
        self, dead: int, served: set[int]
    ) -> list[tuple[str, int, str, list[str], int]]:
        """Before ``dead`` is expelled: find trie nodes it owned that a
        locally served replica can re-seed.  The trie's *structure*
        depends only on the keyword set, so a row's record set is
        byte-identical across replica namespaces — a donor can push its
        own copy verbatim.  Returns (namespace, key, prefix, records,
        donor) plans to apply after expulsion."""
        if self.replicas < 2:
            return []
        plans: list[tuple[str, int, str, list[str], int]] = []
        planned: set[tuple[str, str]] = set()
        for donor in sorted(served):
            if donor not in self.dolr.nodes:
                continue
            shard = self._shard_at(donor)
            for key in self._directory_tables(shard):
                for row_key, records in shard.tables[key].items():
                    prefix = prefix_of(row_key)
                    for namespace in self.namespaces:
                        if namespace == key[0] or (namespace, prefix) in planned:
                            continue
                        lost_key = self.key_for(namespace, prefix)
                        if self.dolr.local_owner(lost_key) != dead:
                            continue
                        planned.add((namespace, prefix))
                        plans.append(
                            (namespace, lost_key, prefix, sorted(records), donor)
                        )
        return plans

    def apply_repair(self, plans: list[tuple[str, int, str, list[str], int]]) -> int:
        """After expulsion: push each planned row to the key's new owner.
        Returns the number of records restored."""
        restored = 0
        for namespace, logical, prefix, records, donor in plans:
            owner = self.dolr.local_owner(logical)
            row = sorted(record_key(prefix))
            self.dolr.channel.rpc(
                donor,
                owner,
                "hindex.transfer",
                {
                    "namespace": namespace,
                    "logical": logical,
                    "table": [(row, records)],
                },
            )
            restored += len(records)
        return restored
