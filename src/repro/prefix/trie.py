"""Record encoding and pure math for the directory trie.

A trie node for prefix ``p`` is one inner row of an
:class:`~repro.core.index.IndexShard` table: the row key is
``frozenset({"p:<p>"})`` (disambiguating hash collisions on the table
key) and the row's record set holds two kinds of strings:

- ``"e:<run>"`` — a child edge: a node for ``p + run`` exists.  Runs
  are Patricia-compressed: a node splits only where keywords diverge,
  so the trie has fewer internal nodes than leaves and enumeration
  costs O(matches) fetches, not O(|prefix tree|).
- ``"w:<object_id>"`` — keyword ``p`` is carried by ``object_id``.  A
  node is *terminal* (a full keyword) while it has at least one word
  record; per-object records make re-pushes during repair idempotent.

Everything here is pure string/set math — no I/O — so the write and
read paths in :mod:`repro.prefix.directory` stay small.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "common_prefix_len",
    "decode_records",
    "edge_record",
    "prefix_of",
    "record_key",
    "word_record",
]

_PREFIX_TAG = "p:"
_EDGE_TAG = "e:"
_WORD_TAG = "w:"


def record_key(prefix: str) -> frozenset[str]:
    """The inner table key of the trie node for ``prefix``."""
    return frozenset({_PREFIX_TAG + prefix})


def prefix_of(key: frozenset[str]) -> str:
    """Invert :func:`record_key` (used by repair scans)."""
    (tagged,) = key
    if not tagged.startswith(_PREFIX_TAG):
        raise ValueError(f"not a trie row key: {tagged!r}")
    return tagged[len(_PREFIX_TAG) :]


def edge_record(run: str) -> str:
    return _EDGE_TAG + run


def word_record(object_id: str) -> str:
    return _WORD_TAG + object_id


def decode_records(
    records: Iterable[str],
) -> tuple[dict[str, tuple[str, ...]], tuple[str, ...]]:
    """Split a node's record set into ``(edges, object_ids)``.

    ``edges`` groups child runs by first character.  A well-formed node
    has at most one run per first character, but a write that splits an
    edge is two messages (add the shortened run, retire the old one) —
    readers may observe both, so every run is kept and the reader
    follows all of them, deduplicating keywords at the end.
    """
    edges: dict[str, list[str]] = {}
    objects: list[str] = []
    for record in records:
        if record.startswith(_EDGE_TAG):
            run = record[len(_EDGE_TAG) :]
            if run:
                edges.setdefault(run[0], []).append(run)
        elif record.startswith(_WORD_TAG):
            objects.append(record[len(_WORD_TAG) :])
    return (
        {first: tuple(sorted(runs)) for first, runs in sorted(edges.items())},
        tuple(sorted(objects)),
    )


def common_prefix_len(a: str, b: str) -> int:
    """Length of the longest common prefix of ``a`` and ``b``."""
    bound = min(len(a), len(b))
    i = 0
    while i < bound and a[i] == b[i]:
        i += 1
    return i
