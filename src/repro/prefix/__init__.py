"""Distributed keyword directory: a Patricia trie over normalized
keywords, sharded onto the DHT (docs/protocol.md §17).

The directory answers *prefix* queries — "which indexed keywords start
with ``ja``?" — with messages proportional to the number of matching
keywords, so the planner in :mod:`repro.core.search` can expand each
match through the existing superset-search machinery.
"""

from repro.prefix.directory import KeywordDirectory, PrefixDirectoryShard, PrefixResolution

__all__ = ["KeywordDirectory", "PrefixDirectoryShard", "PrefixResolution"]
