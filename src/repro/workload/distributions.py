"""Discrete distributions for workload synthesis.

Figure 5 of the paper shows the keyword-set-size distribution of the
PCHome corpus: unimodal, right-skewed, supported on roughly 1..30 with
mean 7.3.  A log-normal discretized onto that support reproduces the
shape; :func:`fit_lognormal_to_mean` pins its mean to the published
value exactly (by bisection on the location parameter, since
discretization and truncation shift the continuous-formula mean).
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from collections.abc import Iterable, Mapping

from repro.util.rng import make_rng

__all__ = ["DiscretizedLogNormal", "EmpiricalDistribution", "fit_lognormal_to_mean"]


class EmpiricalDistribution:
    """A discrete distribution given by value -> weight.

    >>> d = EmpiricalDistribution({1: 1.0, 2: 3.0})
    >>> round(d.pmf(2), 2)
    0.75
    """

    def __init__(self, weights: Mapping[int, float]):
        if not weights:
            raise ValueError("weights must not be empty")
        if any(w < 0 for w in weights.values()):
            raise ValueError("weights must be non-negative")
        total = math.fsum(weights.values())
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.support = sorted(weights)
        self._pmf = {value: weights[value] / total for value in self.support}
        self._cdf = list(itertools.accumulate(self._pmf[v] for v in self.support))
        self._cdf[-1] = 1.0

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "EmpiricalDistribution":
        counts: dict[int, float] = {}
        for sample in samples:
            counts[sample] = counts.get(sample, 0.0) + 1.0
        return cls(counts)

    def pmf(self, value: int) -> float:
        return self._pmf.get(value, 0.0)

    def mean(self) -> float:
        return math.fsum(value * self._pmf[value] for value in self.support)

    def mode(self) -> int:
        return max(self.support, key=lambda v: self._pmf[v])

    def sample(self, rng: int | random.Random | None = None) -> int:
        rng = make_rng(rng)
        return self.support[bisect.bisect_left(self._cdf, rng.random())]

    def sample_many(self, count: int, rng: int | random.Random | None = None) -> list[int]:
        rng = make_rng(rng)
        cdf, support = self._cdf, self.support
        return [support[bisect.bisect_left(cdf, rng.random())] for _ in range(count)]

    def items(self) -> list[tuple[int, float]]:
        return [(value, self._pmf[value]) for value in self.support]

    def total_variation_distance(self, other: "EmpiricalDistribution") -> float:
        values = set(self.support) | set(other.support)
        return 0.5 * math.fsum(abs(self.pmf(v) - other.pmf(v)) for v in values)


class DiscretizedLogNormal(EmpiricalDistribution):
    """A log-normal discretized and truncated onto [low, high].

    ``P(k) ∝ exp(-(ln k - mu)^2 / (2 sigma^2)) / k`` for integer k.
    """

    def __init__(self, mu: float, sigma: float, low: int = 1, high: int = 30):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if not 1 <= low <= high:
            raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.mu = mu
        self.sigma = sigma
        self.low = low
        self.high = high
        weights = {
            k: math.exp(-((math.log(k) - mu) ** 2) / (2 * sigma**2)) / k
            for k in range(low, high + 1)
        }
        super().__init__(weights)


def fit_lognormal_to_mean(
    target_mean: float,
    sigma: float = 0.55,
    low: int = 1,
    high: int = 30,
    *,
    tolerance: float = 1e-6,
) -> DiscretizedLogNormal:
    """Find the discretized log-normal with the requested mean.

    Bisection on mu: the discretized mean is monotone increasing in mu.

    >>> dist = fit_lognormal_to_mean(7.3)
    >>> abs(dist.mean() - 7.3) < 1e-4
    True
    """
    if not low < target_mean < high:
        raise ValueError(
            f"target mean {target_mean} must lie strictly inside [{low}, {high}]"
        )
    lo_mu, hi_mu = math.log(low) - 2.0, math.log(high) + 2.0
    for _ in range(200):
        mid = (lo_mu + hi_mu) / 2
        mean = DiscretizedLogNormal(mid, sigma, low, high).mean()
        if abs(mean - target_mean) < tolerance:
            break
        if mean < target_mean:
            lo_mu = mid
        else:
            hi_mu = mid
    return DiscretizedLogNormal((lo_mu + hi_mu) / 2, sigma, low, high)
