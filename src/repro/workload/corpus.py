"""Synthetic PCHome-like corpus (the paper's 131,180 website records).

Each record carries the six fields of Table 1 — ID, Title, URL,
Category, Description, Keyword — and is generated so the two statistics
the experiments depend on match the paper:

* keyword-set sizes follow Figure 5's right-skewed unimodal shape with
  mean 7.3 (a discretized log-normal fit by
  :func:`repro.workload.distributions.fit_lognormal_to_mean`);
* keyword popularity follows Zipf's law (exponent ≈ 1), the premise of
  the paper's load-balance argument.

Keywords are pronounceable pseudo-words, deterministic per vocabulary
rank, so corpora are reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.util.rng import make_rng, spawn_rng
from repro.util.zipf import ZipfDistribution
from repro.workload.distributions import (
    DiscretizedLogNormal,
    EmpiricalDistribution,
    fit_lognormal_to_mean,
)

__all__ = ["CorpusRecord", "SyntheticCorpus"]

PAPER_CORPUS_SIZE = 131_180
PAPER_MEAN_KEYWORDS = 7.3

_SYLLABLES = (
    "ba be bi bo bu da de di do du ka ke ki ko ku la le li lo lu "
    "ma me mi mo mu na ne ni no nu ra re ri ro ru sa se si so su "
    "ta te ti to tu va ve vi vo vu wa wi ya yo za zi zo"
).split()

_CATEGORY_POOL = (
    "news", "shopping", "finance", "travel", "education", "games",
    "music", "sports", "health", "computing", "government", "arts",
)


def _pseudo_word(rank: int) -> str:
    """A deterministic pronounceable word for a vocabulary rank."""
    base = len(_SYLLABLES)
    parts = []
    value = rank
    for _ in range(3):
        parts.append(_SYLLABLES[value % base])
        value //= base
    return "".join(parts) + str(rank % 10)


@dataclass(frozen=True)
class CorpusRecord:
    """One website record, with the fields of Table 1."""

    object_id: str
    title: str
    url: str
    category: str
    description: str
    keywords: frozenset[str] = field(hash=False)

    @property
    def keyword_count(self) -> int:
        return len(self.keywords)


class SyntheticCorpus:
    """A generated object collection with PCHome-like statistics.

    >>> corpus = SyntheticCorpus.generate(num_objects=500, seed=1)
    >>> len(corpus)
    500
    >>> 5.0 < corpus.mean_keyword_count() < 10.0
    True
    """

    def __init__(self, records: list[CorpusRecord]):
        if not records:
            raise ValueError("corpus must contain at least one record")
        self.records = records
        self._by_id = {record.object_id: record for record in records}
        if len(self._by_id) != len(records):
            raise ValueError("corpus contains duplicate object IDs")

    # -- generation -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        *,
        num_objects: int = PAPER_CORPUS_SIZE,
        vocabulary_size: int = 20_000,
        zipf_exponent: float = 1.0,
        zipf_offset: float = 25.0,
        size_distribution: DiscretizedLogNormal | None = None,
        mean_keywords: float = PAPER_MEAN_KEYWORDS,
        seed: int | random.Random | None = 0,
    ) -> "SyntheticCorpus":
        """Generate a corpus.

        ``size_distribution`` defaults to the Figure 5 fit (log-normal,
        mean ``mean_keywords``, support 1..30).  Keywords of each object
        are drawn without replacement from a Zipf-Mandelbrot over the
        vocabulary; the default offset calibrates the most popular
        keyword to appear in ~4% of objects, the head-heaviness of a
        curated directory (plain Zipf over a token stream would put the
        top keyword in half the objects).
        """
        if num_objects < 1:
            raise ValueError(f"num_objects must be >= 1, got {num_objects}")
        if vocabulary_size < 64:
            raise ValueError(f"vocabulary_size must be >= 64, got {vocabulary_size}")
        parent = make_rng(seed)
        size_rng = spawn_rng(parent, "sizes")
        word_rng = spawn_rng(parent, "words")
        meta_rng = spawn_rng(parent, "meta")
        if size_distribution is None:
            size_distribution = fit_lognormal_to_mean(mean_keywords)
        zipf = ZipfDistribution(vocabulary_size, zipf_exponent, q=zipf_offset)
        vocabulary = [_pseudo_word(rank) for rank in range(1, vocabulary_size + 1)]
        records: list[CorpusRecord] = []
        for index in range(num_objects):
            size = size_distribution.sample(size_rng)
            chosen: set[int] = set()
            # Rejection sampling: Zipf draws until `size` distinct ranks.
            while len(chosen) < size:
                chosen.add(zipf.sample(word_rng))
            keywords = frozenset(vocabulary[rank - 1] for rank in chosen)
            records.append(cls._make_record(index, keywords, meta_rng))
        return cls(records)

    @staticmethod
    def _make_record(index: int, keywords: frozenset[str], rng: random.Random) -> CorpusRecord:
        ordered = sorted(keywords)
        head = ordered[rng.randrange(len(ordered))]
        category_digits = "".join(str(rng.randrange(10)) for _ in range(10))
        return CorpusRecord(
            object_id=f"obj-{index:07d}",
            title=f"{head.capitalize()} {_CATEGORY_POOL[index % len(_CATEGORY_POOL)]} site",
            url=f"http://www.{head}{index % 1000}.example.tw",
            category=category_digits,
            description=f"Site about {', '.join(ordered[:3])}",
            keywords=keywords,
        )

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self.records)

    def __getitem__(self, object_id: str) -> CorpusRecord:
        return self._by_id[object_id]

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._by_id

    def object_ids(self) -> list[str]:
        return [record.object_id for record in self.records]

    def keyword_sets(self) -> list[frozenset[str]]:
        return [record.keywords for record in self.records]

    # -- statistics -----------------------------------------------------------

    def mean_keyword_count(self) -> float:
        return sum(r.keyword_count for r in self.records) / len(self.records)

    def size_histogram(self) -> dict[int, int]:
        """Figure 5's data: keyword-set size -> number of objects."""
        return dict(sorted(Counter(r.keyword_count for r in self.records).items()))

    def size_distribution(self) -> EmpiricalDistribution:
        return EmpiricalDistribution(
            {size: float(count) for size, count in self.size_histogram().items()}
        )

    def keyword_frequencies(self) -> Counter[str]:
        """keyword -> number of objects containing it."""
        counter: Counter[str] = Counter()
        for record in self.records:
            counter.update(record.keywords)
        return counter

    def vocabulary_used(self) -> set[str]:
        return {keyword for record in self.records for keyword in record.keywords}

    def inverted_index(self) -> dict[str, frozenset[str]]:
        """keyword -> object IDs containing it.

        Built once per call; experiments that need many |O_K| counts
        intersect these posting sets instead of scanning the corpus.
        """
        postings: dict[str, set[str]] = {}
        for record in self.records:
            for keyword in record.keywords:
                postings.setdefault(keyword, set()).add(record.object_id)
        return {keyword: frozenset(ids) for keyword, ids in postings.items()}

    def matching(self, query: frozenset[str]) -> list[str]:
        """Ground truth O_K: IDs of objects describable by ``query``.

        Linear scan — the oracle experiments compare protocol output to.
        """
        return [
            record.object_id for record in self.records if query <= record.keywords
        ]

    def keyword_frequency(self, query: frozenset[str]) -> int:
        """|O_K| — the paper's keyword frequency of a set."""
        return sum(1 for record in self.records if query <= record.keywords)
