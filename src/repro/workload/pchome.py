"""Table 1 of the paper: sample PCHome website records.

The paper prints two example rows of its (proprietary) data set; they
are public in the paper itself and reproduced here verbatim so the
Table 1 "experiment" can render them next to synthetic records of the
same schema.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.workload.corpus import CorpusRecord

__all__ = ["TABLE1_RECORDS", "format_records_table"]

TABLE1_RECORDS: tuple[CorpusRecord, ...] = (
    CorpusRecord(
        object_id="11",
        title="Hinet",
        url="http://www.hinet.net",
        category="0818013020",
        description="Largest ISP in Taiwan",
        keywords=frozenset({"isp", "telecommunication", "network", "download"}),
    ),
    CorpusRecord(
        object_id="18491",
        title="TVBS News",
        url="http://www.tvbs.com.tw",
        category="0318201207",
        description=(
            "Providing daily news, entertainment news, and news search"
        ),
        keywords=frozenset({"tvbs", "news"}),
    ),
)

_COLUMNS = ("ID", "Title", "URL", "Category", "Description", "Keyword")


def _row_of(record: CorpusRecord) -> tuple[str, ...]:
    return (
        record.object_id,
        record.title,
        record.url,
        record.category,
        record.description,
        ", ".join(sorted(record.keywords)),
    )


def format_records_table(records: Sequence[CorpusRecord]) -> str:
    """Render records as the ASCII table of Table 1."""
    rows = [_COLUMNS] + [_row_of(record) for record in records]
    widths = [max(len(row[i]) for row in rows) for i in range(len(_COLUMNS))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)
