"""Workload substrates: synthetic corpus and query logs.

The paper evaluates on 131,180 website records from the PCHome portal
directory (mean 7.3 keywords per record, Figure 5's right-skewed size
distribution) and on two weeks of PCHome query logs whose ten most
popular queries cover more than 60% of daily volume.  Neither data set
is public; :mod:`repro.workload.corpus` and
:mod:`repro.workload.queries` generate synthetic equivalents matching
the published statistics (see DESIGN.md, "Substitutions").
"""

from repro.workload.corpus import CorpusRecord, SyntheticCorpus
from repro.workload.distributions import (
    DiscretizedLogNormal,
    EmpiricalDistribution,
    fit_lognormal_to_mean,
)
from repro.workload.queries import Query, QueryLogGenerator

__all__ = [
    "CorpusRecord",
    "DiscretizedLogNormal",
    "EmpiricalDistribution",
    "Query",
    "QueryLogGenerator",
    "SyntheticCorpus",
    "fit_lognormal_to_mean",
]
