"""Synthetic query logs (the paper's PCHome two-week logs).

The published statistics the generator reproduces:

* query keyword-set sizes m = 1..5 (the range Figure 8 sweeps);
* every query has at least one matching object (queries are sampled as
  subsets of real objects' keyword sets, so ``|O_K| >= 1`` by
  construction — Figure 8's recall axis needs this);
* query popularity is heavily skewed: the ten most popular queries
  account for more than 60% of daily volume (footnote 1), reproduced by
  a Zipf over the query pool whose exponent is calibrated to that head
  share by :func:`repro.util.zipf.calibrate_exponent_for_head_share`.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.util.rng import make_rng, spawn_rng
from repro.util.zipf import ZipfDistribution, calibrate_exponent_for_head_share
from repro.workload.corpus import SyntheticCorpus

__all__ = ["Query", "QueryLogGenerator", "PAPER_QUERIES_PER_DAY"]

PAPER_QUERIES_PER_DAY = 178_000

_DEFAULT_SIZE_SHARES: dict[int, float] = {1: 0.30, 2: 0.30, 3: 0.20, 4: 0.12, 5: 0.08}


@dataclass(frozen=True)
class Query:
    """One logged query: the keyword set and the time of day (seconds)."""

    keywords: frozenset[str]
    time: float

    @property
    def size(self) -> int:
        return len(self.keywords)


class QueryLogGenerator:
    """Builds a ranked query pool from a corpus, then samples Zipf streams.

    The pool interleaves sizes 1..5 in configurable shares; candidates
    of size m are m-subsets of real objects' keyword sets, ranked by an
    upper bound on their keyword frequency (the minimum single-keyword
    frequency), so rank 1 is a genuinely popular query.
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        *,
        pool_size: int = 2_000,
        size_shares: dict[int, float] | None = None,
        top_queries: int = 10,
        head_share: float = 0.6,
        seed: int | random.Random | None = 0,
    ):
        if pool_size < top_queries:
            raise ValueError(
                f"pool_size must be >= top_queries, got {pool_size} < {top_queries}"
            )
        self.corpus = corpus
        self.top_queries = top_queries
        self.head_share = head_share
        shares = dict(_DEFAULT_SIZE_SHARES) if size_shares is None else dict(size_shares)
        if any(share < 0 for share in shares.values()) or sum(shares.values()) <= 0:
            raise ValueError("size_shares must be non-negative with positive sum")
        parent = make_rng(seed)
        self._pool_rng = spawn_rng(parent, "pool")
        self._stream_rng = spawn_rng(parent, "stream")
        self._frequencies = corpus.keyword_frequencies()
        self.pool: list[frozenset[str]] = self._build_pool(pool_size, shares)
        self.zipf_exponent = calibrate_exponent_for_head_share(
            n=len(self.pool), top=top_queries, target_share=head_share
        )
        self._zipf = ZipfDistribution(len(self.pool), self.zipf_exponent)

    # -- pool construction ------------------------------------------------

    def _build_pool(
        self, pool_size: int, shares: dict[int, float]
    ) -> list[frozenset[str]]:
        total_share = sum(shares.values())
        candidates: list[tuple[int, frozenset[str]]] = []
        for size, share in sorted(shares.items()):
            want = max(1, round(pool_size * share / total_share))
            candidates.extend(
                (self._popularity_bound(query), query)
                for query in self._candidates_of_size(size, want)
            )
        # Rank by the popularity bound, descending; ties broken
        # deterministically by the keyword tuple.
        candidates.sort(key=lambda item: (-item[0], tuple(sorted(item[1]))))
        return [query for _, query in candidates[:pool_size]]

    def _candidates_of_size(self, size: int, want: int) -> list[frozenset[str]]:
        if size == 1:
            popular = self._frequencies.most_common(want)
            return [frozenset({keyword}) for keyword, _ in popular]
        seen: set[frozenset[str]] = set()
        result: list[frozenset[str]] = []
        attempts = 0
        records = self.corpus.records
        while len(result) < want and attempts < want * 60:
            attempts += 1
            record = records[self._pool_rng.randrange(len(records))]
            if record.keyword_count < size:
                continue
            keywords = sorted(record.keywords)
            subset = frozenset(self._pool_rng.sample(keywords, size))
            if subset not in seen:
                seen.add(subset)
                result.append(subset)
        return result

    def _popularity_bound(self, query: frozenset[str]) -> int:
        """min keyword frequency — an upper bound on |O_K|."""
        return min(self._frequencies.get(keyword, 0) for keyword in query)

    # -- sampling -----------------------------------------------------------

    def sample_query_set(self) -> frozenset[str]:
        return self.pool[self._zipf.sample(self._stream_rng) - 1]

    def generate(self, count: int, *, duration: float = 86_400.0) -> list[Query]:
        """An i.i.d. Zipf stream of ``count`` queries with sorted
        uniform-random timestamps over ``duration`` seconds."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        times = sorted(self._stream_rng.uniform(0.0, duration) for _ in range(count))
        ranks = self._zipf.sample_many(count, self._stream_rng)
        return [
            Query(self.pool[rank - 1], time) for rank, time in zip(ranks, times)
        ]

    def popular_sets(self, size: int, count: int) -> list[frozenset[str]]:
        """The ``count`` highest-ranked pool queries of exactly ``size``
        keywords — Figure 8 samples "some popular keyword sets of size
        m" this way."""
        selected = [query for query in self.pool if len(query) == size]
        return selected[:count]

    # -- validation helpers ----------------------------------------------------

    @staticmethod
    def head_share_of(queries: list[Query], top: int) -> float:
        """Empirical share of the ``top`` most frequent query sets."""
        if not queries:
            return 0.0
        counts = Counter(query.keywords for query in queries)
        heaviest = [count for _, count in counts.most_common(top)]
        return sum(heaviest) / len(queries)
