"""Bench net — loopback RPC throughput and latency of the TCP transport."""

import pathlib
import time

from repro.core.config import ServiceConfig
from repro.experiments.harness import ExperimentResult
from repro.net.cluster import LocalCluster

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_net.json"

CONFIG = ServiceConfig(dimension=6, num_dht_nodes=16, seed=11, cache_capacity=8)
RAW_RPCS = 2_000
QUERIES = 200


def run(config: ServiceConfig = CONFIG, raw_rpcs: int = RAW_RPCS, queries: int = QUERIES):
    """Measure the transport under two loads on a 16-node loopback cluster:

    * ``raw-rpc`` — back-to-back minimal RPCs between two fixed nodes,
      isolating framing + socket + correlation overhead;
    * ``superset-search`` — full protocol queries, the end-to-end cost a
      search pays over real sockets.
    """
    rows = []
    with LocalCluster(config) as cluster:
        transport = cluster.transport
        addresses = cluster.addresses()
        src, dst = addresses[0], addresses[-1]

        transport.rpc(src, dst, "chord.get_predecessor", {})  # open the pooled connection
        transport.metrics.reset("net.rpc_latency")
        started = time.monotonic()
        for _ in range(raw_rpcs):
            transport.rpc(src, dst, "chord.get_predecessor", {})
        elapsed = time.monotonic() - started
        latency = transport.metrics.summary("net.rpc_latency")
        rows.append(
            {
                "load": "raw-rpc",
                "operations": raw_rpcs,
                "ops_per_s": round(raw_rpcs / elapsed, 1),
                "latency_ms_p50": round(latency.p50 * transport.time_scale * 1e3, 4),
                "latency_ms_p95": round(latency.p95 * transport.time_scale * 1e3, 4),
                "latency_ms_p99": round(latency.p99 * transport.time_scale * 1e3, 4),
            }
        )

        service = cluster.service
        for number in range(64):
            service.publish(f"object-{number}", {"common", f"rare-{number % 8}"})
        transport.metrics.reset("net.rpc_latency")
        started = time.monotonic()
        for number in range(queries):
            service.superset_search({"common", f"rare-{number % 8}"}, threshold=4)
        elapsed = time.monotonic() - started
        latency = transport.metrics.summary("net.rpc_latency")
        rows.append(
            {
                "load": "superset-search",
                "operations": queries,
                "ops_per_s": round(queries / elapsed, 1),
                "latency_ms_p50": round(latency.p50 * transport.time_scale * 1e3, 4),
                "latency_ms_p95": round(latency.p95 * transport.time_scale * 1e3, 4),
                "latency_ms_p99": round(latency.p99 * transport.time_scale * 1e3, 4),
            }
        )

        counters = transport.metrics.counters()
        notes = [
            f"net.bytes_sent={counters.get('net.bytes_sent', 0)}",
            f"net.frames_sent={counters.get('net.frames_sent', 0)}",
            f"net.connections_opened={counters.get('net.connections_opened', 0)}",
            f"net.protocol_errors={counters.get('net.protocol_errors', 0)}",
        ]
    return ExperimentResult(
        experiment="net",
        description="loopback TCP transport: RPC throughput and latency",
        parameters={
            "num_dht_nodes": config.num_dht_nodes,
            "dimension": config.dimension,
            "seed": config.seed,
            "raw_rpcs": raw_rpcs,
            "queries": queries,
        },
        rows=rows,
        notes=notes,
    )


def test_net(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    by_load = {row["load"]: row for row in result.rows}
    # Loopback floor, generous enough for slow CI machines.
    assert by_load["raw-rpc"]["ops_per_s"] > 200
    assert by_load["superset-search"]["ops_per_s"] > 5
    assert by_load["raw-rpc"]["latency_ms_p50"] > 0
    counters = dict(note.split("=") for note in result.notes)
    assert int(counters["net.protocol_errors"]) == 0
    assert int(counters["net.frames_sent"]) > 2 * RAW_RPCS
