"""Bench net — loopback RPC throughput/latency and codec micro-costs.

Two levels of measurement, one artifact:

* ``codec-encode`` / ``codec-decode`` micro rows — per-frame CPU cost
  and bytes on the wire for the protocol's representative frame shapes
  (an index put, a scan request, a posting-heavy scan reply, a gossip
  datagram), under both codecs.  This is where the binary codec's
  bytes-per-frame claim is pinned.
* ``raw-rpc`` / ``superset-search`` cluster rows — the end-to-end
  transport cost over real loopback sockets, run once per codec so the
  v1-JSON and v2-binary stacks appear side by side in BENCH_net.json.
"""

import pathlib
import time
from dataclasses import replace

from repro.core.config import ServiceConfig
from repro.experiments.harness import ExperimentResult
from repro.net.cluster import LocalCluster
from repro.net.codec import CODEC_BINARY, CODEC_JSON, PostingList
from repro.net.wire import Frame, FrameType, decode_frame, encode_frame

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_net.json"

CONFIG = ServiceConfig(dimension=6, num_dht_nodes=16, seed=11, cache_capacity=8)
RAW_RPCS = 2_000
QUERIES = 200
MICRO_OPS = 2_000
ROUNDS = 3

CODEC_IDS = {"json": CODEC_JSON, "binary": CODEC_BINARY}

# The frame shapes the protocol actually sends, hot-path first.
FRAME_SHAPES = {
    "put": Frame(
        FrameType.REQUEST, "hindex.put", 12, 34, 7,
        {
            "logical": 5,
            "object_id": "paper.pdf",
            "keywords": frozenset({"dht", "search", "p2p"}),
        },
    ),
    "scan-request": Frame(
        FrameType.REQUEST, "hindex.scan", 12, 34, 8,
        {"logical": 5, "keywords": frozenset({"dht"}), "limit": 10},
    ),
    "scan-reply": Frame(
        FrameType.REPLY, "hindex.scan", 34, 12, 8,
        {
            "matches": PostingList(
                (frozenset({f"kw-{i}", "dht"}), (f"object-{i}.pdf",)) for i in range(8)
            ),
            "truncated": False,
        },
    ),
    "gossip": Frame(
        FrameType.GOSSIP, "memb.gossip", 12, 34, 0,
        {"heard": {str(n): (n, 1000 + n) for n in range(8)}, "round": 12},
    ),
}


def codec_micro_rows(micro_ops: int = MICRO_OPS) -> list[dict]:
    """Encode/decode µs per frame and bytes on the wire, per shape per
    codec."""
    rows = []
    for shape, frame in FRAME_SHAPES.items():
        for codec, codec_id in CODEC_IDS.items():
            data = encode_frame(frame, codec=codec_id)
            started = time.process_time()
            for _ in range(micro_ops):
                encode_frame(frame, codec=codec_id)
            encode_cpu = time.process_time() - started
            started = time.process_time()
            for _ in range(micro_ops):
                decode_frame(data)
            decode_cpu = time.process_time() - started
            rows.append(
                {
                    "load": "codec-frame",
                    "shape": shape,
                    "codec": codec,
                    "bytes": len(data),
                    "encode_us": round(encode_cpu / micro_ops * 1e6, 3),
                    "decode_us": round(decode_cpu / micro_ops * 1e6, 3),
                }
            )
    return rows


def run_cluster(
    config: ServiceConfig, raw_rpcs: int, queries: int
) -> tuple[list[dict], list[str]]:
    """The two cluster loads under one codec; rows carry per-load
    bytes-on-the-wire deltas."""
    rows = []
    with LocalCluster(config) as cluster:
        transport = cluster.transport
        addresses = cluster.addresses()
        src, dst = addresses[0], addresses[-1]

        transport.rpc(src, dst, "chord.get_predecessor", {})  # open the pooled connection
        transport.metrics.reset("net.rpc_latency")
        bytes_before = transport.metrics.counter("net.bytes_sent")
        started = time.monotonic()
        for _ in range(raw_rpcs):
            transport.rpc(src, dst, "chord.get_predecessor", {})
        elapsed = time.monotonic() - started
        latency = transport.metrics.summary("net.rpc_latency")
        rows.append(
            {
                "load": "raw-rpc",
                "codec": config.codec,
                "operations": raw_rpcs,
                "ops_per_s": round(raw_rpcs / elapsed, 1),
                "bytes_sent": transport.metrics.counter("net.bytes_sent") - bytes_before,
                "latency_ms_p50": round(latency.p50 * transport.time_scale * 1e3, 4),
                "latency_ms_p95": round(latency.p95 * transport.time_scale * 1e3, 4),
                "latency_ms_p99": round(latency.p99 * transport.time_scale * 1e3, 4),
            }
        )

        service = cluster.service
        for number in range(64):
            service.publish(f"object-{number}", {"common", f"rare-{number % 8}"})
        transport.metrics.reset("net.rpc_latency")
        bytes_before = transport.metrics.counter("net.bytes_sent")
        started = time.monotonic()
        for number in range(queries):
            service.superset_search({"common", f"rare-{number % 8}"}, threshold=4)
        elapsed = time.monotonic() - started
        latency = transport.metrics.summary("net.rpc_latency")
        rows.append(
            {
                "load": "superset-search",
                "codec": config.codec,
                "operations": queries,
                "ops_per_s": round(queries / elapsed, 1),
                "bytes_sent": transport.metrics.counter("net.bytes_sent") - bytes_before,
                "latency_ms_p50": round(latency.p50 * transport.time_scale * 1e3, 4),
                "latency_ms_p95": round(latency.p95 * transport.time_scale * 1e3, 4),
                "latency_ms_p99": round(latency.p99 * transport.time_scale * 1e3, 4),
            }
        )

        counters = transport.metrics.counters()
        notes = [
            f"net.bytes_sent[{config.codec}]={counters.get('net.bytes_sent', 0)}",
            f"net.frames_sent[{config.codec}]={counters.get('net.frames_sent', 0)}",
            f"net.connections_opened[{config.codec}]={counters.get('net.connections_opened', 0)}",
            f"net.protocol_errors[{config.codec}]={counters.get('net.protocol_errors', 0)}",
        ]
    return rows, notes


def run(
    config: ServiceConfig = CONFIG,
    raw_rpcs: int = RAW_RPCS,
    queries: int = QUERIES,
    rounds: int = ROUNDS,
):
    """Codec micro rows, then the cluster loads best-of-``rounds`` per
    codec (loopback throughput on a shared box is noisy; bytes-on-wire
    are deterministic and identical across rounds)."""
    rows = codec_micro_rows()
    notes = []
    for codec in ("json", "binary"):
        best: dict[str, dict] = {}
        cluster_notes: list[str] = []
        for _ in range(rounds):
            round_rows, cluster_notes = run_cluster(
                replace(config, codec=codec), raw_rpcs, queries
            )
            for row in round_rows:
                kept = best.get(row["load"])
                if kept is None or row["ops_per_s"] > kept["ops_per_s"]:
                    best[row["load"]] = row
        rows.extend(best[load] for load in ("raw-rpc", "superset-search"))
        notes.extend(cluster_notes)
    return ExperimentResult(
        experiment="net",
        description="loopback TCP transport: RPC throughput, latency, codec costs",
        parameters={
            "num_dht_nodes": config.num_dht_nodes,
            "dimension": config.dimension,
            "seed": config.seed,
            "raw_rpcs": raw_rpcs,
            "queries": queries,
            "micro_ops": MICRO_OPS,
            "rounds": rounds,
        },
        rows=rows,
        notes=notes,
    )


def test_net(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    by_load = {
        (row["load"], row["codec"]): row for row in result.rows if "codec" in row
    }
    micro = {
        (row["shape"], row["codec"]): row
        for row in result.rows
        if row["load"] == "codec-frame"
    }
    # Loopback floors, generous enough for slow CI machines.
    for codec in ("json", "binary"):
        assert by_load[("raw-rpc", codec)]["ops_per_s"] > 200
        assert by_load[("superset-search", codec)]["ops_per_s"] > 5
        assert by_load[("raw-rpc", codec)]["latency_ms_p50"] > 0
    counters = dict(note.split("=") for note in result.notes)
    assert int(counters["net.protocol_errors[json]"]) == 0
    assert int(counters["net.protocol_errors[binary]"]) == 0
    assert int(counters["net.frames_sent[binary]"]) > 2 * RAW_RPCS
    # The codec's headline claims: smaller frames on every shape, and
    # >= 30% fewer bytes end-to-end on the search workload.
    for shape in FRAME_SHAPES:
        assert micro[(shape, "binary")]["bytes"] < micro[(shape, "json")]["bytes"]
    binary_bytes = by_load[("superset-search", "binary")]["bytes_sent"]
    json_bytes = by_load[("superset-search", "json")]["bytes_sent"]
    assert binary_bytes <= 0.7 * json_bytes
