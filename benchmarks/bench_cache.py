"""Bench cache — cooperative SBT-path caching vs the root-only FIFO.

The Figure 9 skewed stream (Zipf head, pool of 200 distinct queries)
is replayed at 10x and 100x the pool size against two arms with the
same per-node budget: the paper's root-only FIFO, and the cooperative
tier that additionally fills each walk root's direct SBT children with
their subtree aggregates (docs/protocol.md §16).  A write stream runs
concurrently — every ``write_every`` queries an object is inserted
under (or deleted from) keyword sets the popular queries cover — so
every cached entry is repeatedly invalidated or patched by the
coherence protocol while being served.

Every query result is checked against a live posting-list oracle
maintained in lockstep with the writes: one divergent result is a
stale read and fails the bench.  The acceptance bar is that the
cooperative arm contacts strictly fewer nodes than root-only at both
volumes with zero stale reads — possible at equal budget because
speculative fills are admission-controlled (they never displace the
demand entries carrying the root hit rate) and prune re-walks after
root evictions.
"""

import pathlib

from repro.core.config import ServiceConfig
from repro.core.search import TraversalOrder
from repro.core.service import KeywordSearchService
from repro.experiments.harness import ExperimentResult, default_corpus
from repro.workload.queries import QueryLogGenerator

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_cache.json"

DIMENSION = 8
NUM_DHT_NODES = 16
NUM_OBJECTS = 2048
POOL_SIZE = 200
CACHE_CAPACITY = 8  # entries per physical node; alpha = 8*16/2048 = 1/16
WRITE_EVERY = 10
SEED = 0


def _intersect(postings: dict[str, set], keywords) -> set:
    sets = sorted((postings.get(k, set()) for k in keywords), key=len)
    result = set(sets[0]) if sets else set()
    for other in sets[1:]:
        result &= other
    return result


def _replay(service, stream, postings, records):
    """Replay queries with interleaved writes; verify against the oracle.

    Writes alternate insert/delete of churn objects cloning existing
    records' keyword sets, so each write lands under whatever popular
    queries that record matches and must invalidate (or patch) their
    cached results before the very next query reads them.
    """
    contacted = hits = stale = writes = 0
    live_churn: list[tuple[str, frozenset, int]] = []
    for number, query in enumerate(stream):
        if number and number % WRITE_EVERY == 0:
            if writes % 2 == 0 or not live_churn:
                template = records[writes % len(records)]
                object_id = f"churn-{writes}"
                published = service.publish(object_id, template.keywords)
                live_churn.append((object_id, published.keywords, published.holder))
                for keyword in published.keywords:
                    postings.setdefault(keyword, set()).add(object_id)
            else:
                object_id, keywords, holder = live_churn.pop(0)
                service.unpublish(object_id, holder=holder)
                for keyword in keywords:
                    postings[keyword].discard(object_id)
            writes += 1
        result = service.superset_search(
            query.keywords, order=TraversalOrder.TOP_DOWN, use_cache=True
        )
        contacted += len(result.visits)
        hits += result.cache_hit
        if set(result.object_ids) != _intersect(postings, query.keywords):
            stale += 1
    return contacted, hits, stale, writes


def run(
    num_objects: int = NUM_OBJECTS,
    pool_size: int = POOL_SIZE,
    cache_capacity: int = CACHE_CAPACITY,
    volumes: tuple = (10, 100),
    seed: int = SEED,
):
    """Nodes contacted per query, cooperative vs root-only, under writes."""
    corpus = default_corpus(num_objects, seed)
    generator = QueryLogGenerator(corpus, pool_size=pool_size, seed=seed + 1)
    total_nodes = 2**DIMENSION
    rows = []
    for volume in volumes:
        stream = generator.generate(volume * pool_size)
        stats = {}
        for cooperative in (False, True):
            config = ServiceConfig(
                dimension=DIMENSION,
                num_dht_nodes=NUM_DHT_NODES,
                seed=seed,
                cache_capacity=cache_capacity,
                cooperative_cache=cooperative,
            )
            service = KeywordSearchService.create(config)
            for record in corpus.records:
                service.publish(record.object_id, record.keywords)
            postings = {k: set(v) for k, v in corpus.inverted_index().items()}
            stats[cooperative] = _replay(service, stream, postings, corpus.records)
        for cooperative in (False, True):
            contacted, hits, stale, writes = stats[cooperative]
            rows.append(
                {
                    "volume": volume,
                    "queries": len(stream),
                    "arm": "cooperative" if cooperative else "root-only",
                    "nodes_contacted": contacted,
                    "node_fraction": round(contacted / (len(stream) * total_nodes), 4),
                    "root_hit_rate": round(hits / len(stream), 4),
                    "writes": writes,
                    "stale_reads": stale,
                }
            )
    return ExperimentResult(
        experiment="cache",
        description="cooperative SBT-path cache vs root-only FIFO under concurrent writes",
        parameters={
            "dimension": DIMENSION,
            "num_dht_nodes": NUM_DHT_NODES,
            "num_objects": NUM_OBJECTS,
            "pool_size": POOL_SIZE,
            "cache_capacity": CACHE_CAPACITY,
            "write_every": WRITE_EVERY,
            "seed": SEED,
        },
        rows=rows,
        notes=[
            "both arms share the per-node budget; cooperative adds speculative",
            "depth-1 subtree fills that never displace demand entries;",
            "stale_reads compares every result to a live posting-list oracle.",
        ],
    )


def test_cache(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    by_volume = {}
    for row in result.rows:
        by_volume.setdefault(row["volume"], {})[row["arm"]] = row
    for volume, arms in by_volume.items():
        # Coherence: no query may ever observe a pre-write cached result.
        assert arms["root-only"]["stale_reads"] == 0
        assert arms["cooperative"]["stale_reads"] == 0
        # The speculative tier must never cost demand hits...
        assert arms["cooperative"]["root_hit_rate"] >= arms["root-only"]["root_hit_rate"]
        # ...and must prune enough re-walks to win on nodes contacted.
        assert (
            arms["cooperative"]["nodes_contacted"] < arms["root-only"]["nodes_contacted"]
        )
