"""Bench X6 — bandwidth: object references shipped per operation."""

from repro.experiments import bandwidth

from benchmarks.conftest import run_once


def test_bandwidth(benchmark, record_result):
    result = run_once(
        benchmark,
        bandwidth.run,
        num_objects=8_192,
        seed=0,
        dimension=10,
        num_dht_nodes=64,
        query_sizes=(1, 2, 3),
        queries_per_size=6,
    )
    record_result(result)
    by_op = {row["operation"]: row for row in result.rows}
    # Multi-keyword queries: DII ships posting unions, we ship matches.
    for m in (2, 3):
        row = by_op[f"query m={m}"]
        assert row["dii_refs_shipped"] > row["hypercube_refs_shipped"]
    # Inserts: 1 vs k vs C(k,1)+C(k,2).
    assert by_op["insert k=7"]["hypercube_refs_shipped"] == 1
    assert by_op["insert k=7"]["dii_refs_shipped"] == 7
    assert by_op["insert k=7"]["kss_refs_shipped"] == 28
