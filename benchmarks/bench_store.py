"""Bench store — the write-path cost of durability, and cold recovery.

The durable store's contract: with the default :class:`MemoryStore` the
simulator is untouched (that path is byte-identity-checked by the
experiment tests), and opting a deployment into :class:`FileStore`
(``--data-dir``) must cost under 10% on the write path of a real
workload.  This benchmark publishes the Figure 8 corpus (r=10 hypercube,
4096 objects — the reference shard size for recovery) through the full
stack three times — all-memory, every node on a WAL-backed FileStore
under the default binary record codec, and the same under the v1 JSON
codec — and compares insert CPU floors.  It then measures what the durability buys:
cold recovery of the whole 4k-object deployment from the WALs alone and
from snapshots (post-compaction), verifying the recovered stores carry
every record the live run wrote.
"""

import gc
import pathlib
import tempfile
import time

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.experiments.harness import ExperimentResult, default_corpus
from repro.store.file import FileStore
from repro.workload.queries import QueryLogGenerator

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_store.json"

NUM_OBJECTS = 4096
DIMENSION = 10
NUM_DHT_NODES = 64
ROUNDS = 3
OVERHEAD_BUDGET = 0.10


def run(
    num_objects: int = NUM_OBJECTS,
    dimension: int = DIMENSION,
    num_dht_nodes: int = NUM_DHT_NODES,
    rounds: int = ROUNDS,
    seed: int = 0,
):
    """Best-of-``rounds`` CPU time for the publish phase, memory vs
    durable, plus cold-recovery timings over the durable directories.

    Same measurement discipline as ``bench_obs``: process CPU time (the
    workload is CPU + page-cache writes; wall clock would drown the
    signal in scheduler noise), GC off inside the timed region, and the
    two modes alternating order across rounds so both sample the same
    CPU-frequency epoch.
    """
    corpus = default_corpus(num_objects, seed)
    items = [(record.object_id, record.keywords) for record in corpus.records]
    config = ServiceConfig(dimension=dimension, num_dht_nodes=num_dht_nodes, seed=seed)
    queries = [
        set(query)
        for query in QueryLogGenerator(corpus, seed=seed + 1).popular_sets(2, 4)
    ]

    def build(store_factory=None) -> tuple[KeywordSearchService, float]:
        service = KeywordSearchService.create(config, store_factory=store_factory)
        holder = service.dolr.any_address()
        started = time.process_time()
        for object_id, keywords in items:
            service.index.insert(object_id, keywords, holder)
        return service, time.process_time() - started

    memory_best = float("inf")
    durable_best = float("inf")
    durable_json_best = float("inf")
    recovery_wal_best = float("inf")
    recovery_snap_best = float("inf")
    recovered_records = 0
    wal_appends = 0
    parity_failures = 0
    gc.collect()
    gc.disable()
    try:
        for round_number in range(rounds):
            with tempfile.TemporaryDirectory() as directory:
                base = pathlib.Path(directory)

                def factory(address: int) -> FileStore:
                    return FileStore(base / f"node-{address}")

                def json_factory(address: int) -> FileStore:
                    return FileStore(base / f"json-{address}", codec="json")

                if round_number % 2 == 0:
                    memory_service, memory_cpu = build()
                    durable_service, durable_cpu = build(factory)
                    _json_service, durable_json_cpu = build(json_factory)
                else:
                    _json_service, durable_json_cpu = build(json_factory)
                    durable_service, durable_cpu = build(factory)
                    memory_service, memory_cpu = build()
                _json_service.close_stores()
                memory_best = min(memory_best, memory_cpu)
                durable_best = min(durable_best, durable_cpu)
                durable_json_best = min(durable_json_best, durable_json_cpu)

                # Durability must not perturb results (spot check).
                parity_failures += sum(
                    1
                    for query in queries
                    if durable_service.superset_search(query).results()
                    != memory_service.superset_search(query).results()
                )
                wal_appends = durable_service.network.metrics.counter("store.wal_appends")
                addresses = durable_service.dolr.addresses()
                durable_service.close_stores()

                # Cold recovery from the WALs a crash would leave.
                started = time.process_time()
                recovered_records = sum(
                    FileStore(base / f"node-{address}").recover().records
                    for address in addresses
                )
                recovery_wal_best = min(recovery_wal_best, time.process_time() - started)

                # Fold each WAL into a snapshot, then recover again.
                reopened = []
                for address in addresses:
                    store = FileStore(base / f"node-{address}")
                    state = store.recover()
                    store.bind(tables=lambda s=state: s.tables, refs=lambda s=state: s.refs)
                    store.compact()
                    store.close()
                    reopened.append(store.directory)
                started = time.process_time()
                from_snapshots = sum(
                    FileStore(path).recover().records for path in reopened
                )
                recovery_snap_best = min(
                    recovery_snap_best, time.process_time() - started
                )
                assert from_snapshots <= recovered_records  # compaction only folds
    finally:
        gc.enable()

    overhead = (durable_best - memory_best) / memory_best
    overhead_json = (durable_json_best - memory_best) / memory_best
    rows = [
        {
            "mode": "memory",
            "objects": num_objects,
            "insert_cpu_ms": round(memory_best * 1e3, 3),
        },
        {
            "mode": "durable",
            "objects": num_objects,
            "insert_cpu_ms": round(durable_best * 1e3, 3),
            "wal_appends": wal_appends,
        },
        {
            "mode": "durable-json",
            "objects": num_objects,
            "insert_cpu_ms": round(durable_json_best * 1e3, 3),
        },
        {
            "mode": "recover-wal",
            "objects": num_objects,
            "recovery_cpu_ms": round(recovery_wal_best * 1e3, 3),
            "recovered_records": recovered_records,
        },
        {
            "mode": "recover-snapshot",
            "objects": num_objects,
            "recovery_cpu_ms": round(recovery_snap_best * 1e3, 3),
        },
    ]
    return ExperimentResult(
        experiment="store",
        description="durable write-path overhead and cold recovery (Figure 8 corpus)",
        parameters={
            "num_objects": num_objects,
            "dimension": dimension,
            "num_dht_nodes": num_dht_nodes,
            "rounds": rounds,
            "seed": seed,
        },
        rows=rows,
        notes=[
            f"overhead={overhead:+.4f}",
            f"overhead_json={overhead_json:+.4f}",
            f"budget={OVERHEAD_BUDGET}",
            f"wal_appends={wal_appends}",
            f"recovered_records={recovered_records}",
            f"parity_failures={parity_failures}",
        ],
    )


def test_store(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    notes = dict(note.split("=") for note in result.notes)
    assert int(notes["parity_failures"]) == 0
    assert int(notes["wal_appends"]) > 0
    assert int(notes["recovered_records"]) > 0
    assert float(notes["overhead"]) < OVERHEAD_BUDGET
