"""Bench F5 — Figure 5: keyword-set-size distribution of the corpus.

Runs at full paper scale (131,180 objects); the corpus is memoized and
shared with the other full-scale static benchmarks.
"""

from repro.experiments import fig5
from repro.workload.corpus import PAPER_CORPUS_SIZE

from benchmarks.conftest import run_once


def test_fig5(benchmark, record_result):
    result = run_once(benchmark, fig5.run, num_objects=PAPER_CORPUS_SIZE, seed=0)
    record_result(result)
    total = sum(row["objects"] for row in result.rows)
    assert total == PAPER_CORPUS_SIZE
    mean = sum(row["keyword_set_size"] * row["objects"] for row in result.rows) / total
    assert abs(mean - 7.3) < 0.1  # the paper's mean
