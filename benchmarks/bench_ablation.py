"""Bench X1 — Section 3.5 complexity claims and traversal ablation."""

from repro.experiments import ablation

from benchmarks.conftest import run_once


def test_ablation(benchmark, record_result):
    result = run_once(
        benchmark,
        ablation.run,
        num_objects=4_096,
        seed=0,
        dimension=8,
        query_sizes=(1, 2, 3),
        queries_per_size=4,
    )
    record_result(result)
    supersets = [r for r in result.rows if str(r["operation"]).startswith("superset")]
    assert supersets
    for row in supersets:
        assert row["same_object_set"] is True
        assert row["visits"] == row["subcube_size"]  # exhaustive search
        if row["operation"] == "superset[parallel]":
            assert row["rounds"] == row["round_bound"]
    singles = [r for r in result.rows if r["operation"] in ("insert", "pin_search", "delete")]
    for row in singles:
        assert row["index_requests"] <= 2
