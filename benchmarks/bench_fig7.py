"""Bench F7 — Figure 7: object vs node distribution over |One(u)|.

Full paper scale, the eight dimensions of the paper's chart grid.
Shape assertions: the object and node weight distributions are closest
around r = 10, and Equation (1) predicts the empirical object curve.
"""

from repro.experiments import fig7
from repro.workload.corpus import PAPER_CORPUS_SIZE

from benchmarks.conftest import run_once


def test_fig7(benchmark, record_result):
    result = run_once(
        benchmark,
        fig7.run,
        num_objects=PAPER_CORPUS_SIZE,
        seed=0,
        dimensions=(6, 8, 10, 11, 12, 13, 14, 16),
    )
    record_result(result)
    distances = {}
    for note in result.notes:
        r = int(note.split(":")[0][2:])
        distances[r] = float(note.split("TV(object, node) = ")[1].split(",")[0])
    best = min(distances, key=distances.get)
    assert best in (10, 11)  # the paper's optimum neighbourhood
    for row in result.rows:
        assert abs(row["object_fraction"] - row["object_fraction_eq1"]) < 0.03
