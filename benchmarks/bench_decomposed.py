"""Bench X3 — decomposed sub-hypercubes vs one flat hypercube."""

from repro.experiments import decomposed

from benchmarks.conftest import run_once


def test_decomposed(benchmark, record_result):
    result = run_once(
        benchmark,
        decomposed.run,
        num_objects=4_096,
        seed=0,
        flat_dimension=12,
        decompositions=((2, 6), (3, 4)),
        query_sizes=(1, 2, 3),
        queries_per_size=5,
    )
    record_result(result)
    by_scheme = {row["scheme"]: row for row in result.rows}
    flat = by_scheme["flat-12"]
    for scheme, row in by_scheme.items():
        if scheme.startswith("decomposed"):
            assert row["mean_visits"] < flat["mean_visits"]
            assert row["storage_multiplier"] >= 1.0
            assert 0 < row["mean_precision"] <= 1.0
