"""Bench X7 — recall under continuous churn, with/without maintenance."""

from repro.experiments import churn

from benchmarks.conftest import run_once


def test_churn(benchmark, record_result):
    result = run_once(
        benchmark,
        churn.run,
        num_objects=4_096,
        seed=0,
        dimension=8,
        num_dht_nodes=48,
        epochs=6,
        joins_per_epoch=4,
        leaves_per_epoch=4,
    )
    record_result(result)
    final = {
        row["scheme"]: row
        for row in result.rows
        if row["epoch"] == max(r["epoch"] for r in result.rows)
    }
    assert final["maintained"]["mean_recall"] == 1.0
    assert final["maintained"]["indexed_references"] == 4_096
    assert final["no-maintenance"]["mean_recall"] < 1.0
    assert final["no-maintenance"]["indexed_references"] < 4_096
