"""Bench churn — recall dip and reconvergence under live membership churn.

A 16-node loopback cluster with gossip membership and a 2-way
replicated index serves a closed-loop query stream (the PR-6 load
harness) while nodes churn at 1, 5, and 10 events per minute — each
level a fresh cluster facing one organic crash (the failure detector
must notice) and one brand-new join, spaced to the level's rate.

Two probe clients sample recall at ~2 Hz throughout:

* ``stale`` — a fleet client left alone: it refreshes its placement
  view only when an RPC fails against an unreachable peer.  A crash it
  survives via the replica fallback and the error-triggered refresh; a
  join it cannot see (the old owner stays reachable, its table simply
  moved), so its recall shows what lazy clients experience.
* ``refreshed`` — fetches the live peer book before every sweep, so its
  recall measures the *infrastructure*: how deep search degrades while
  transfer/repair is in flight, and how long until the deployment again
  answers every query in full.

Per (rate, probe) the result records the dip depth (1 - min recall)
and the reconvergence time (first churn event -> last sub-full sample).
"""

import pathlib
import threading
import time

from repro.client import connect
from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.experiments.harness import ExperimentResult
from repro.load import ClosedLoopLoad, FixedQueryMix
from repro.membership import MembershipPolicy
from repro.net.cluster import LocalCluster
from repro.sim.resilience import RetryPolicy

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_churn.json"

CONFIG = ServiceConfig(
    dimension=6,
    num_dht_nodes=16,
    seed=17,
    index_replicas=2,
    resilience=RetryPolicy(max_attempts=2, base_delay=8.0, jitter=0.0),
)
POLICY = MembershipPolicy(gossip_interval=0.1, fanout=3, suspicion_threshold=3)
EVENTS_PER_MINUTE = (1.0, 5.0, 10.0)
LOAD_WORKERS = 4
SAMPLE_PERIOD_S = 0.5

QUERIES = (
    frozenset({"common"}),
    frozenset({"common", "tag"}),
    frozenset({"common", "tag", "genre"}),
)


def corpus():
    items = []
    for number in range(96):
        keywords = {"common", f"x{number % 7}", f"y{number % 5}"}
        if number % 2 == 0:
            keywords.add("tag")
        if number % 3 == 0:
            keywords.add("genre")
        items.append((f"obj-{number}", keywords))
    return items


def expected_answers():
    simulator = KeywordSearchService.create(CONFIG)
    for object_id, keywords in corpus():
        simulator.publish(object_id, keywords)
    return {query: set(simulator.search(query).results()) for query in QUERIES}


def safe_victims(service):
    """Addresses whose loss the replicas can fully repair (every
    non-empty hosted table has a surviving copy elsewhere)."""
    victims = []
    for victim in service.dolr.addresses():
        safe, loaded = True, False
        for index in service.indexes:
            donors = [d for d in service.indexes if d is not index]
            for logical in index.mapping.logical_nodes_of(victim):
                rows = index.shard_at(victim).snapshot_records((index.namespace, logical))
                if not rows:
                    continue
                loaded = True
                if not donors or not any(
                    d.mapping.physical_owner(logical) != victim for d in donors
                ):
                    safe = False
        if safe and loaded:
            victims.append(victim)
    return victims


def widest_gap_address(addresses):
    ordered = sorted(addresses)
    width, start = max((b - a, a) for a, b in zip(ordered, ordered[1:]))
    return start + width // 2


def _sweep(client, expected):
    """Mean recall over the query mix, one client."""
    recalls = []
    for query, answer in expected.items():
        try:
            got = set(client.search(query).results())
        except Exception:  # noqa: BLE001 - a failed sweep is recall zero
            recalls.append(0.0)
            continue
        recalls.append(len(got & answer) / len(answer))
    return sum(recalls) / len(recalls)


def _summarize(rate, probe, samples, first_event_s, window_s):
    """One result row from a probe's (t, recall) series."""
    recalls = [recall for _, recall in samples]
    below = [t for t, recall in samples if recall < 1.0]
    reconverged = recalls[-1] == 1.0
    if not below:
        reconverge_s = 0.0
    elif reconverged:
        reconverge_s = max(0.0, max(below) - first_event_s)
    else:
        reconverge_s = window_s  # never, within the observation window
    return {
        "events_per_minute": rate,
        "probe": probe,
        "samples": len(samples),
        "min_recall": round(min(recalls), 4),
        "mean_recall": round(sum(recalls) / len(recalls), 4),
        "final_recall": round(recalls[-1], 4),
        "dip_depth": round(1.0 - min(recalls), 4),
        "reconverged": reconverged,
        "reconverge_s": round(reconverge_s, 2),
    }


def _run_level(rate, expected):
    """One churn level: fresh cluster, one crash + one join at ``rate``
    events per minute, probes sampling throughout."""
    spacing_s = 60.0 / rate
    window_s = spacing_s * 2.0
    schedule = [(spacing_s * 0.5, "crash"), (spacing_s * 1.5, "join")]
    rows, notes = [], []
    with LocalCluster(CONFIG, membership=POLICY) as cluster:
        for object_id, keywords in corpus():
            cluster.service.publish(object_id, keywords)

        load_client = connect(CONFIG, peers=cluster.endpoints)
        load_report = []
        load_thread = threading.Thread(
            target=lambda: load_report.append(
                ClosedLoopLoad(
                    load_client, FixedQueryMix(list(QUERIES)), workers=LOAD_WORKERS
                ).run(window_s + 1.0)
            ),
            daemon=True,
        )
        with connect(CONFIG, peers=cluster.endpoints) as stale, connect(
            CONFIG, peers=cluster.endpoints
        ) as refreshed:
            samples = {"stale": [], "refreshed": []}
            pending = list(schedule)
            events = []
            load_thread.start()
            start = time.monotonic()
            while (now := time.monotonic() - start) < window_s:
                while pending and now >= pending[0][0]:
                    _, kind = pending.pop(0)
                    if kind == "crash":
                        victim = safe_victims(cluster.service)[0]
                        cluster.crash_node(victim)
                        events.append((now, f"crash {victim}"))
                    else:
                        joiner = widest_gap_address(cluster.addresses())
                        moved = cluster.join_node(joiner)
                        events.append((now, f"join {joiner} ({moved} refs)"))
                samples["stale"].append((now, _sweep(stale, expected)))
                refreshed.refresh_membership()
                samples["refreshed"].append((now, _sweep(refreshed, expected)))
                time.sleep(SAMPLE_PERIOD_S)
            load_thread.join(timeout=window_s)
            load_client.close()

        first_event_s = events[0][0] if events else 0.0
        for probe in ("stale", "refreshed"):
            rows.append(_summarize(rate, probe, samples[probe], first_event_s, window_s))
        report = load_report[0] if load_report else None
        notes.append(
            f"{rate:g}/min: events=[{', '.join(f'{t:.1f}s {what}' for t, what in events)}]"
            + (
                f"; load ok={report.ok} errors={report.errors} "
                f"goodput={report.goodput:.0f}qps p99={report.p99_ms:.0f}ms"
                if report is not None
                else "; load report missing"
            )
        )
    return rows, notes


def run():
    expected = expected_answers()
    rows, notes = [], []
    for rate in EVENTS_PER_MINUTE:
        level_rows, level_notes = _run_level(rate, expected)
        rows.extend(level_rows)
        notes.extend(level_notes)
    return ExperimentResult(
        experiment="churn",
        description=(
            "recall dip and reconvergence under live join/crash churn, "
            "16-node loopback TCP, 2-way replicated index, closed-loop load"
        ),
        parameters={
            "num_dht_nodes": CONFIG.num_dht_nodes,
            "dimension": CONFIG.dimension,
            "seed": CONFIG.seed,
            "index_replicas": CONFIG.index_replicas,
            "events_per_minute": list(EVENTS_PER_MINUTE),
            "events_per_level": 2,
            "gossip_interval_s": POLICY.gossip_interval,
            "suspicion_threshold": POLICY.suspicion_threshold,
            "load_workers": LOAD_WORKERS,
            "sample_period_s": SAMPLE_PERIOD_S,
        },
        rows=rows,
        notes=notes,
    )


def test_churn(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    by_key = {(row["events_per_minute"], row["probe"]): row for row in result.rows}
    for rate in EVENTS_PER_MINUTE:
        for probe in ("stale", "refreshed"):
            row = by_key[(rate, probe)]
            assert row["samples"] > 0
        # The refreshed probe is the infrastructure's verdict: after the
        # transfer/repair machinery settles, every query answers in full
        # — the deployment reconverged at every churn rate.
        refreshed = by_key[(rate, "refreshed")]
        assert refreshed["reconverged"], f"{rate}/min never reconverged"
        assert refreshed["final_recall"] == 1.0
        assert refreshed["reconverge_s"] < 120.0
