"""Bench T1 — Table 1: sample website records."""

from repro.experiments import table1

from benchmarks.conftest import run_once


def test_table1(benchmark, record_result):
    result = run_once(
        benchmark, table1.run, synthetic_samples=3, num_objects=2_000, seed=0
    )
    record_result(result)
    sources = {row["source"] for row in result.rows}
    assert sources == {"paper", "synthetic"}
