"""Bench F9 — Figure 9: superset-search cost with per-node caches.

Scaled to preserve the paper's ratios (stream much longer than the
distinct-query pool; cache capacity per node meaningful relative to
distinct queries per root).  Shape assertions: the cost collapses as α
grows; at generous α the mean cost approaches one node per query and
the hit rate approaches 1.
"""

from repro.experiments import fig9

from benchmarks.conftest import run_once


def test_fig9(benchmark, record_result):
    result = run_once(
        benchmark,
        fig9.run,
        num_objects=16_384,
        seed=0,
        dimensions=(10,),
        recall_rates=(1.0,),
        alphas=(0.0, 1.0 / 24, 1.0 / 6, 1.0 / 3, 1.0),
        num_queries=6_000,
        pool_size=150,
        baseline_sample=600,
    )
    record_result(result)
    by_alpha = {row["alpha"]: row for row in result.rows}
    costs = [by_alpha[a]["node_fraction"] for a in sorted(by_alpha)]
    # Monotone non-increasing in alpha.
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
    # Large cache collapses the cost by more than an order of magnitude.
    assert by_alpha[1.0]["node_fraction"] < by_alpha[0.0]["node_fraction"] / 10
    assert by_alpha[1.0]["cache_hit_rate"] > 0.9
