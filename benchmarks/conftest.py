"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (table or figure) via
its experiment runner, times the end-to-end run with pytest-benchmark
(single round — these are figure regenerations, not micro-benchmarks),
and writes the rendered table to ``benchmarks/results/<id>.txt`` so the
numbers can be inspected after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.ascii import chart_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# How to draw each experiment's rows as the paper's figure:
# experiment -> (group_by, x, y).
CHART_SPECS: dict[str, tuple[str | None, str, str]] = {
    "fig5": (None, "keyword_set_size", "fraction"),
    "fig6": ("scheme", "node_fraction", "object_fraction"),
    "fig7": ("dimension", "weight", "object_fraction"),
    "fig8": ("query_size", "recall", "node_fraction"),
    "fig9": ("recall", "alpha", "node_fraction"),
    "fault": ("scheme", "failure_fraction", "mean_recall"),
    "churn": ("probe", "events_per_minute", "min_recall"),
}


@pytest.fixture()
def record_result():
    """Save an ExperimentResult's rendering (plus an ASCII rendition of
    the corresponding paper figure) under benchmarks/results."""

    def saver(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        rendered = result.render()
        spec = CHART_SPECS.get(result.experiment)
        if spec is not None:
            group_by, x, y = spec
            rendered += "\n\n" + chart_experiment(result, group_by=group_by, x=x, y=y)
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        return result

    return saver


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with exactly one round/iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
