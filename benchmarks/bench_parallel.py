"""Bench parallel — wall-clock of the concurrent traversal over real TCP.

Section 3.5's trade made measurable: the PARALLEL order answers a
superset query in ``r - |One| + 1`` RPC rounds where the sequential
TOP_DOWN walk pays one round trip per subcube node, at the same total
message cost.  A 16-node loopback cluster runs both orders for query
sizes m ∈ {1, 2, 3}; every node handler is wrapped with a small
emulated wire delay (loopback round trips are ~0.1 ms, far below any
real deployment) so the measured wall-clock is dominated by the
latency the paper's round model counts, not by Python dispatch
overhead.
"""

import pathlib
import time

from repro.core.config import ServiceConfig
from repro.core.search import TraversalOrder
from repro.experiments.harness import ExperimentResult
from repro.net.cluster import LocalCluster

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"

CONFIG = ServiceConfig(dimension=8, num_dht_nodes=16, seed=13)
NUM_OBJECTS = 96
QUERIES = {1: {"common"}, 2: {"common", "tag"}, 3: {"common", "tag", "genre"}}
WIRE_DELAY_MS = 2.0
REPETITIONS = 3


def emulate_wire_delay(transport, delay_s: float) -> None:
    """Make every delivered request pay ``delay_s`` of one-way latency.

    The sleep happens inside the handler, i.e. in the transport's
    handler thread pool — so concurrently in-flight requests overlap
    their delays exactly as real wire latency would.
    """
    for address in sorted(transport.addresses()):
        original = transport._handlers[address]

        def delayed(message, _inner=original):
            time.sleep(delay_s)
            return _inner(message)

        transport.register(address, delayed)


def run(
    config: ServiceConfig = CONFIG,
    num_objects: int = NUM_OBJECTS,
    wire_delay_ms: float = WIRE_DELAY_MS,
    repetitions: int = REPETITIONS,
):
    """Time PARALLEL vs TOP_DOWN superset search, one row per query size."""
    rows = []
    with LocalCluster(config) as cluster:
        service = cluster.service
        for number in range(num_objects):
            keywords = {"common", f"x{number % 7}", f"y{number % 5}"}
            if number % 2 == 0:
                keywords.add("tag")
            if number % 3 == 0:
                keywords.add("genre")
            service.publish(f"obj-{number}", keywords)
        emulate_wire_delay(cluster.transport, wire_delay_ms / 1e3)

        for size, query in QUERIES.items():
            stats = {}
            for order in (TraversalOrder.TOP_DOWN, TraversalOrder.PARALLEL):
                service.superset_search(query, order=order, use_cache=False)  # warm
                started = time.monotonic()
                for _ in range(repetitions):
                    result = service.superset_search(query, order=order, use_cache=False)
                elapsed = (time.monotonic() - started) / repetitions
                stats[order] = (elapsed, result)
            seq_elapsed, sequential = stats[TraversalOrder.TOP_DOWN]
            par_elapsed, parallel = stats[TraversalOrder.PARALLEL]
            assert set(parallel.object_ids) == set(sequential.object_ids)
            rows.append(
                {
                    "query_size": size,
                    "matches": len(parallel.objects),
                    "rounds_sequential": sequential.rounds,
                    "rounds_parallel": parallel.rounds,
                    "messages_sequential": sequential.messages,
                    "messages_parallel": parallel.messages,
                    "wall_ms_sequential": round(seq_elapsed * 1e3, 2),
                    "wall_ms_parallel": round(par_elapsed * 1e3, 2),
                    "speedup": round(seq_elapsed / par_elapsed, 2),
                }
            )
    return ExperimentResult(
        experiment="parallel",
        description="concurrent vs sequential SBT traversal over loopback TCP",
        parameters={
            "num_dht_nodes": config.num_dht_nodes,
            "dimension": config.dimension,
            "seed": config.seed,
            "num_objects": num_objects,
            "wire_delay_ms": wire_delay_ms,
            "repetitions": repetitions,
        },
        rows=rows,
        notes=[
            "PARALLEL dispatches whole SBT levels through Transport.rpc_many;",
            "TOP_DOWN is the paper's one-visit-at-a-time T_QUERY walk.",
        ],
    )


def test_parallel(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    for row in result.rows:
        # r - |One| batch rounds after the root's own scan (Section 3.5).
        assert row["rounds_parallel"] < row["rounds_sequential"]
        assert row["rounds_sequential"] == 2 ** (row["rounds_parallel"] - 1)
        # Same traffic: the walks visit the same subcube (TOP_DOWN may
        # additionally pay the initial requester->root T_QUERY round trip).
        assert row["messages_sequential"] - row["messages_parallel"] in (0, 2)
        # The acceptance bar: at least 2x faster at equal message cost.
        assert row["speedup"] >= 2.0
