"""Bench obs — the cost of per-query tracing on the Figure 8 workload.

The observability layer's contract is that it is free when off and
cheap when on: the tracing-off path must leave the paper experiments
byte-identical (a single global load per emission site), and the
tracing-on path must stay under a 5% wall-clock overhead on a real
search workload.  This benchmark measures both modes on the same
workload Figure 8 uses — a loaded r=10 index over 8192 objects, popular
2-keyword superset queries — and fails if the overhead budget is blown
or if tracing perturbs any observable search outcome.
"""

import gc
import pathlib
import time

from repro.core.search import SuperSetSearch
from repro.experiments.harness import ExperimentResult, build_loaded_index, default_corpus
from repro.workload.queries import QueryLogGenerator

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_obs.json"

NUM_OBJECTS = 8192
DIMENSION = 10
QUERY_SIZE = 2
NUM_QUERIES = 8
ROUNDS = 9
OVERHEAD_BUDGET = 0.05


def run(
    num_objects: int = NUM_OBJECTS,
    dimension: int = DIMENSION,
    query_size: int = QUERY_SIZE,
    num_queries: int = NUM_QUERIES,
    rounds: int = ROUNDS,
    seed: int = 0,
):
    """Time each query with tracing off and on, best-of-``rounds`` per
    query, and compare the summed floors.

    Three choices make the few-percent signal measurable on a noisy
    shared machine: process CPU time instead of wall clock (the workload
    is pure CPU; wall clock includes scheduler steal an order of
    magnitude larger than the effect), GC paused during the timed
    region, and off/on runs of the *same query* back-to-back with
    alternating order — so both modes sample the same CPU-frequency
    epoch and each (query, mode) minimum is a clean floor.
    """
    corpus = default_corpus(num_objects, seed)
    index = build_loaded_index(corpus, dimension, seed=seed)
    searcher = SuperSetSearch(index)
    queries = [
        set(query)
        for query in QueryLogGenerator(corpus, seed=seed + 1).popular_sets(
            query_size, num_queries
        )
    ]

    def once(query: set, trace: bool) -> float:
        started = time.process_time()
        searcher.run(query, trace=trace)
        return time.process_time() - started

    for query in queries:  # warm both paths before timing
        once(query, False)
        once(query, True)

    off_best = [float("inf")] * len(queries)
    on_best = [float("inf")] * len(queries)
    gc.collect()
    gc.disable()
    try:
        for round_number in range(rounds):
            for position, query in enumerate(queries):
                if (round_number + position) % 2 == 0:
                    off_best[position] = min(off_best[position], once(query, False))
                    on_best[position] = min(on_best[position], once(query, True))
                else:
                    on_best[position] = min(on_best[position], once(query, True))
                    off_best[position] = min(off_best[position], once(query, False))
    finally:
        gc.enable()

    off, on = sum(off_best), sum(on_best)
    overhead = (on - off) / off

    plain = [searcher.run(query, trace=False) for query in queries]
    traced = [searcher.run(query, trace=True) for query in queries]
    events = sum(len(result.trace.events) for result in traced)
    messages = sum(result.messages for result in traced)

    # Tracing must not perturb the search: same results, same accounting.
    perturbed = sum(
        1 for a, b in zip(plain, traced)
        if a != b or a.messages != b.messages or a.visits != b.visits
    )

    rows = [
        {
            "mode": "trace-off",
            "queries": len(queries),
            "best_cpu_ms": round(off * 1e3, 3),
            "cpu_ms_per_query": round(off / len(queries) * 1e3, 3),
        },
        {
            "mode": "trace-on",
            "queries": len(queries),
            "best_cpu_ms": round(on * 1e3, 3),
            "cpu_ms_per_query": round(on / len(queries) * 1e3, 3),
        },
    ]
    return ExperimentResult(
        experiment="obs",
        description="per-query tracing overhead on the Figure 8 workload",
        parameters={
            "num_objects": num_objects,
            "dimension": dimension,
            "query_size": query_size,
            "num_queries": num_queries,
            "rounds": rounds,
            "seed": seed,
        },
        rows=rows,
        notes=[
            f"overhead={overhead:+.4f}",
            f"budget={OVERHEAD_BUDGET}",
            f"trace_events={events}",
            f"traced_messages={messages}",
            f"perturbed_results={perturbed}",
        ],
    )


def test_obs(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    notes = dict(note.split("=") for note in result.notes)
    assert int(notes["perturbed_results"]) == 0
    assert int(notes["trace_events"]) > 0
    assert int(notes["traced_messages"]) > 0
    assert float(notes["overhead"]) < OVERHEAD_BUDGET
