"""Bench X2 — fault tolerance: hypercube vs DII under node failures."""

import json
import pathlib

from repro.experiments import fault

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_fault.json"


def test_fault(benchmark, record_result):
    result = run_once(
        benchmark,
        fault.run,
        num_objects=8_192,
        seed=0,
        dimension=10,
        num_dht_nodes=128,
        failure_fractions=(0.0, 0.05, 0.1, 0.2, 0.3),
        num_queries=60,
        loss_rates=(0.05, 0.1, 0.2),
        retry_attempts=(1, 2, 3),
    )
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    rows = {(r["scheme"], r["failure_fraction"]): r for r in result.rows}
    assert rows[("hypercube", 0.0)]["mean_recall"] == 1.0
    assert rows[("dii", 0.0)]["mean_recall"] == 1.0
    # Graceful degradation: hypercube recall falls roughly linearly.
    assert rows[("hypercube", 0.3)]["mean_recall"] > 0.45
    # DII blocks whole queries at least as often as the hypercube.
    for fraction in (0.1, 0.2, 0.3):
        assert (
            rows[("dii", fraction)]["blocked_fraction"]
            >= rows[("hypercube", fraction)]["blocked_fraction"] - 1e-9
        )
    # The messaging layer's contribution: a strict searcher raises on
    # the first dead node, a resilient one degrades and keeps strictly
    # more recall, without a single query raising.
    for fraction in (0.1, 0.2, 0.3):
        noretry = rows[("hypercube-noretry", fraction)]
        resilient = rows[("hypercube-resilient", fraction)]
        assert resilient["raised_fraction"] == 0.0
        assert resilient["mean_recall"] > noretry["mean_recall"]
        assert resilient["degraded_visits"] > 0.0
    # Transient loss: retries recover recall that single-shot delivery
    # loses, at a bounded cost in extra messages.
    for loss in (0.05, 0.1, 0.2):
        single = rows[("loss-retry1", loss)]
        retried = rows[("loss-retry3", loss)]
        assert retried["mean_recall"] > single["mean_recall"]
        assert retried["mean_recall"] > 0.9
    # Retry/deadline/breaker counters surfaced through MetricsRegistry.
    counters = dict(note.split("=") for note in result.notes)
    assert int(counters["rpc.retries"]) > 0
    assert int(counters["breaker.open"]) > 0
    assert int(counters["network.dropped"]) > 0


def test_baseline_json_schema():
    """The committed baseline keeps the fields future PRs compare on."""
    record = json.loads(BASELINE_JSON.read_text(encoding="utf-8"))
    assert record["experiment"] == "fault"
    schemes = {row["scheme"] for row in record["rows"]}
    assert {"hypercube", "dii", "hypercube-noretry", "hypercube-resilient"} <= schemes
    assert any(row.get("failure_mode") == "transient" for row in record["rows"])
    for row in record["rows"]:
        assert {"mean_recall", "blocked_fraction", "mean_messages"} <= row.keys()
