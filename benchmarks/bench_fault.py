"""Bench X2 — fault tolerance: hypercube vs DII under node failures."""

from repro.experiments import fault

from benchmarks.conftest import run_once


def test_fault(benchmark, record_result):
    result = run_once(
        benchmark,
        fault.run,
        num_objects=8_192,
        seed=0,
        dimension=10,
        num_dht_nodes=128,
        failure_fractions=(0.0, 0.05, 0.1, 0.2, 0.3),
        num_queries=60,
    )
    record_result(result)
    rows = {(r["scheme"], r["failure_fraction"]): r for r in result.rows}
    assert rows[("hypercube", 0.0)]["mean_recall"] == 1.0
    assert rows[("dii", 0.0)]["mean_recall"] == 1.0
    # Graceful degradation: hypercube recall falls roughly linearly.
    assert rows[("hypercube", 0.3)]["mean_recall"] > 0.45
    # DII blocks whole queries at least as often as the hypercube.
    for fraction in (0.1, 0.2, 0.3):
        assert (
            rows[("dii", fraction)]["blocked_fraction"]
            >= rows[("hypercube", fraction)]["blocked_fraction"] - 1e-9
        )
