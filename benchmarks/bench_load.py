"""Bench load — sustained-load behaviour with and without admission control.

A 16-node loopback cluster is driven by the :mod:`repro.load` open-loop
generator at three offered-load levels straddling its measured capacity
(0.5x, 1.5x, 3x the closed-loop goodput).  The same levels run twice —
admission off (the pre-PR-6 baseline: every request queues) and
admission on (bounded inflight + T_BUSY shedding) — so one file shows
what shedding buys past the knee: a bounded tail and goodput that does
not collapse, at the price of explicitly refused (busy) queries.
"""

import pathlib

from repro.client import connect
from repro.core.config import SearchOptions, ServiceConfig
from repro.experiments.harness import ExperimentResult
from repro.load import ClosedLoopLoad, ConstantArrivals, FixedQueryMix, OpenLoopLoad
from repro.net.admission import AdmissionPolicy
from repro.net.cluster import LocalCluster
from repro.sim.resilience import RetryPolicy

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_load.json"

CONFIG = ServiceConfig(
    dimension=6,
    num_dht_nodes=16,
    seed=11,
    resilience=RetryPolicy(max_attempts=2, base_delay=8.0, jitter=0.0),
)
ADMISSION = AdmissionPolicy(max_inflight=4, retry_after=8.0)
OPTIONS = SearchOptions(threshold=4)
LOAD_MULTIPLIERS = (0.5, 1.5, 3.0)
PROBE_SECONDS = 2.0
RUN_SECONDS = 3.0
MAX_LAG_SECONDS = 1.0
OPEN_WORKERS = 32


def _mix() -> FixedQueryMix:
    return FixedQueryMix([frozenset({"common", f"rare-{n}"}) for n in range(8)])


def _drive(admission: AdmissionPolicy | None, rates: list[float] | None):
    """Bring up one cluster variant and run the load ladder against it.

    Returns ``(rows, rates)`` — the rates are measured on the first
    (baseline) variant and reused verbatim on the second, so both
    variants face identical offered load.
    """
    variant = "admission-on" if admission is not None else "admission-off"
    rows = []
    with LocalCluster(CONFIG, admission=admission) as cluster:
        service = cluster.service
        for number in range(64):
            service.publish(f"object-{number}", {"common", f"rare-{number % 8}"})
        with connect(CONFIG, peers=cluster.endpoints) as client:
            if rates is None:
                # Closed-loop probe: the sustained goodput at 8
                # outstanding queries is the capacity estimate the
                # open-loop ladder straddles.
                probe = ClosedLoopLoad(
                    client, _mix(), workers=8, options=OPTIONS
                ).run(PROBE_SECONDS)
                capacity = max(probe.goodput, 1.0)
                rates = [capacity * multiplier for multiplier in LOAD_MULTIPLIERS]
                rows.append(
                    {"variant": variant, "load": "closed-probe", **probe.to_row()}
                )
            for multiplier, rate in zip(LOAD_MULTIPLIERS, rates):
                report = OpenLoopLoad(
                    client,
                    _mix(),
                    ConstantArrivals(rate),
                    workers=OPEN_WORKERS,
                    options=OPTIONS,
                    max_lag_s=MAX_LAG_SECONDS,
                ).run(RUN_SECONDS)
                rows.append(
                    {
                        "variant": variant,
                        "load": f"open-{multiplier}x",
                        **report.to_row(),
                    }
                )
        shed = cluster.transport.metrics.counter("net.shed_requests")
        rows_note = f"{variant}: net.shed_requests={shed}"
    return rows, rates, rows_note


def run():
    rows_off, rates, note_off = _drive(None, None)
    rows_on, _, note_on = _drive(ADMISSION, rates)
    return ExperimentResult(
        experiment="load",
        description="open-loop load ladder, admission off vs on, 16-node loopback TCP",
        parameters={
            "num_dht_nodes": CONFIG.num_dht_nodes,
            "dimension": CONFIG.dimension,
            "seed": CONFIG.seed,
            "max_inflight": ADMISSION.max_inflight,
            "retry_after": ADMISSION.retry_after,
            "load_multipliers": list(LOAD_MULTIPLIERS),
            "run_seconds": RUN_SECONDS,
            "max_lag_s": MAX_LAG_SECONDS,
        },
        rows=rows_off + rows_on,
        notes=[note_off, note_on],
    )


def test_load(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    by_key = {(row["variant"], row["load"]): row for row in result.rows}
    for variant in ("admission-off", "admission-on"):
        for multiplier in ("open-0.5x", "open-1.5x", "open-3.0x"):
            row = by_key[(variant, multiplier)]
            assert row["offered"] > 0
            assert row["ok"] > 0, f"{variant} {multiplier} produced no goodput"
    # Sub-knee both variants serve essentially everything: admission
    # control must be invisible below capacity.
    sub_knee = by_key[("admission-on", "open-0.5x")]
    assert sub_knee["busy"] == 0
    assert sub_knee["errors"] == 0
    # Past the knee admission keeps the tail bounded: the p99 of served
    # queries stays within the abandonment lag budget instead of the
    # RPC-timeout regime an unbounded queue drifts into.
    overload = by_key[("admission-on", "open-3.0x")]
    assert overload["p99_ms"] < 5_000.0
    # ... and goodput does not collapse relative to the same variant's
    # sub-knee throughput.
    assert overload["goodput_qps"] > 0.25 * sub_knee["goodput_qps"]
    # The admission controller actually fired past the knee (the
    # baseline variant, having no controller, cannot shed).
    shed = dict(note.split(": net.shed_requests=") for note in result.notes)
    assert int(shed["admission-off"]) == 0
    assert int(shed["admission-on"]) > 0
