"""Bench X5 — substrate comparison: Chord / Kademlia / Pastry / HyperCuP."""

from repro.experiments import dhtcmp

from benchmarks.conftest import run_once


def test_dhtcmp(benchmark, record_result):
    result = run_once(
        benchmark,
        dhtcmp.run,
        num_objects=4_096,
        seed=0,
        dimension=8,
        num_dht_nodes=64,
        num_lookups=200,
    )
    record_result(result)
    for row in result.rows:
        # DHT choice must not change what the keyword layer computes.
        assert row["matches_reference"] is True
        assert row["mean_lookup_hops"] <= 8
