"""Bench F8 — Figure 8: cacheless superset-search cost vs recall.

The paper's r values (8, 10, 12) and query sizes m = 1..5, over a
32k-object corpus (scaled from 131k for runtime; the node-fraction
metric is corpus-size independent — cost is a fraction of 2**r).
Shape assertions: ≈ 2**-m of nodes at 100% recall for r >= 10; the
cost grows monotonically (≈ linearly) with the recall rate; more
query keywords mean fewer nodes.
"""

from repro.experiments import fig8

from benchmarks.conftest import run_once


def test_fig8(benchmark, record_result):
    result = run_once(
        benchmark,
        fig8.run,
        num_objects=32_768,
        seed=0,
        dimensions=(8, 10, 12),
        query_sizes=(1, 2, 3, 4, 5),
        queries_per_size=5,
        recall_points=(0.2, 0.4, 0.6, 0.8, 1.0),
    )
    record_result(result)

    full = {
        (row["dimension"], row["query_size"]): row["node_fraction"]
        for row in result.rows
        if row["recall"] == 1.0
    }
    for r in (10, 12):
        for m in (1, 2, 3):
            assert full[(r, m)] <= 2.0**-m * 1.3
    # Fewer nodes as the query grows.
    assert full[(10, 5)] < full[(10, 1)]
    # Monotone in recall within each (r, m).
    grouped: dict[tuple, list] = {}
    for row in result.rows:
        grouped.setdefault((row["dimension"], row["query_size"]), []).append(row)
    for rows in grouped.values():
        costs = [row["node_fraction"] for row in sorted(rows, key=lambda x: x["recall"])]
        assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))
