"""Bench prefix — directory recall and message cost (docs/protocol.md §17).

A harvest-style Zipf prefix stream is replayed against a service built
with the distributed keyword directory, twice over:

* **Fan-out sweep** — the same stream at expansion budgets 1, 8, and
  64.  Recall against the brute-force posting-list oracle must be
  non-decreasing in the budget and reach 1.0 at 64 (every probe in the
  stream matches at most 64 keywords); mean directory messages must
  grow with the mean matched-keyword count, because resolution walks
  only the matching subtree.
* **Vocabulary sweep** — the same probes after inflating the published
  vocabulary 5x with keywords sharing no probed prefix.  Mean directory
  messages per query must not move: resolution cost tracks *matches*,
  never vocabulary size (the Patricia split keeps alien subtrees behind
  one root edge).

Every query is checked against the oracle; the JSON baseline lands in
``BENCH_prefix.json``.
"""

import pathlib

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.experiments.harness import ExperimentResult, default_corpus
from repro.load.mix import HarvestPrefixMix

from benchmarks.conftest import run_once

BASELINE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_prefix.json"

DIMENSION = 6
NUM_DHT_NODES = 24
NUM_OBJECTS = 512
QUERIES = 120
FAN_OUTS = (1, 8, 64)
FILLER_FACTOR = 4  # vocabulary sweep publishes 4x extra objects
SEED = 0


def _build_service(seed: int) -> KeywordSearchService:
    config = ServiceConfig(
        dimension=DIMENSION,
        num_dht_nodes=NUM_DHT_NODES,
        seed=seed,
        prefix_directory=True,
    )
    return KeywordSearchService.create(config)


def _publish_corpus(service, corpus) -> dict[str, set]:
    for record in corpus.records:
        service.publish(record.object_id, record.keywords)
    return {k: set(v) for k, v in corpus.inverted_index().items()}


def _oracle(postings: dict[str, set], prefix: str) -> set:
    return {
        object_id
        for keyword, ids in postings.items()
        if keyword.startswith(prefix)
        for object_id in ids
    }


def _probe_stream(corpus, queries: int, seed: int) -> list[str]:
    # min_length=2 keeps every probe's match count within the largest
    # fan-out budget, so the top arm can be held to exact recall.
    mix = HarvestPrefixMix.from_corpus(corpus, min_length=2, seed=seed)
    return [mix.next_prefix() for _ in range(queries)]


def _replay(service, postings, probes, fan_out):
    matched = messages = hits = expected = exact = 0
    for prefix in probes:
        result = service.prefix_search(prefix, max_expansions=fan_out)
        oracle = _oracle(postings, prefix)
        returned = set(result.results())
        assert returned <= oracle, f"false positives for {prefix!r}"
        matched += len(result.matched_keywords)
        messages += result.directory_messages
        hits += len(returned & oracle)
        expected += len(oracle)
        exact += returned == oracle
    return {
        "queries": len(probes),
        "recall": round(hits / expected, 4) if expected else 1.0,
        "exact_fraction": round(exact / len(probes), 4),
        "mean_matched_keywords": round(matched / len(probes), 2),
        "mean_directory_messages": round(messages / len(probes), 2),
    }


def run(
    num_objects: int = NUM_OBJECTS,
    queries: int = QUERIES,
    fan_outs: tuple = FAN_OUTS,
    seed: int = SEED,
):
    """Prefix recall and directory messages: fan-out and vocabulary sweeps."""
    corpus = default_corpus(num_objects, seed)
    probes = _probe_stream(corpus, queries, seed + 1)

    rows = []
    service = _build_service(seed)
    postings = _publish_corpus(service, corpus)
    for fan_out in fan_outs:
        stats = _replay(service, postings, probes, fan_out)
        rows.append({"arm": "fanout", "fan_out": fan_out, "vocabulary": len(postings), **stats})

    # Vocabulary sweep: same probes, alien vocabulary inflated 4x.  The
    # fillers share no probed prefix ("zzz" never leads a corpus word's
    # probe stream at min_length=2 with this seed; asserted below).
    inflated = _build_service(seed)
    postings_inflated = _publish_corpus(inflated, corpus)
    filler_words = [f"zzz{i:05d}" for i in range(FILLER_FACTOR * len(postings_inflated))]
    assert not any(word.startswith(p) for word in filler_words for p in probes)
    for number, word in enumerate(filler_words):
        inflated.publish(f"filler-{number}.bin", {word})
        postings_inflated[word] = {f"filler-{number}.bin"}
    top = max(fan_outs)
    for label, arm_service, arm_postings in (
        ("base", service, postings),
        ("inflated", inflated, postings_inflated),
    ):
        stats = _replay(arm_service, arm_postings, probes, top)
        rows.append(
            {
                "arm": f"vocabulary-{label}",
                "fan_out": top,
                "vocabulary": len(arm_postings),
                **stats,
            }
        )
    return ExperimentResult(
        experiment="prefix_bench",
        description="prefix directory: recall vs fan-out, messages vs matches not vocabulary",
        parameters={
            "dimension": DIMENSION,
            "num_dht_nodes": NUM_DHT_NODES,
            "num_objects": num_objects,
            "queries": queries,
            "fan_outs": list(fan_outs),
            "filler_factor": FILLER_FACTOR,
            "seed": seed,
        },
        rows=rows,
        notes=[
            "recall is measured against the brute-force posting-list oracle;",
            "directory messages track matched keywords (fan-out sweep) and are",
            "invariant to a 5x vocabulary inflation with disjoint prefixes.",
        ],
    )


def test_prefix(benchmark, record_result):
    result = run_once(benchmark, run)
    record_result(result)
    BASELINE_JSON.write_text(result.to_json() + "\n", encoding="utf-8")
    fanout_rows = {r["fan_out"]: r for r in result.rows if r["arm"] == "fanout"}
    budgets = sorted(fanout_rows)
    # Recall rises with the expansion budget and tops out exact.
    for small, large in zip(budgets, budgets[1:]):
        assert fanout_rows[small]["recall"] <= fanout_rows[large]["recall"]
        assert (
            fanout_rows[small]["mean_matched_keywords"]
            <= fanout_rows[large]["mean_matched_keywords"]
        )
    assert fanout_rows[budgets[-1]]["recall"] == 1.0
    assert fanout_rows[budgets[-1]]["exact_fraction"] == 1.0
    # Messages grow with matches...
    assert (
        fanout_rows[budgets[-1]]["mean_directory_messages"]
        > fanout_rows[budgets[0]]["mean_directory_messages"]
    )
    # ...and not with vocabulary: 5x the keywords, same resolution cost.
    vocab = {r["arm"]: r for r in result.rows if r["arm"].startswith("vocabulary")}
    assert vocab["vocabulary-inflated"]["vocabulary"] >= 4 * vocab["vocabulary-base"]["vocabulary"]
    assert vocab["vocabulary-inflated"]["recall"] == 1.0
    assert (
        vocab["vocabulary-inflated"]["mean_directory_messages"]
        == vocab["vocabulary-base"]["mean_directory_messages"]
    )
