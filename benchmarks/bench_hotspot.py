"""Bench X4 — hot spots: query-load distribution, hypercube vs DII."""

from repro.experiments import hotspot

from benchmarks.conftest import run_once


def test_hotspot(benchmark, record_result):
    result = run_once(
        benchmark,
        hotspot.run,
        num_objects=8_192,
        seed=0,
        dimension=10,
        num_dht_nodes=128,
        num_queries=400,
        pool_size=150,
    )
    record_result(result)
    by_scheme = {row["scheme"]: row for row in result.rows}
    dii = by_scheme["dii"]
    for scheme, row in by_scheme.items():
        if scheme.startswith("hypercube"):
            # Query load spreads over many nodes: lower inequality and a
            # far lower peak relative to the mean than DII's per-keyword
            # hot spots.
            assert row["gini"] < dii["gini"]
            assert row["max_to_mean"] < dii["max_to_mean"]
